//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the small slice of `rand` it actually uses: `SmallRng`
//! (an xoshiro256++ generator), `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen`, `gen_range`, and `gen_bool`. Streams are
//! deterministic for a given seed but are *not* bit-compatible with upstream
//! `rand`; every consumer in this workspace only relies on seeded
//! reproducibility and reasonable uniformity, never on exact upstream
//! streams.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce from raw random bits.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform sampler over a sub-range.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[lo, hi)`. Panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Draws uniformly from `[lo, hi]`. Panics when `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                // Widening-multiply range reduction (Lemire); the modeled
                // bias over a 64-bit source is negligible for test inputs.
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64 as u64).wrapping_sub(lo as i64 as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let unit: $t = StandardSample::standard_sample(rng);
                lo + (hi - lo) * unit
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = StandardSample::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the full-width distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let unit: f64 = StandardSample::standard_sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete small generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same family
    /// upstream `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-17i32..23);
            assert!((-17..23).contains(&v));
            let u = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&u));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains_roughly_uniformly() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((8_500..11_500).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = rng.gen_range(3i32..3);
    }
}
