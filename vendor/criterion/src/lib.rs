//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of criterion its benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with `bench_function`/`bench_with_input`, `BenchmarkId`,
//! `Throughput`, and `Bencher::iter`. There is no statistical analysis: each
//! benchmark runs a short warmup plus a fixed measurement loop and prints
//! the mean wall-clock time per iteration (and throughput when declared).
//! That keeps `cargo bench` functional — and fast — while the real numbers
//! for the paper's figures come from the dedicated `crates/bench` binaries.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement iterations per benchmark (after one warmup call).
const MEASURE_ITERS: u32 = 16;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None }
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as the benchmark `id` within this group.
    pub fn bench_function<ID: IntoBenchmarkId, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher);
        self.report(&id.into_benchmark_id().0, &bencher);
        self
    }

    /// Runs `f` with `input` as the benchmark `id` within this group.
    pub fn bench_with_input<ID: IntoBenchmarkId, I: ?Sized, F>(
        &mut self,
        id: ID,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
        f(&mut bencher, input);
        self.report(&id.into_benchmark_id().0, &bencher);
        self
    }

    /// Ends the group (upstream renders summaries here; the shim prints as
    /// it goes).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("bench {}/{}: no iterations recorded", self.name, id);
            return;
        }
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench {}/{}: {:.3} us/iter{}", self.name, id, per_iter * 1e6, rate);
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the hot loop.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations (plus one warmup call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += u64::from(MEASURE_ITERS);
    }
}

/// A benchmark name of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id labeled by the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Anything usable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Units for [`BenchmarkGroup::throughput`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures_and_counts_iters() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut calls = 0u32;
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("count", 4), &4u32, |b, &four| {
            b.iter(|| {
                calls += 1;
                four * 2
            })
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(calls, MEASURE_ITERS + 1);
    }

    criterion_group!(demo_group, demo_target);

    fn demo_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn group_macro_expands_to_runner() {
        demo_group();
    }
}
