//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the `proptest!` test macro, `Strategy` with
//! `prop_map`/`prop_flat_map`, range/tuple/`Just` strategies,
//! `prop::array::uniform16`, `prop::collection::vec`, `any`, and the
//! `prop_assert*` macros. Unlike upstream there is no shrinking and no
//! failure persistence: each test runs a fixed number of deterministic
//! cases seeded from the test's name, and the first failing case panics with
//! its case number (re-running reproduces it exactly).

use rand::SmallRng;

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use rand::{Rng, SampleUniform, SmallRng};

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim only ever samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into `f` to pick a dependent strategy.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut SmallRng) -> T::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform + Clone> Strategy for std::ops::Range<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T: SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F2);
    impl_tuple_strategy!(A, B, C, D, E, F2, G);
    impl_tuple_strategy!(A, B, C, D, E, F2, G, H);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::{Rng, RngCore, SmallRng};

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_sample(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut SmallRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_sample(rng: &mut SmallRng) -> Self {
            rng.gen_range(-1.0e6f32..1.0e6)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_sample(rng: &mut SmallRng) -> Self {
            rng.gen_range(-1.0e9f64..1.0e9)
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::strategy::Strategy;
    use rand::SmallRng;

    /// The strategy returned by [`uniform16`].
    #[derive(Debug, Clone)]
    pub struct UniformArray16<S>(S);

    impl<S: Strategy> Strategy for UniformArray16<S> {
        type Value = [S::Value; 16];

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// A 16-element array drawn element-wise from `strategy`.
    pub fn uniform16<S: Strategy>(strategy: S) -> UniformArray16<S> {
        UniformArray16(strategy)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng, SmallRng};

    /// An inclusive-exclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange { lo, hi_exclusive: hi + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Test-runner configuration and deterministic seeding.
pub mod test_runner {
    /// Subset of upstream's runner configuration: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each `proptest!` test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Deterministic per-test generator: FNV-1a over the test name, so runs are
/// reproducible without persistence files.
pub fn rng_for_test(name: &str) -> SmallRng {
    use rand::SeedableRng;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::array`, `prop::collection`).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            let mut rng = $crate::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                let sampled = $crate::strategy::Strategy::sample(&strategy, &mut rng);
                // Body runs as a `Result` closure so `return Ok(())` works,
                // exactly as under upstream proptest; assertion macros panic,
                // so the error arm is only reachable through explicit `Err`.
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), ::std::string::String> {
                        let ($($pat,)+) = sampled;
                        let _ = { $body };
                        Ok(())
                    },
                ));
                if let Ok(Err(rejection)) = &outcome {
                    panic!("proptest {}: case returned Err: {}", stringify!($name), rejection);
                }
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: failed at case {} of {} (deterministic; rerun reproduces)",
                        stringify!($name),
                        case,
                        config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            (a, b) in (0i32..10, 5u32..=6),
            v in prop::collection::vec(0usize..4, 0..9),
        ) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b == 5 || b == 6);
            prop_assert!(v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn flat_map_and_just_compose(n in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0..n as i32, n..n + 1))
        })) {
            let (n, v) = n;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn uniform16_fills_every_lane() {
        let mut rng = crate::rng_for_test("uniform16");
        let arr = crate::strategy::Strategy::sample(&prop::array::uniform16(3i32..7), &mut rng);
        assert_eq!(arr.len(), 16);
        assert!(arr.iter().all(|&x| (3..7).contains(&x)));
    }

    #[test]
    fn deterministic_per_test_name() {
        use rand::RngCore;
        let a = crate::rng_for_test("x").next_u64();
        let b = crate::rng_for_test("x").next_u64();
        let c = crate::rng_for_test("y").next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
