//! MIMD × SIMD: the extension the paper scopes out ("MIMD parallelization
//! is a tangential issue") — in-vector reduction inside each thread,
//! privatized reduction arrays across threads.
//!
//! Run with: `cargo run --release --example parallel_histogram [rows]`

use std::time::Instant;

use invector::core::ops::Sum;
use invector::core::parallel::parallel_invec_accumulate;
use invector::core::serial_accumulate;

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4_000_000);
    let bins = 1 << 12;
    // A skewed bin stream: Zipf-flavoured via squaring.
    let idx: Vec<i32> = (0..rows)
        .map(|i| {
            let r = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40;
            (((r * r) >> 13) % bins as u64) as i32
        })
        .collect();
    let weights = vec![1.0f32; rows];

    let t = Instant::now();
    let mut serial = vec![0.0f32; bins as usize];
    serial_accumulate::<f32, Sum>(&mut serial, &idx, &weights);
    println!("serial:            {:>8.1} ms", t.elapsed().as_secs_f64() * 1e3);

    for threads in [1, 2, 4, 8] {
        let t = Instant::now();
        let mut hist = vec![0.0f32; bins as usize];
        let stats = parallel_invec_accumulate::<f32, Sum>(&mut hist, &idx, &weights, threads);
        let elapsed = t.elapsed().as_secs_f64() * 1e3;
        let d1: f64 = stats.iter().map(|s| s.depth.mean()).sum::<f64>() / stats.len() as f64;
        println!("invec x{threads:<2} threads: {elapsed:>8.1} ms   (mean D1 {d1:.3})");
        for (a, b) in hist.iter().zip(&serial) {
            assert!((a - b).abs() <= 1e-2 * (a + b + 1.0), "{a} vs {b}");
        }
    }
    println!("\nall parallel runs match the serial histogram");
}
