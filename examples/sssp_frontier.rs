//! Wave-frontier SSSP (the paper's Figure 2 application), all strategies —
//! a miniature of Figure 9. Distances are bit-identical across strategies
//! because `min` is exact in `f32`.
//!
//! Run with: `cargo run --release --example sssp_frontier [scale]`

use invector::graph::datasets;
use invector::kernels::{sssp, Variant};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let dataset = datasets::soc_pokec(scale);
    println!(
        "wave-frontier SSSP on {} stand-in: {} vertices, {} edges\n",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges()
    );

    let source = 0;
    let mut reference: Option<Vec<f32>> = None;
    println!(
        "{:<24} {:>12} {:>12} {:>6} {:>10}",
        "version", "group(ms)", "compute(ms)", "iters", "simd_util"
    );
    for variant in Variant::ALL {
        let r = sssp(&dataset.graph, source, variant, 10_000);
        let util = r
            .utilization
            .map(|u| format!("{:.2}%", u.ratio() * 100.0))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<24} {:>12.2} {:>12.2} {:>6} {:>10}",
            variant.frontier_label(),
            r.timings.grouping.as_secs_f64() * 1e3,
            r.timings.compute.as_secs_f64() * 1e3,
            r.iterations,
            util
        );
        match &reference {
            None => reference = Some(r.values),
            Some(expect) => assert_eq!(&r.values, expect, "{variant} diverged"),
        }
    }

    let dist = reference.expect("at least one run");
    let reached = dist.iter().filter(|d| d.is_finite()).count();
    let max = dist.iter().filter(|d| d.is_finite()).fold(0.0f32, |a, &b| a.max(b));
    println!(
        "\nreached {reached}/{} vertices from source {source}; eccentricity {max:.2}",
        dist.len()
    );
}
