//! Quickstart: in-vector reduction on one SIMD vector, and on a stream.
//!
//! Run with: `cargo run --release --example quickstart`

use invector::core::{invec_accumulate, invec_add, masked_accumulate, ops::Sum};
use invector::simd::{count, F32x16, I32x16, Mask16};

fn main() {
    // --- One vector, by hand (the paper's Figure 5 running example) ---
    // Sixteen lanes want to add 1.0 to these indices; several collide.
    let idx = I32x16::from_array([0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5]);
    let mut data = F32x16::splat(1.0);

    // invec_add folds conflicting lanes inside the vector (legal because +
    // is associative) and returns the lanes that survived — all with
    // distinct indices, so the scatter below cannot self-conflict.
    let safe = invec_add(Mask16::all(), idx, &mut data);
    println!("conflict-free lanes: {safe}");

    let mut sums = vec![0.0f32; 6];
    data.mask_scatter(safe, &mut sums, idx);
    println!("per-index sums:      {sums:?}");
    assert_eq!(sums, vec![2.0, 6.0, 4.0, 0.0, 0.0, 4.0]);

    // --- A whole stream, with the driver ---
    let bins: Vec<i32> = (0..10_000).map(|i| (i * i) % 7).collect();
    let weights = vec![1.0f32; bins.len()];
    let mut hist = vec![0.0f32; 7];

    count::reset();
    let stats = invec_accumulate::<f32, Sum>(&mut hist, &bins, &weights);
    let instructions = count::take();
    println!(
        "\ninvec:  {} vectors, mean conflict depth D1 = {:.2}, {} SIMD instructions",
        stats.vectors,
        stats.depth.mean(),
        instructions
    );

    // The same stream with the conflict-masking baseline, for contrast.
    let mut hist_mask = vec![0.0f32; 7];
    count::reset();
    let mstats = masked_accumulate::<f32, Sum>(&mut hist_mask, &bins, &weights);
    println!(
        "masked: {} rounds, SIMD utilization {}, {} SIMD instructions",
        mstats.rounds,
        mstats.utilization,
        count::take()
    );

    assert_eq!(hist, hist_mask);
    println!("\nhistogram: {hist:?}");
}
