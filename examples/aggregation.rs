//! Hash-based group-by aggregation under skewed distributions — a
//! miniature of the paper's Figure 13 (throughput in Mrows/s).
//!
//! Query: `SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP BY G`.
//!
//! Run with: `cargo run --release --example aggregation [rows]`

use invector::agg::dist::{generate, Distribution};
use invector::agg::run::{aggregate, Method};
use invector::agg::table::reference_aggregate;

fn main() {
    let rows: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000_000);
    let cardinality = 1 << 10;

    for dist in Distribution::ALL {
        let input = generate(dist, rows, cardinality, 1);
        println!("\n{} ({} rows, {} groups):", dist, rows, cardinality);
        println!("  {:<16} {:>14} {:>10} {:>10}", "method", "Mrows/s", "rounds", "D1 mean");
        let expect = reference_aggregate(&input.keys, &input.vals);
        for method in Method::ALL {
            let out = aggregate(method, &input.keys, &input.vals, cardinality);
            assert_eq!(out.rows.len(), expect.len(), "{method} row count");
            for (g, e) in out.rows.iter().zip(&expect) {
                assert_eq!(g.key, e.key);
                assert_eq!(g.count, e.count, "{method} count for key {}", g.key);
            }
            println!(
                "  {:<16} {:>14.1} {:>10} {:>10.2}",
                method.label(),
                out.mrows_per_sec(input.len()),
                out.stats.rounds,
                out.stats.depth.mean()
            );
        }
    }
    println!("\nall methods verified against the scalar HashMap reference");
}
