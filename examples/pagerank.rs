//! PageRank on a synthetic higgs-twitter stand-in, all five strategies —
//! a miniature of the paper's Figure 8.
//!
//! Run with: `cargo run --release --example pagerank [scale]`
//! (`scale` in (0, 1]; default 0.01 ≈ 150K edges.)

use invector::graph::datasets;
use invector::kernels::{pagerank, PageRankConfig, Variant};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let dataset = datasets::higgs_twitter(scale);
    println!(
        "PageRank on {} stand-in: {} vertices, {} edges (scale {scale})\n",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges()
    );

    let config = PageRankConfig::default();
    let mut reference: Option<Vec<f32>> = None;
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>6} {:>10}",
        "version", "tiling(ms)", "group(ms)", "comp(ms)", "iters", "simd_util"
    );
    for variant in Variant::ALL {
        let r = pagerank(&dataset.graph, variant, &config);
        let util = r
            .utilization
            .map(|u| format!("{:.2}%", u.ratio() * 100.0))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>10.2} {:>6} {:>10}",
            variant.tiled_label(),
            r.timings.tiling.as_secs_f64() * 1e3,
            r.timings.grouping.as_secs_f64() * 1e3,
            r.timings.compute.as_secs_f64() * 1e3,
            r.iterations,
            util
        );
        // Every strategy computes the same ranks (up to f32 reassociation).
        match &reference {
            None => reference = Some(r.values),
            Some(expect) => {
                for (a, b) in r.values.iter().zip(expect) {
                    assert!((a - b).abs() <= 1e-3 * (a.abs() + b.abs() + 1e-6));
                }
            }
        }
    }

    let ranks = reference.expect("at least one run");
    let mut top: Vec<(usize, f32)> = ranks.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 vertices by rank:");
    for (v, r) in top.into_iter().take(5) {
        println!("  vertex {v:>8}  rank {r:.6}");
    }
}
