//! Molecular dynamics, 20 iterations of the paper's Figure 12 setup:
//! coordinates → Lennard-Jones forces (the two-target irregular reduction)
//! → velocities, neighbor list rebuilt every 20 iterations.
//!
//! Run with: `cargo run --release --example moldyn_sim [cells]`
//! (`cells` per box edge; molecules = 4·cells³. Default 8 → 2048.)

use invector::kernels::Variant;
use invector::moldyn::input::fcc_lattice;
use invector::moldyn::sim::simulate;

fn main() {
    let cells: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let molecules = fcc_lattice(cells, 16);
    println!("Moldyn: {} molecules, cutoff 3.0σ, 20 iterations\n", molecules.len());

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "version", "pairs", "tile(ms)", "group(ms)", "comp(ms)", "simd_util"
    );
    let mut reference: Option<Vec<f32>> = None;
    for variant in Variant::ALL {
        let r = simulate(&molecules, variant, 20);
        let util = r
            .utilization
            .map(|u| format!("{:.2}%", u.ratio() * 100.0))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<22} {:>10} {:>10.2} {:>10.2} {:>10.2} {:>10}",
            variant.tiled_label(),
            r.num_pairs,
            r.timings.tiling.as_secs_f64() * 1e3,
            r.timings.grouping.as_secs_f64() * 1e3,
            r.timings.compute.as_secs_f64() * 1e3,
            util
        );
        // Trajectories agree across strategies up to f32 reassociation.
        match &reference {
            None => reference = Some(r.molecules.vx),
            Some(expect) => {
                for (a, b) in r.molecules.vx.iter().zip(expect) {
                    assert!((a - b).abs() < 1e-2, "trajectory diverged: {a} vs {b}");
                }
            }
        }
    }

    let vx = reference.expect("at least one run");
    let ke_x: f32 = vx.iter().map(|v| 0.5 * v * v).sum();
    println!("\nfinal x-axis kinetic energy: {ke_x:.3} (all variants agree)");
}
