//! Edge-based mesh solver (the "Euler" application class of §2.2): flux
//! exchange over an unstructured triangulated mesh — a two-target,
//! four-component irregular reduction.
//!
//! Run with: `cargo run --release --example euler_mesh [mesh_side]`

use invector::kernels::euler::{euler_run, initial_state, triangle_mesh, COMPONENTS};
use invector::kernels::Variant;
use invector::simd::count;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let mesh = triangle_mesh(side);
    let state = initial_state(mesh.num_vertices());
    println!(
        "euler-style solver: {side}x{side} mesh, {} nodes x {COMPONENTS} components, {} edges\n",
        mesh.num_vertices(),
        mesh.num_edges()
    );

    println!("{:<22} {:>10} {:>14}", "version", "time(ms)", "model(Minstr)");
    let mut reference: Option<Vec<f32>> = None;
    for variant in Variant::ALL {
        let t = std::time::Instant::now();
        count::reset();
        let out = euler_run(&mesh, &state, variant, 20, 0.05);
        println!(
            "{:<22} {:>10.2} {:>14.2}",
            variant.tiled_label(),
            t.elapsed().as_secs_f64() * 1e3,
            count::take() as f64 / 1e6
        );
        match &reference {
            None => reference = Some(out.fields[0].clone()),
            Some(expect) => {
                for (a, b) in out.fields[0].iter().zip(expect) {
                    assert!((a - b).abs() <= 2e-3 * (a.abs() + b.abs() + 1e-3));
                }
            }
        }
    }

    // Diffusion smooths the field: report the variance drop.
    let var = |f: &[f32]| {
        let mean: f32 = f.iter().sum::<f32>() / f.len() as f32;
        f.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / f.len() as f32
    };
    println!(
        "\ndensity variance: {:.4} -> {:.4} after 20 diffusive sweeps (all variants agree)",
        var(&state.fields[0]),
        var(&reference.expect("at least one run"))
    );
}
