//! The `invector` command-line driver. All logic lives in [`invector::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = invector::cli::parse(&args).and_then(invector::cli::run);
    if let Err(message) = outcome {
        eprintln!("error: {message}");
        eprintln!("run 'invector help' for usage");
        std::process::exit(2);
    }
}
