//! Command-line interface: parse-and-dispatch for the `invector` binary.
//!
//! Hand-rolled argument parsing (no external dependencies) split from
//! `main.rs` so it is unit-testable. Every application reaches execution
//! through the harness registry ([`invector_harness::registry`]) — the CLI
//! owns no kernel dispatch of its own.

use std::time::Instant;

use invector_agg::dist::Distribution;
use invector_core::BackendChoice;
use invector_harness::{driver, registry, RunRecord, RunSpec};
use invector_kernels::{ExecPolicy, Variant};
use invector_serve::{
    FollowStatus, Follower, LocalClient, OpKind, PolicyHandle, ReactorKind, ServeClient,
    ServeConfig, Server, ServerCore, SubmitOutcome, SyncPolicy, TableSpec, TcpClient, TuneConfig,
    TuneMode, Update, WalOptions,
};

/// Reactor front-end knobs shared by `serve` and `bench-serve`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetOpts {
    /// Reactor I/O threads.
    pub io_threads: usize,
    /// Concurrent-connection cap.
    pub max_conns: usize,
    /// Readiness backend selection.
    pub reactor: ReactorKind,
}

/// Execution knobs shared by `run`, `run-all`, `serve`, and `bench-serve`:
/// one struct, parsed once, so the commands cannot drift apart on
/// defaults or validation.
///
/// The quantum/shard fields only matter to the serving commands; batch
/// runs carry them inert. `tune` switches the serving epoch loop from the
/// static policy to the online controller
/// ([`TuneMode::Auto`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOpts {
    /// Worker threads for kernel/epoch execution.
    pub threads: usize,
    /// Backend request.
    pub backend: BackendChoice,
    /// Ingest shard count (serving commands).
    pub shards: usize,
    /// Epoch batch quantum (serving commands).
    pub quantum: usize,
    /// Self-tune the execution policy between epochs (serving commands).
    pub tune: bool,
}

impl ExecOpts {
    fn parse(opts: &Opts) -> Result<ExecOpts, String> {
        let threads = lookup(opts, "threads", 1)?;
        if threads == 0 {
            return Err("--threads must be at least 1".into());
        }
        let backend = parse_backend(get(opts, "backend").unwrap_or("auto"))?;
        let shards = lookup(opts, "shards", 4)?;
        if shards == 0 {
            return Err("--shards must be at least 1".into());
        }
        let quantum = lookup(opts, "quantum", 4096)?;
        if quantum == 0 {
            return Err("--quantum must be at least 1".into());
        }
        Ok(ExecOpts { threads, backend, shards, quantum, tune: get(opts, "tune").is_some() })
    }

    /// The engine policy these options denote, behind the process's
    /// swappable policy route.
    fn policy_handle(&self) -> PolicyHandle {
        PolicyHandle::fixed(ExecPolicy::with_threads(self.threads).backend(self.backend))
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Print dataset registry and host capabilities.
    Info {
        /// Dataset scale factor.
        scale: f64,
    },
    /// Print the application registry.
    List,
    /// Run one application.
    Run {
        /// Registry name of the application.
        app: String,
        /// Variant selection (`all` resolves against the app's legal set).
        variants: Vec<Variant>,
        /// Workload sizing.
        spec: RunSpec,
        /// Shared execution knobs (threads/backend used here).
        exec: ExecOpts,
        /// Timed repetitions per variant (best run is reported).
        repeat: u32,
        /// Enable runtime observability: publish run statistics into the
        /// global registry, print the metrics table, dump a chrome trace.
        obs: bool,
    },
    /// Run every registered cell and cross-check against the serial
    /// reference.
    RunAll {
        /// Workload sizing.
        spec: RunSpec,
        /// Worker threads for the engine rows.
        threads: usize,
        /// Backend request: `None` covers the host's full backend matrix,
        /// a specific choice restricts the matrix to that request.
        backend: Option<BackendChoice>,
        /// Restrict the matrix to one registry application (`--app`);
        /// `None` runs the whole registry.
        app: Option<String>,
        /// Enable runtime observability (as for [`Command::Run`]).
        obs: bool,
    },
    /// Scrape a running server's Prometheus exposition over TCP.
    Metrics {
        /// Server address (`host:port`).
        addr: String,
    },
    /// Start the update-stream service (or its loopback smoke check).
    Serve {
        /// Listen address (`host:port`).
        addr: String,
        /// Stream sizing (rows = updates per table, cardinality = slots).
        spec: RunSpec,
        /// Shared execution knobs (threads/backend/shards/quantum/tune).
        exec: ExecOpts,
        /// Reactor front-end knobs.
        net: NetOpts,
        /// Run the self-checking loopback smoke instead of serving.
        smoke: bool,
        /// Concurrent TCP clients the smoke drives.
        clients: usize,
        /// Durability directory (`--wal-dir`): log admitted slices and
        /// publish checkpoints; restart recovers bitwise.
        wal_dir: Option<String>,
        /// WAL fsync cadence (`--wal-sync`).
        wal_sync: SyncPolicy,
        /// Follow a leader (`--follow <addr>`): bootstrap from its
        /// snapshot, tail its log, serve read-only snapshots.
        follow: Option<String>,
        /// Crash-recovery smoke: SIGKILL a child server mid-epoch, restart
        /// over its WAL, verify bitwise against an uninterrupted reference.
        smoke_recover: bool,
        /// Leader/follower loopback smoke: converge a follower over TCP
        /// and compare per-epoch checksums.
        smoke_follow: bool,
    },
    /// In-process serving throughput sweep over batch quanta.
    BenchServe {
        /// Stream sizing.
        spec: RunSpec,
        /// Shared execution knobs (threads/backend/shards/tune).
        exec: ExecOpts,
        /// Reactor front-end knobs (carried into the serve config).
        net: NetOpts,
    },
}

/// The usage text shown by `invector help`.
pub const USAGE: &str = "\
invector — conflict-free SIMD vectorization of irregular reductions (CGO'18)

USAGE:
  invector <command> [options]

COMMANDS:
  list                 registered applications, variants, and datasets
  run --app <name>     run one application (or use the app name directly:
                       pagerank | spmv | sssp | sswp | bfs | wcc |
                       euler | moldyn | agg | stream-graph | stream-window;
                       'run --app serve' runs the serving workload through
                       the harness)
  run-all              every app x variant x backend, checked against the
                       serial reference (smoke matrix); --backend restricts
                       the matrix to one request, --app to one application;
                       the summary reports per-app Mup/s for every app
                       that counts updates (including the serve-backed ones)
  serve                start the TCP update-stream service; with --smoke,
                       run a self-checking loopback workload and exit
  bench-serve          in-process serving throughput sweep over batch quanta
  metrics              scrape a running server's Prometheus exposition
  info                 dataset registry and host SIMD capabilities
  help                 this text

OPTIONS:
  --scale <s>          tiny | small | factor in (0, 1]     [small; run-all: tiny]
  --variant <v>        serial | tiled | grouped | masked | invec | all   [all]
  --threads <n>        worker threads                            [1]
  --backend <b>        auto | portable | native | avx512 | avx2 | neon
                       (native = widest ISA the host supports)    [auto]
  --repeat <n>         timed repetitions per variant (best shown) [1]
  --dataset <name>     higgs-twitter | soc-Pokec | amazon0312
  --source <v>         source vertex for sssp/sswp/bfs           [0]
  --iters <n>          iteration budget                          [per scale]
  --mesh <n>           euler mesh side (n x n nodes)             [per scale]
  --lattice <n>        moldyn FCC cells per side                 [per scale]
  --dist <d>           heavy-hitter | zipf | moving-cluster      [zipf]
  --rows <n>           aggregation/serving input rows            [per scale]
  --cardinality <n>    aggregation/serving group count           [per scale]
  --obs                run / run-all: enable runtime observability — print
                       the metric registry after the run and write a
                       chrome://tracing dump to invector-trace.json

SERVING OPTIONS (serve / bench-serve / metrics):
  --addr <host:port>   listen / scrape address          [127.0.0.1:7411]
  --shards <n>         ingest shard count                        [4]
  --quantum <n>        epoch batch quantum                       [4096]
  --io-threads <n>     reactor I/O event-loop threads            [2]
  --max-conns <n>      concurrent connection cap                 [4096]
  --reactor <r>        auto | epoll | poll                       [auto]
  --smoke              serve: loopback self-check, then exit
  --clients <n>        serve --smoke: racing TCP clients         [2]
  --tune               serve / bench-serve: self-tune the epoch quantum and
                       execution policy online from completed-epoch metrics
                       (snapshots stay bitwise-deterministic; the policy
                       trace is replayable)

DURABILITY & REPLICATION (serve):
  --wal-dir <path>     log admitted slices to a write-ahead log + periodic
                       snapshot checkpoints; restart recovers bitwise
  --wal-sync <mode>    always | epoch | os — fsync cadence        [epoch]
  --follow <addr>      replicate a durable leader: bootstrap from its
                       chunked snapshot, tail its log, serve read-only
                       snapshots with per-epoch checksum verification
  --smoke-recover      crash smoke: SIGKILL a durable child mid-epoch,
                       restart over its WAL, verify bitwise recovery
  --smoke-follow       replication smoke: converge a loopback follower
                       under concurrent ingest, compare epoch checksums
";

fn parse_dist(s: &str) -> Result<Distribution, String> {
    Ok(match s {
        "heavy-hitter" => Distribution::HeavyHitter,
        "zipf" => Distribution::Zipf,
        "moving-cluster" => Distribution::MovingCluster,
        other => return Err(format!("unknown distribution '{other}'")),
    })
}

fn parse_backend(s: &str) -> Result<BackendChoice, String> {
    BackendChoice::parse(s)
}

/// `--key value` pairs in command order.
type Opts = Vec<(String, String)>;

fn get<'a>(opts: &'a Opts, key: &str) -> Option<&'a str> {
    opts.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn lookup<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match get(opts, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
    }
}

/// Builds the workload spec: the `--scale` preset, then every explicit
/// per-field override on top.
fn build_spec(opts: &Opts, default_scale: &str) -> Result<RunSpec, String> {
    let mut spec = RunSpec::parse(get(opts, "scale").unwrap_or(default_scale))?;
    if let Some(name) = get(opts, "dataset") {
        spec.dataset = Some(name.to_string());
    }
    spec.source = lookup(opts, "source", spec.source)?;
    spec.iters = lookup(opts, "iters", spec.iters)?;
    spec.mesh = lookup(opts, "mesh", spec.mesh)?;
    spec.lattice = lookup(opts, "lattice", spec.lattice)?;
    spec.rows = lookup(opts, "rows", spec.rows)?;
    spec.cardinality = lookup(opts, "cardinality", spec.cardinality)?;
    if let Some(d) = get(opts, "dist") {
        spec.dist = parse_dist(d)?;
    }
    Ok(spec)
}

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, options, or
/// malformed values — including a nearest-name suggestion for application
/// typos.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    // Options that are flags: present or absent, no value.
    const FLAGS: [&str; 5] = ["smoke", "obs", "tune", "smoke-recover", "smoke-follow"];
    let mut opts: Opts = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got '{}'", args[i]))?;
        if FLAGS.contains(&key) {
            opts.push((key.to_string(), "true".to_string()));
            i += 1;
            continue;
        }
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        opts.push((key.to_string(), value.clone()));
        i += 2;
    }
    const KNOWN: [&str; 29] = [
        "app",
        "dataset",
        "variant",
        "scale",
        "source",
        "iters",
        "mesh",
        "lattice",
        "dist",
        "rows",
        "cardinality",
        "threads",
        "backend",
        "repeat",
        "addr",
        "shards",
        "quantum",
        "io-threads",
        "max-conns",
        "reactor",
        "smoke",
        "clients",
        "obs",
        "tune",
        "wal-dir",
        "wal-sync",
        "follow",
        "smoke-recover",
        "smoke-follow",
    ];
    if let Some((k, _)) = opts.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
        return Err(format!("unknown option --{k}"));
    }

    let exec = ExecOpts::parse(&opts)?;
    let io_threads = lookup(&opts, "io-threads", 2)?;
    if io_threads == 0 {
        return Err("--io-threads must be at least 1".into());
    }
    let max_conns = lookup(&opts, "max-conns", 4096)?;
    if max_conns == 0 {
        return Err("--max-conns must be at least 1".into());
    }
    let reactor: ReactorKind = get(&opts, "reactor").unwrap_or("auto").parse()?;
    let net = NetOpts { io_threads, max_conns, reactor };

    let app = match command.as_str() {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "list" => return Ok(Command::List),
        "info" => {
            let scale = build_spec(&opts, "small")?.scale;
            return Ok(Command::Info { scale });
        }
        "run-all" => {
            // Resolve the filter eagerly so a typo'd `--app` dies with the
            // registry's suggestion instead of silently running nothing.
            let app = match get(&opts, "app") {
                Some(name) => Some(registry::lookup(name)?.name().to_string()),
                None => None,
            };
            return Ok(Command::RunAll {
                spec: build_spec(&opts, "tiny")?,
                threads: exec.threads,
                backend: get(&opts, "backend").map(parse_backend).transpose()?,
                app,
                obs: get(&opts, "obs").is_some(),
            });
        }
        "metrics" => {
            return Ok(Command::Metrics {
                addr: get(&opts, "addr").unwrap_or("127.0.0.1:7411").to_string(),
            })
        }
        // The service command shadows the registry shorthand for the
        // `serve` app; the harness workload stays reachable via
        // `run --app serve`.
        "serve" => {
            let clients = lookup(&opts, "clients", 2)?;
            if clients == 0 {
                return Err("--clients must be at least 1".into());
            }
            let wal_sync = match get(&opts, "wal-sync").unwrap_or("epoch") {
                "always" => SyncPolicy::Always,
                "epoch" => SyncPolicy::Epoch,
                "os" => SyncPolicy::Os,
                other => return Err(format!("unknown --wal-sync '{other}' (always | epoch | os)")),
            };
            let follow = get(&opts, "follow").map(str::to_string);
            if follow.is_some() && get(&opts, "wal-dir").is_some() {
                return Err("--follow and --wal-dir are exclusive: a follower \
                            replicates the leader's log instead of writing its own"
                    .into());
            }
            return Ok(Command::Serve {
                addr: get(&opts, "addr").unwrap_or("127.0.0.1:7411").to_string(),
                spec: build_spec(&opts, "tiny")?,
                exec,
                net,
                smoke: get(&opts, "smoke").is_some(),
                clients,
                wal_dir: get(&opts, "wal-dir").map(str::to_string),
                wal_sync,
                follow,
                smoke_recover: get(&opts, "smoke-recover").is_some(),
                smoke_follow: get(&opts, "smoke-follow").is_some(),
            });
        }
        "bench-serve" => {
            return Ok(Command::BenchServe { spec: build_spec(&opts, "small")?, exec, net });
        }
        "run" => get(&opts, "app")
            .ok_or_else(|| "run needs --app <name> (see 'invector list')".to_string())?
            .to_string(),
        // An application name used as the command is shorthand for
        // `run --app <name>`; unknown names get the registry's suggestion.
        other => registry::lookup(other)
            .map_err(|e| format!("{e}; try 'invector help'"))?
            .name()
            .to_string(),
    };

    let app_entry = registry::lookup(&app)?;
    let variants = match get(&opts, "variant") {
        None | Some("all") => app_entry.variants().to_vec(),
        Some(v) => {
            let variant = Variant::parse(v)?;
            if !app_entry.variants().contains(&variant) {
                return Err(format!(
                    "variant '{}' is not legal for {} (one of: {})",
                    variant.short_name(),
                    app_entry.name(),
                    app_entry
                        .variants()
                        .iter()
                        .map(|v| v.short_name())
                        .collect::<Vec<_>>()
                        .join(" | ")
                ));
            }
            vec![variant]
        }
    };
    let repeat = lookup(&opts, "repeat", 1)?;
    if repeat == 0 {
        return Err("--repeat must be at least 1".into());
    }
    Ok(Command::Run {
        app,
        variants,
        spec: build_spec(&opts, "small")?,
        exec,
        repeat,
        obs: get(&opts, "obs").is_some(),
    })
}

/// Executes a parsed command, printing results to stdout.
///
/// # Errors
///
/// Returns a message for invalid names or sizes, and for `run-all` cells
/// that disagree with the serial reference.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Info { scale } => run_info(scale),
        Command::List => run_list(),
        Command::Run { app, variants, spec, exec, repeat, obs } => {
            run_app(&app, &variants, &spec, exec, repeat, obs)?
        }
        Command::RunAll { spec, threads, backend, app, obs } => {
            run_all(&spec, threads, backend, app.as_deref(), obs)?
        }
        Command::Metrics { addr } => run_metrics(&addr)?,
        Command::Serve {
            addr,
            spec,
            exec,
            net,
            smoke,
            clients,
            wal_dir,
            wal_sync,
            follow,
            smoke_recover,
            smoke_follow,
        } => {
            let durability = Durability { wal_dir, wal_sync };
            if smoke_recover {
                serve_smoke_recover(&spec, exec, net, durability)?
            } else if smoke_follow {
                serve_smoke_follow(&spec, exec, net, durability)?
            } else if let Some(leader) = follow {
                run_follow(&addr, &leader, exec, net)?
            } else {
                run_serve(&addr, &spec, exec, net, smoke, clients, durability)?
            }
        }
        Command::BenchServe { spec, exec, net } => run_bench_serve(&spec, exec, net)?,
    }
    Ok(())
}

fn run_info(scale: f64) {
    use invector_core::Backend;
    println!("host SIMD backends (auto resolves to {}):", BackendChoice::Auto.resolve().name());
    for b in Backend::ALL {
        println!(
            "  {:<9} {:>2} lanes  {}",
            b.name(),
            b.lanes(),
            if b.available() { "available" } else { "not available on this host" }
        );
    }
    println!("\ndatasets at scale {scale}:");
    for d in invector_graph::datasets::all(scale) {
        println!(
            "  {:<16} {:>9} vertices {:>11} edges (paper: {}x{}, {} NNZ)",
            d.name,
            d.graph.num_vertices(),
            d.graph.num_edges(),
            d.paper_vertices,
            d.paper_vertices,
            d.paper_edges
        );
    }
}

fn run_list() {
    println!("{:<10} {:<28} {:<24} summary", "app", "variants", "datasets");
    for app in registry::all() {
        let variants = app.variants().iter().map(|v| v.short_name()).collect::<Vec<_>>().join(",");
        let datasets = if app.datasets().is_empty() {
            "(synthesized)".to_string()
        } else {
            app.datasets().join(",")
        };
        println!("{:<10} {:<28} {:<24} {}", app.name(), variants, datasets, app.summary());
    }
}

fn print_record(r: &RunRecord) {
    let util =
        r.utilization.map(|u| format!("{:.2}%", u.ratio() * 100.0)).unwrap_or_else(|| "-".into());
    let throughput = r.mupdates_per_sec().map(|m| format!("{m:.2}")).unwrap_or_else(|| "-".into());
    println!(
        "{:<24} {:>8}  tiling {:>8.2}ms  grouping {:>8.2}ms  compute {:>8.2}ms  iters {:>5}  {:>10.2} Minstr  util {:>7}  {:>9} Mup/s  checksum {:.6}",
        r.label,
        r.backend.name(),
        r.timings.tiling.as_secs_f64() * 1e3,
        r.timings.grouping.as_secs_f64() * 1e3,
        r.timings.compute.as_secs_f64() * 1e3,
        r.iterations,
        r.instructions as f64 / 1e6,
        util,
        throughput,
        r.checksum()
    );
}

fn run_app(
    app: &str,
    variants: &[Variant],
    spec: &RunSpec,
    exec: ExecOpts,
    repeat: u32,
    obs: bool,
) -> Result<(), String> {
    let entry = registry::lookup(app)?;
    let workload = entry.prepare(spec)?;
    println!("{}: {}", entry.name(), workload.describe());
    if repeat > 1 {
        println!("(best of {repeat} runs per variant)");
    }
    if obs {
        invector_obs::set_enabled(true);
    }
    // Batch runs hold the policy fixed, but read it through the same
    // swappable handle the serving layer tunes through.
    let handle = exec.policy_handle();
    for &variant in variants {
        let policy = handle.exec();
        let mut best = workload.run(variant, &policy);
        for _ in 1..repeat {
            let r = workload.run(variant, &policy);
            if r.elapsed() < best.elapsed() {
                best = r;
            }
        }
        best.publish_obs();
        print_record(&best);
    }
    if obs {
        obs_report(TRACE_PATH)?;
    }
    Ok(())
}

fn run_all(
    spec: &RunSpec,
    threads: usize,
    backend: Option<BackendChoice>,
    app: Option<&str>,
    obs: bool,
) -> Result<(), String> {
    if obs {
        invector_obs::set_enabled(true);
    }
    let matrix = match backend {
        None => driver::backend_matrix(),
        Some(choice) => vec![choice],
    };
    let report = match app {
        None => driver::run_all_matrix(spec, threads, &matrix),
        Some(name) => {
            let apps = [registry::lookup(name)?];
            driver::run_all_apps(&apps, spec, threads, &matrix)
        }
    };
    let mut current_app = "";
    for cell in &report.cells {
        if cell.app != current_app {
            current_app = cell.app;
            println!("{}: {}", cell.app, cell.input);
        }
        let throughput = cell.mupdates.map(|m| format!("{m:.2}")).unwrap_or_else(|| "-".into());
        println!(
            "  {:<24} {:>8}  t={}  {:>10.2}ms  {:>9} Mup/s  checksum {:>18.6}  {}",
            cell.variant.to_string(),
            cell.backend.name(),
            cell.threads,
            cell.elapsed.as_secs_f64() * 1e3,
            throughput,
            cell.checksum,
            match &cell.error {
                None => "ok".to_string(),
                Some(e) => format!("FAIL: {e}"),
            }
        );
    }
    let throughput = report.app_throughput();
    if !throughput.is_empty() {
        println!("\nper-app throughput (best cell):");
        for (app, mupdates) in throughput {
            println!("  {app:<16} {mupdates:>9.2} Mup/s");
        }
    }
    println!(
        "\n{} cells, {} failures, {:.2}ms total",
        report.cells.len(),
        report.failures().count(),
        report.total_elapsed().as_secs_f64() * 1e3
    );
    if obs {
        obs_report(TRACE_PATH)?;
    }
    run_all_verdict(&report)
}

/// The smoke matrix's process-exit verdict: `Err` — a non-zero exit —
/// whenever the failure summary is non-empty. The message restates each
/// failing cell with its wall time, so CI logs carry the full picture in
/// one place.
fn run_all_verdict(report: &driver::SmokeReport) -> Result<(), String> {
    let failures = report.failures().count();
    if failures == 0 {
        return Ok(());
    }
    let detail: Vec<String> = report
        .failures()
        .map(|c| {
            format!(
                "{} {} on {} t={} after {:.2}ms: {}",
                c.app,
                c.variant,
                c.backend.name(),
                c.threads,
                c.elapsed.as_secs_f64() * 1e3,
                c.error.as_deref().unwrap_or("unknown")
            )
        })
        .collect();
    Err(format!("{failures} cells disagree with the serial reference:\n  {}", detail.join("\n  ")))
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

/// Where `--obs` runs dump their chrome://tracing document.
const TRACE_PATH: &str = "invector-trace.json";

/// Prints the global metric registry as a table, writes the span rings out
/// as a chrome trace, and switches runtime observability back off.
fn obs_report(trace_path: &str) -> Result<(), String> {
    use invector_obs::MetricValue;
    println!("\nobs: global metric registry");
    for m in invector_obs::Registry::global().snapshot() {
        match m.value {
            MetricValue::Counter(v) => println!("  {:<44} counter    {v}", m.name),
            MetricValue::Gauge(v) => println!("  {:<44} gauge      {v:.4}", m.name),
            MetricValue::Histogram(h) => println!(
                "  {:<44} histogram  count {} mean {:.2} p99 {:.2}",
                m.name,
                h.count,
                h.mean(),
                h.quantile(0.99)
            ),
        }
    }
    let trace = invector_obs::chrome_trace();
    std::fs::write(trace_path, &trace).map_err(|e| format!("write {trace_path}: {e}"))?;
    println!("obs: chrome trace written to {trace_path} (load at about:tracing)");
    invector_obs::set_enabled(false);
    Ok(())
}

/// Connects to a running server and prints its Prometheus exposition.
fn run_metrics(addr: &str) -> Result<(), String> {
    let mut client = TcpClient::connect(addr)?;
    let text = client.metrics()?;
    print!("{text}");
    Ok(())
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

/// Seed for synthesized serving streams; matches the harness input seed so
/// `serve --smoke` and `run --app serve` fold the same data.
const SERVE_SEED: u64 = 0x1b_f2_9d;

/// The service's table registry for CLI-started servers: a count table and
/// a min table over the spec's key cardinality. Both operators are exact,
/// so every check below can demand bitwise agreement.
fn serve_tables(cardinality: usize) -> Vec<TableSpec> {
    vec![
        TableSpec::i32("counts", OpKind::Add, cardinality),
        TableSpec::f32("mins", OpKind::Min, cardinality),
    ]
}

/// Synthesizes the two logical update streams from the spec's distribution.
fn serve_streams(spec: &RunSpec) -> (Vec<Update>, Vec<Update>) {
    let input = invector_agg::dist::generate(
        spec.dist,
        spec.rows.max(1),
        spec.cardinality.max(1),
        SERVE_SEED,
    );
    let counts = input
        .keys
        .iter()
        .enumerate()
        .map(|(seq, &k)| Update::i32(seq as u64, k as u32, 1))
        .collect();
    let mins = input
        .keys
        .iter()
        .zip(&input.vals)
        .enumerate()
        .map(|(seq, (&k, &v))| Update::f32(seq as u64, k as u32, v))
        .collect();
    (counts, mins)
}

/// Serial reference fold of both streams, as bit patterns.
fn serve_reference(counts: &[Update], mins: &[Update], cardinality: usize) -> (Vec<u32>, Vec<u32>) {
    let mut count_slots = vec![0i32; cardinality];
    for u in counts {
        count_slots[u.idx as usize] += u.bits as i32;
    }
    let mut min_slots = vec![f32::INFINITY; cardinality];
    for u in mins {
        let v = f32::from_bits(u.bits);
        if v < min_slots[u.idx as usize] {
            min_slots[u.idx as usize] = v;
        }
    }
    (
        count_slots.into_iter().map(|v| v as u32).collect(),
        min_slots.into_iter().map(f32::to_bits).collect(),
    )
}

/// Parsed `--wal-dir` / `--wal-sync`: the serve command's durability
/// request, resolved to [`WalOptions`] when a directory was given.
#[derive(Debug, Clone)]
struct Durability {
    wal_dir: Option<String>,
    wal_sync: SyncPolicy,
}

impl Durability {
    fn options(&self) -> Option<WalOptions> {
        self.wal_dir.as_ref().map(|dir| {
            let mut wal = WalOptions::new(dir);
            wal.sync = self.wal_sync;
            wal
        })
    }
}

fn serve_config(spec: &RunSpec, exec: ExecOpts, net: NetOpts) -> ServeConfig {
    let mut config = ServeConfig::new(serve_tables(spec.cardinality.max(1)));
    config.shards = exec.shards;
    config.quantum = exec.quantum;
    config.threads = exec.threads;
    config.backend = exec.backend;
    config.io_threads = net.io_threads;
    config.max_connections = net.max_conns;
    config.reactor = net.reactor;
    if exec.tune {
        config.tune = TuneMode::Auto(TuneConfig::default());
    }
    config
}

fn run_serve(
    addr: &str,
    spec: &RunSpec,
    exec: ExecOpts,
    net: NetOpts,
    smoke: bool,
    clients: usize,
    durability: Durability,
) -> Result<(), String> {
    if smoke {
        return serve_smoke(spec, exec, net, clients);
    }
    let mut config = serve_config(spec, exec, net);
    config.wal = durability.options();
    let durable = config.wal.is_some();
    let server = Server::bind(config, addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("invector-serve listening on {}", server.local_addr());
    if durable {
        println!(
            "  durability: WAL at {} (sync {:?}); restart recovers bitwise",
            durability.wal_dir.as_deref().unwrap_or("?"),
            durability.wal_sync
        );
    }
    println!("  tables: counts (i32 add), mins (f32 min) x {} slots", spec.cardinality.max(1));
    println!(
        "  shards {}, quantum {}, threads {}, tuning {}",
        exec.shards,
        exec.quantum,
        exec.threads,
        if exec.tune { "on" } else { "off" }
    );
    println!(
        "  reactor {} x {} io threads, {} connection cap",
        net.reactor, net.io_threads, net.max_conns
    );
    println!("  backend {}", exec.backend.resolve().name());
    println!("  stop with a Shutdown frame (protocol v{})", invector_serve::PROTOCOL_VERSION);
    server.join();
    Ok(())
}

/// Loopback self-check: `clients` racing TCP clients and one in-process
/// client drive a mixed workload against an ephemeral server; the drained
/// snapshots must match the serial fold bitwise, and shutdown must drain
/// cleanly.
fn serve_smoke(spec: &RunSpec, exec: ExecOpts, net: NetOpts, clients: usize) -> Result<(), String> {
    let cardinality = spec.cardinality.max(1);
    let config = serve_config(spec, exec, net);
    let server = Server::bind(config, "127.0.0.1:0").map_err(|e| format!("bind loopback: {e}"))?;
    let addr = server.local_addr();
    println!(
        "serve smoke on {addr}: shards {}, quantum {}, threads {}, tuning {}, \
         reactor {} x {} io threads, {clients} clients, backend {}",
        exec.shards,
        exec.quantum,
        exec.threads,
        if exec.tune { "on" } else { "off" },
        net.reactor,
        net.io_threads,
        exec.backend.resolve().name()
    );

    let (counts, mins) = serve_streams(spec);
    let (expect_counts, expect_mins) = serve_reference(&counts, &mins, cardinality);

    // Split the count stream across `clients` TCP connections on real
    // threads (their submissions genuinely race), keep the min stream in
    // process.
    const CHUNK: usize = 97;
    let mut split: Vec<Vec<Update>> = vec![Vec::new(); clients];
    for (i, chunk) in counts.chunks(CHUNK).enumerate() {
        split[i % clients].extend_from_slice(chunk);
    }
    let writers: Vec<std::thread::JoinHandle<Result<(), String>>> = split
        .into_iter()
        .map(|updates| {
            std::thread::spawn(move || {
                // A large client storm can outrun the listen backlog;
                // refused connects just need another try.
                let mut client = None;
                for _ in 0..200 {
                    match TcpClient::connect(addr) {
                        Ok(c) => {
                            client = Some(c);
                            break;
                        }
                        Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
                    }
                }
                let mut client = client.ok_or_else(|| format!("could not connect to {addr}"))?;
                for chunk in updates.chunks(CHUNK) {
                    client.submit_all(0, chunk)?;
                }
                Ok(())
            })
        })
        .collect();
    let mut local = LocalClient::new(server.core());
    for chunk in mins.chunks(CHUNK) {
        local.submit_all(1, chunk)?;
    }
    for writer in writers {
        writer.join().map_err(|_| "TCP writer thread panicked".to_string())??;
    }
    local.flush()?;

    // Verify over the wire, then drain and stop.
    let mut check = TcpClient::connect(addr)?;
    let got_counts = check.snapshot(0)?;
    let got_mins = check.snapshot(1)?;
    if got_counts.bits() != expect_counts {
        return Err("count table diverged from the serial fold".into());
    }
    if got_mins.bits() != expect_mins {
        return Err("min table diverged from the serial fold".into());
    }
    let stats = check.stats()?;
    println!(
        "  applied {} in {} slices / {} epochs, occupancy {:.2}, depth {:.2}, {:.2} Mup/s, p50 {:.0}us p99 {:.0}us",
        stats.applied,
        stats.slices,
        stats.epochs,
        stats.occupancy,
        stats.conflict_depth,
        stats.updates_per_sec / 1e6,
        stats.p50_epoch_us,
        stats.p99_epoch_us
    );
    // The exposition must scrape over the wire and carry the service
    // series (registration is unconditional, so this holds with the obs
    // feature compiled out too — the values just read zero).
    let exposition = check.metrics()?;
    if !exposition.contains("invector_serve_epochs_total") {
        return Err("metrics scrape is missing the service series".into());
    }
    println!("  metrics scrape: {} bytes of exposition", exposition.len());
    // Reactor evidence: the connection and wakeup series must be present
    // in the scrape (registration is unconditional; with the obs feature
    // compiled out the values read zero).
    for series in [
        "invector_serve_open_connections",
        "invector_serve_wakeups_total",
        "invector_serve_accepted_total",
    ] {
        let line = exposition
            .lines()
            .find(|l| l.starts_with(series))
            .ok_or_else(|| format!("metrics scrape is missing {series}"))?;
        println!("  {line}");
    }
    let watermarks = check.shutdown()?;
    let rows = counts.len() as u64;
    if watermarks != vec![rows, rows] {
        return Err(format!("shutdown watermarks {watermarks:?}, expected [{rows}, {rows}]"));
    }
    if exec.tune {
        let core = server.core();
        println!(
            "  tuning: {} policy changes recorded, final quantum {}",
            core.policy_trace().len(),
            core.current_policy().quantum
        );
    }
    server.join();
    println!("  snapshots match the serial fold bitwise; drain clean");
    Ok(())
}

/// Follower mode: bootstrap from the leader's chunked snapshot, tail its
/// log, and serve read-only snapshots on `addr` until interrupted.
fn run_follow(addr: &str, leader: &str, exec: ExecOpts, net: NetOpts) -> Result<(), String> {
    let mut config = ServeConfig::new(Vec::new());
    config.threads = exec.threads;
    config.backend = exec.backend;
    config.io_threads = net.io_threads;
    config.max_connections = net.max_conns;
    config.reactor = net.reactor;
    let follower = Follower::start(leader, config)?;
    let server =
        Server::serve_core(follower.core(), addr).map_err(|e| format!("bind {addr}: {e}"))?;
    println!("invector-serve following {leader}, read-only on {}", server.local_addr());
    println!("  every epoch seal is checksum-verified; divergence stops the follower");
    loop {
        match follower.status() {
            FollowStatus::Diverged(m) => {
                server.shutdown();
                server.join();
                return Err(format!("follower diverged: {m}"));
            }
            FollowStatus::Stopped => {
                println!("  leader closed the stream; shutting down");
                server.shutdown();
                server.join();
                return Ok(());
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(100)),
        }
    }
}

/// A scratch directory under the system tmpdir, unique per process.
fn smoke_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("invector-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Crash-recovery smoke: run a durable child server, SIGKILL it mid-epoch,
/// restart over its WAL directory, and demand bitwise agreement with an
/// uninterrupted reference at the recovered watermark.
fn serve_smoke_recover(
    spec: &RunSpec,
    exec: ExecOpts,
    net: NetOpts,
    durability: Durability,
) -> Result<(), String> {
    let cardinality = spec.cardinality.max(1);
    let dir = durability
        .wal_dir
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| smoke_dir("smoke-recover"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    println!(
        "recover smoke: WAL at {}, sync {:?}, quantum {}",
        dir.display(),
        durability.wal_sync,
        exec.quantum
    );

    // A durable child server on an ephemeral port; its first stdout line
    // names the bound address.
    let mut child = std::process::Command::new(&exe)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--wal-dir",
            dir.to_str().ok_or("non-UTF-8 tmp path")?,
            "--wal-sync",
            match durability.wal_sync {
                SyncPolicy::Always => "always",
                SyncPolicy::Epoch => "epoch",
                SyncPolicy::Os => "os",
            },
            "--quantum",
            &exec.quantum.to_string(),
            "--cardinality",
            &cardinality.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn child server: {e}"))?;
    let addr = {
        use std::io::BufRead;
        let stdout = child.stdout.take().ok_or("child stdout")?;
        let mut lines = std::io::BufReader::new(stdout).lines();
        let first = lines
            .next()
            .ok_or("child exited before announcing its address")?
            .map_err(|e| format!("read child stdout: {e}"))?;
        // Drain the rest on a detached thread so the child never blocks on
        // a full pipe.
        std::thread::spawn(move || for _ in lines.by_ref() {});
        first
            .rsplit(' ')
            .next()
            .filter(|a| a.contains(':'))
            .ok_or_else(|| format!("unexpected child banner: {first}"))?
            .to_string()
    };
    println!("  child serving on {addr}");

    // Stream updates and kill the child mid-flight — between a submit and
    // the epoch that would apply it, with slices already logged.
    let (counts, mins) = serve_streams(spec);
    let mut client = TcpClient::connect(&addr)?;
    let kill_at = counts.len() / 2;
    let mut sent = 0usize;
    for (a, b) in counts.chunks(64).zip(mins.chunks(64)) {
        client.submit_all(0, a)?;
        client.submit_all(1, b)?;
        client.flush()?;
        sent += a.len();
        if sent >= kill_at {
            break;
        }
    }
    child.kill().map_err(|e| format!("SIGKILL child: {e}"))?;
    child.wait().ok();
    println!("  killed child after {sent} updates per table");

    // Restart over the WAL directory in-process and compare against an
    // uninterrupted reference run at the recovered watermark.
    let mut config = serve_config(spec, exec, net);
    config.wal = durability.options().or_else(|| Some(WalOptions::new(&dir)));
    let recovered = ServerCore::new(config).map_err(|e| format!("recovery failed: {e}"))?;
    let wm_counts = recovered.snapshot(0)?.watermark;
    let wm_mins = recovered.snapshot(1)?.watermark;
    println!("  recovered watermarks: counts {wm_counts}, mins {wm_mins}");

    let reference = {
        let mut config = serve_config(spec, exec, net);
        config.wal = None;
        let core = ServerCore::new(config)?;
        let mut local = LocalClient::new(core.clone());
        local.submit_all(0, &counts[..wm_counts as usize])?;
        local.submit_all(1, &mins[..wm_mins as usize])?;
        local.flush()?;
        core
    };
    for (t, name) in [(0u16, "counts"), (1u16, "mins")] {
        let got = recovered.snapshot(t)?;
        let expect = reference.snapshot(t)?;
        if got.checksum != expect.checksum || got.bits() != expect.bits() {
            return Err(format!(
                "table {name} diverged after crash recovery \
                 (checksum {:#010x} vs reference {:#010x})",
                got.checksum, expect.checksum
            ));
        }
        println!("  {name}: checksum {:#010x} matches the uninterrupted reference", got.checksum);
    }
    if durability.wal_dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }
    println!("  crash recovery is bitwise-exact");
    Ok(())
}

/// Leader/follower loopback smoke: a durable leader, a follower tailing it
/// over TCP under concurrent ingest, per-epoch checksum verification, and
/// a final bitwise compare.
fn serve_smoke_follow(
    spec: &RunSpec,
    exec: ExecOpts,
    net: NetOpts,
    durability: Durability,
) -> Result<(), String> {
    let dir = durability
        .wal_dir
        .clone()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| smoke_dir("smoke-follow"));
    let mut config = serve_config(spec, exec, net);
    let mut wal = durability.options().unwrap_or_else(|| WalOptions::new(&dir));
    wal.dir = dir.clone();
    // Checkpoint aggressively so the smoke also crosses a generation
    // reset, not just the steady tail.
    wal.checkpoint_epochs = 16;
    config.wal = Some(wal);
    let leader = Server::bind(config, "127.0.0.1:0").map_err(|e| format!("bind leader: {e}"))?;
    let leader_addr = leader.local_addr().to_string();
    println!("follow smoke: leader on {leader_addr}, WAL at {}", dir.display());

    let follower = Follower::start(&leader_addr, ServeConfig::new(Vec::new()))?;
    let front = Server::serve_core(follower.core(), "127.0.0.1:0")
        .map_err(|e| format!("bind follower front end: {e}"))?;
    println!("  follower read-only on {}", front.local_addr());

    // Concurrent ingest: epoch-sized submissions with explicit flushes so
    // the run crosses many sealed epochs.
    let (counts, mins) = serve_streams(spec);
    let mut ingest = TcpClient::connect(&leader_addr)?;
    let quantum = exec.quantum.max(1);
    let mut epochs = 0usize;
    for (a, b) in counts.chunks(quantum).zip(mins.chunks(quantum)) {
        ingest.submit_all(0, a)?;
        ingest.submit_all(1, b)?;
        ingest.flush()?;
        epochs += 1;
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    println!("  ingested {} updates per table across {epochs} flushed epochs", counts.len());

    // Wait for convergence, then compare bitwise over the wire.
    let target = counts.len().min(mins.len()) as u64;
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let caught_up = (0..2u16)
            .all(|t| follower.core().snapshot(t).map(|s| s.watermark >= target).unwrap_or(false));
        if caught_up {
            break;
        }
        if let FollowStatus::Diverged(m) = follower.status() {
            return Err(format!("follower diverged: {m}"));
        }
        if Instant::now() >= deadline {
            return Err("follower failed to catch up within 30s".into());
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let mut check = TcpClient::connect(format!("{}", front.local_addr()))?;
    for (t, name) in [(0u16, "counts"), (1u16, "mins")] {
        let leader_snap = ingest.snapshot(t)?;
        let follow_snap = check.snapshot(t)?;
        if leader_snap.checksum != follow_snap.checksum || leader_snap.bits() != follow_snap.bits()
        {
            return Err(format!("table {name} diverged between leader and follower"));
        }
        println!(
            "  {name}: watermark {} checksum {:#010x} identical on both sides",
            follow_snap.watermark, follow_snap.checksum
        );
    }
    // A follower front end is read-only: submits must be refused.
    match check.submit(0, &[Update::i32(u64::MAX, 0, 1)]) {
        Ok(SubmitOutcome::Failed(m)) if m.contains("read-only") => {}
        other => return Err(format!("read-only follower accepted a submit: {other:?}")),
    }
    println!("  follower refused a direct submit (read-only)");
    follower.stop();
    front.shutdown();
    front.join();
    leader.shutdown();
    leader.join();
    if durability.wal_dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }
    println!("  leader/follower converge bitwise with per-epoch verification");
    Ok(())
}

/// In-process throughput sweep: the same stream folded under increasing
/// epoch quanta, showing what micro-batching buys over per-update epochs.
/// With `--tune`, a final row starts the controller at the worst quantum
/// and reports where it converges.
fn run_bench_serve(spec: &RunSpec, exec: ExecOpts, net: NetOpts) -> Result<(), String> {
    let (counts, _) = serve_streams(spec);
    println!(
        "bench-serve: {} updates, {} slots, shards {}, threads {}, backend {}",
        counts.len(),
        spec.cardinality.max(1),
        exec.shards,
        exec.threads,
        exec.backend.resolve().name()
    );
    println!("{:>8} {:>12} {:>12} {:>10}", "quantum", "elapsed_ms", "Mup/s", "slices");
    let mut baseline = None;
    let fold = |config: ServeConfig| -> Result<(f64, u64, std::sync::Arc<ServerCore>), String> {
        let core = ServerCore::new(config)?;
        let mut client = LocalClient::new(core.clone());
        let start = Instant::now();
        for chunk in counts.chunks(1024) {
            client.submit_all(0, chunk)?;
        }
        client.flush()?;
        let elapsed = start.elapsed().as_secs_f64();
        let slices = client.stats()?.slices;
        Ok((elapsed, slices, core))
    };
    for quantum in [1usize, 64, 1024, 4096] {
        let mut config = serve_config(spec, ExecOpts { quantum, tune: false, ..exec }, net);
        config.queue_capacity = quantum.max(4096) * 4;
        let (elapsed, slices, _) = fold(config)?;
        let mups = counts.len() as f64 / elapsed / 1e6;
        let speedup = match baseline {
            None => {
                baseline = Some(mups);
                String::new()
            }
            Some(b) => format!("  ({:.1}x vs quantum 1)", mups / b),
        };
        println!("{:>8} {:>12.2} {:>12.2} {:>10}{}", quantum, elapsed * 1e3, mups, slices, speedup);
    }
    if exec.tune {
        // Start the controller at the smallest rung so the row shows the
        // climb, not the starting guess.
        let ladder = TuneConfig::default().quantum_ladder;
        let mut config = serve_config(spec, ExecOpts { quantum: ladder[0], ..exec }, net);
        config.queue_capacity = ladder.last().copied().unwrap_or(4096) * 4;
        let (elapsed, slices, core) = fold(config)?;
        let mups = counts.len() as f64 / elapsed / 1e6;
        println!(
            "{:>8} {:>12.2} {:>12.2} {:>10}  (tuned from {}, {} policy changes, final quantum {})",
            "tuned",
            elapsed * 1e3,
            mups,
            slices,
            ladder[0],
            core.policy_trace().len(),
            core.current_policy().quantum
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("list")).unwrap(), Command::List);
    }

    #[test]
    fn app_name_is_shorthand_for_run() {
        let direct = parse(&args("sssp --variant invec --source 3")).unwrap();
        let explicit = parse(&args("run --app sssp --variant invec --source 3")).unwrap();
        assert_eq!(direct, explicit);
        match direct {
            Command::Run { app, variants, spec, exec, repeat, obs } => {
                assert_eq!(app, "sssp");
                assert_eq!(variants, vec![Variant::Invec]);
                assert_eq!(spec.source, 3);
                assert_eq!(spec.scale, RunSpec::small().scale);
                assert_eq!(exec.threads, 1);
                assert_eq!(exec.backend, BackendChoice::Auto);
                assert_eq!(repeat, 1);
                assert!(!obs, "--obs defaults off");
                assert!(!exec.tune, "--tune defaults off");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn repeat_is_parsed_and_validated() {
        match parse(&args("agg --repeat 5")).unwrap() {
            Command::Run { repeat, .. } => assert_eq!(repeat, 5),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&args("agg --repeat 0")).is_err());
    }

    #[test]
    fn serve_command_shadows_the_app_shorthand_and_takes_serving_options() {
        match parse(&args("serve --shards 8 --quantum 512 --smoke")).unwrap() {
            Command::Serve { addr, exec, smoke, .. } => {
                assert_eq!(addr, "127.0.0.1:7411");
                assert_eq!(exec.shards, 8);
                assert_eq!(exec.quantum, 512);
                assert!(smoke);
                assert!(!exec.tune);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The harness workload stays reachable through run --app.
        match parse(&args("run --app serve")).unwrap() {
            Command::Run { app, .. } => assert_eq!(app, "serve"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&args("serve --quantum 0")).is_err());
        assert!(parse(&args("serve --shards 0")).is_err());
    }

    #[test]
    fn serve_parses_reactor_knobs_and_validates_them() {
        match parse(&args("serve --io-threads 4 --max-conns 512 --reactor poll --clients 16"))
            .unwrap()
        {
            Command::Serve { net, clients, .. } => {
                assert_eq!(net.io_threads, 4);
                assert_eq!(net.max_conns, 512);
                assert_eq!(net.reactor, ReactorKind::Poll);
                assert_eq!(clients, 16);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&args("serve")).unwrap() {
            Command::Serve { net, clients, .. } => {
                assert_eq!(net.io_threads, 2);
                assert_eq!(net.max_conns, 4096);
                assert_eq!(net.reactor, ReactorKind::Auto);
                assert_eq!(clients, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&args("bench-serve --reactor epoll")).unwrap() {
            Command::BenchServe { net, .. } => assert_eq!(net.reactor, ReactorKind::Epoll),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&args("serve --io-threads 0")).is_err());
        assert!(parse(&args("serve --max-conns 0")).is_err());
        assert!(parse(&args("serve --clients 0")).is_err());
        assert!(parse(&args("serve --reactor kqueue")).is_err());
    }

    #[test]
    fn bench_serve_parses_with_defaults() {
        match parse(&args("bench-serve --scale tiny")).unwrap() {
            Command::BenchServe { spec, exec, .. } => {
                assert_eq!(spec.rows, RunSpec::tiny().rows);
                assert_eq!(exec.threads, 1);
                assert_eq!(exec.shards, 4);
                assert_eq!(exec.quantum, 4096);
                assert!(!exec.tune);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tune_flag_parses_on_the_serving_commands() {
        match parse(&args("serve --tune --smoke")).unwrap() {
            Command::Serve { exec, .. } => assert!(exec.tune),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&args("bench-serve --tune --scale tiny")).unwrap() {
            Command::BenchServe { exec, .. } => assert!(exec.tune),
            other => panic!("unexpected {other:?}"),
        }
        let config = serve_config(
            &RunSpec::tiny(),
            ExecOpts {
                threads: 1,
                backend: BackendChoice::Auto,
                shards: 2,
                quantum: 64,
                tune: true,
            },
            NetOpts { io_threads: 1, max_conns: 8, reactor: ReactorKind::Auto },
        );
        assert!(matches!(config.tune, TuneMode::Auto(_)), "--tune selects the controller");
    }

    #[test]
    fn serve_smoke_round_trips_on_loopback() {
        let spec = RunSpec { rows: 1200, cardinality: 32, ..RunSpec::tiny() };
        let net = NetOpts { io_threads: 2, max_conns: 64, reactor: ReactorKind::Auto };
        let exec = ExecOpts {
            threads: 1,
            backend: BackendChoice::Auto,
            shards: 3,
            quantum: 128,
            tune: false,
        };
        serve_smoke(&spec, exec, net, 4).expect("smoke must pass");
    }

    #[test]
    fn serve_smoke_stays_bitwise_correct_with_tuning_on() {
        let spec = RunSpec { rows: 1500, cardinality: 32, ..RunSpec::tiny() };
        let net = NetOpts { io_threads: 2, max_conns: 64, reactor: ReactorKind::Auto };
        let exec = ExecOpts {
            threads: 1,
            backend: BackendChoice::Auto,
            shards: 2,
            quantum: 64,
            tune: true,
        };
        serve_smoke(&spec, exec, net, 2).expect("tuned smoke must still match the serial fold");
    }

    #[test]
    fn variant_all_resolves_against_the_apps_legal_set() {
        match parse(&args("agg --variant all")).unwrap() {
            Command::Run { variants, .. } => {
                assert_eq!(variants, vec![Variant::Serial, Variant::Masked, Variant::Invec]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&args("pagerank")).unwrap() {
            Command::Run { variants, .. } => assert_eq!(variants.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn illegal_variant_for_app_is_rejected_with_the_legal_set() {
        let err = parse(&args("agg --variant tiled")).expect_err("tiled agg must not parse");
        assert!(err.contains("not legal for agg"), "{err}");
        assert!(err.contains("serial | masked | invec"), "{err}");
    }

    #[test]
    fn typo_in_app_name_gets_a_suggestion() {
        let err = parse(&args("pagernak")).expect_err("typo must not parse");
        assert!(err.contains("did you mean 'pagerank'"), "{err}");
        let err = parse(&args("run --app ssp")).expect_err("typo must not parse");
        assert!(err.contains("did you mean"), "{err}");
    }

    #[test]
    fn spec_overrides_compose_with_the_scale_preset() {
        match parse(&args("agg --scale tiny --rows 500 --dist moving-cluster")).unwrap() {
            Command::Run { spec, .. } => {
                assert_eq!(spec.rows, 500);
                assert_eq!(spec.dist, Distribution::MovingCluster);
                assert_eq!(spec.cardinality, RunSpec::tiny().cardinality);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_all_defaults_to_tiny_and_accepts_threads() {
        assert_eq!(
            parse(&args("run-all")).unwrap(),
            Command::RunAll {
                spec: RunSpec::tiny(),
                threads: 1,
                backend: None,
                app: None,
                obs: false
            }
        );
        assert_eq!(
            parse(&args("run-all --scale tiny --threads 2 --obs")).unwrap(),
            Command::RunAll {
                spec: RunSpec::tiny(),
                threads: 2,
                backend: None,
                app: None,
                obs: true
            }
        );
        assert_eq!(
            parse(&args("run-all --backend portable")).unwrap(),
            Command::RunAll {
                spec: RunSpec::tiny(),
                threads: 1,
                backend: Some(BackendChoice::Portable),
                app: None,
                obs: false
            }
        );
    }

    #[test]
    fn run_all_app_filter_resolves_against_the_registry() {
        assert_eq!(
            parse(&args("run-all --app STREAM-GRAPH")).unwrap(),
            Command::RunAll {
                spec: RunSpec::tiny(),
                threads: 1,
                backend: None,
                app: Some("stream-graph".to_string()),
                obs: false
            }
        );
        let err = parse(&args("run-all --app stream-grpah")).unwrap_err();
        assert!(err.contains("did you mean 'stream-graph'"), "{err}");
    }

    #[test]
    fn obs_flag_and_metrics_command_parse() {
        match parse(&args("agg --scale tiny --obs")).unwrap() {
            Command::Run { obs, .. } => assert!(obs),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&args("metrics")).unwrap(),
            Command::Metrics { addr: "127.0.0.1:7411".to_string() }
        );
        assert_eq!(
            parse(&args("metrics --addr 10.0.0.1:9000")).unwrap(),
            Command::Metrics { addr: "10.0.0.1:9000".to_string() }
        );
    }

    #[test]
    fn run_all_verdict_is_nonzero_exactly_when_failures_exist() {
        use std::time::Duration;

        use invector_core::Backend;
        use invector_harness::CellReport;

        let cell = |error: Option<String>| CellReport {
            app: "agg",
            input: "synthetic".to_string(),
            variant: Variant::Invec,
            backend: Backend::Portable,
            threads: 1,
            checksum: 0.0,
            elapsed: Duration::from_millis(3),
            mupdates: None,
            error,
        };
        let clean = driver::SmokeReport { cells: vec![cell(None), cell(None)] };
        assert!(run_all_verdict(&clean).is_ok());

        let broken = driver::SmokeReport {
            cells: vec![cell(None), cell(Some("value 7 diverged".to_string()))],
        };
        let err = run_all_verdict(&broken).expect_err("failures must exit non-zero");
        assert!(err.contains("1 cells disagree"), "{err}");
        assert!(err.contains(&format!("agg {} on portable t=1", Variant::Invec)), "{err}");
        assert!(err.contains("value 7 diverged"), "{err}");
    }

    #[test]
    fn obs_run_writes_a_parseable_chrome_trace() {
        let dir = std::env::temp_dir().join("invector-cli-obs-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.json");
        let path = path.to_str().expect("utf8 path");

        invector_obs::set_enabled(true);
        let spec = RunSpec { rows: 400, cardinality: 16, ..RunSpec::tiny() };
        let exec = ExecOpts {
            threads: 2,
            backend: BackendChoice::Auto,
            shards: 4,
            quantum: 4096,
            tune: false,
        };
        run_app("agg", &[Variant::Invec], &spec, exec, 1, false).expect("agg run");
        obs_report(path).expect("obs report");

        let text = std::fs::read_to_string(path).expect("trace file");
        let doc = invector_obs::json::parse(&text).expect("trace parses as JSON");
        let events = doc.get("traceEvents").expect("traceEvents").as_array().expect("array");
        for e in events {
            assert!(e.get("name").unwrap().as_str().is_some());
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_unknown_command_option_and_values() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("sssp --bogus 1")).is_err());
        assert!(parse(&args("sssp --variant warp")).is_err());
        assert!(parse(&args("agg --dist normal")).is_err());
        assert!(parse(&args("sssp --scale 0")).is_err());
        assert!(parse(&args("sssp --scale")).is_err());
        assert!(parse(&args("sssp extra")).is_err());
        assert!(parse(&args("sssp --threads 0")).is_err());
        let err = parse(&args("sssp --backend gpu")).unwrap_err();
        assert!(err.contains("valid values"), "backend error lists valid names: {err}");
        assert!(err.contains("supported on this host"), "backend error lists host support: {err}");
        assert!(parse(&args("run")).is_err());
    }

    #[test]
    fn run_executes_small_commands() {
        run(Command::List).unwrap();
        run(Command::Info { scale: 0.001 }).unwrap();
        run(parse(&args("wcc --dataset amazon0312 --variant invec --scale tiny")).unwrap())
            .unwrap();
        run(parse(&args("agg --scale tiny --rows 2000 --cardinality 16")).unwrap()).unwrap();
        run(parse(&args("moldyn --scale tiny --iters 2 --variant serial")).unwrap()).unwrap();
        run(parse(&args("spmv --dataset soc-Pokec --variant invec --scale tiny")).unwrap())
            .unwrap();
        run(parse(&args("euler --mesh 6 --iters 2 --variant masked --scale tiny")).unwrap())
            .unwrap();
        run(parse(&args("bfs --scale tiny --backend portable --threads 2")).unwrap()).unwrap();
        run(parse(&args("agg --scale tiny --rows 1000 --repeat 2")).unwrap()).unwrap();
        run(parse(&args("run --app serve --scale tiny --variant invec")).unwrap()).unwrap();
        run(parse(&args("bench-serve --scale tiny --rows 3000 --cardinality 32")).unwrap())
            .unwrap();
    }

    #[test]
    fn run_rejects_bad_dataset_and_degenerate_mesh() {
        assert!(run(parse(&args("sssp --dataset nope --scale tiny")).unwrap()).is_err());
        assert!(run(parse(&args("euler --mesh 1 --scale tiny")).unwrap()).is_err());
    }
}
