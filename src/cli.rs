//! Command-line interface: parse-and-dispatch for the `invector` binary.
//!
//! Hand-rolled argument parsing (no external dependencies) split from
//! `main.rs` so it is unit-testable.

use invector_agg::dist::Distribution;
use invector_agg::run::Method;
use invector_graph::datasets::{self, Dataset};
use invector_kernels::Variant;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print dataset registry and host capabilities.
    Info {
        /// Dataset scale factor.
        scale: f64,
    },
    /// Run a graph application.
    Graph {
        /// Which application.
        app: GraphApp,
        /// Dataset name.
        dataset: String,
        /// Variants to run.
        variants: Vec<Variant>,
        /// Dataset scale factor.
        scale: f64,
        /// Source vertex for SSSP/SSWP.
        source: i32,
    },
    /// Run the Moldyn simulation.
    Moldyn {
        /// Variants to run.
        variants: Vec<Variant>,
        /// Dataset scale factor.
        scale: f64,
        /// Simulation iterations.
        iters: u32,
    },
    /// Run hash aggregation.
    Agg {
        /// Input distribution.
        dist: Distribution,
        /// Number of rows.
        rows: usize,
        /// Group-by cardinality.
        cardinality: usize,
    },
    /// Run the Euler-style mesh solver.
    Euler {
        /// Mesh side length (nodes per edge).
        mesh: usize,
        /// Sweep iterations.
        iters: u32,
        /// Variants to run.
        variants: Vec<Variant>,
    },
    /// Print usage.
    Help,
}

/// The graph applications the CLI can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphApp {
    /// PageRank (Figure 8).
    PageRank,
    /// Single-source shortest path (Figure 9).
    Sssp,
    /// Single-source widest path (Figure 10).
    Sswp,
    /// Weakly connected components (Figure 11).
    Wcc,
    /// Sparse matrix-vector multiplication (library extension).
    Spmv,
}

/// The usage text shown by `invector help`.
pub const USAGE: &str = "\
invector — conflict-free SIMD vectorization of irregular reductions (CGO'18)

USAGE:
  invector <command> [options]

COMMANDS:
  info                          dataset registry and host SIMD capabilities
  pagerank|sssp|sswp|wcc|spmv   run a graph application
  moldyn                        run the molecular-dynamics simulation
  euler                         run the edge-based mesh solver
  agg                           run hash-based aggregation
  help                          this text

OPTIONS:
  --dataset <name>     higgs-twitter | soc-pokec | amazon0312   [higgs-twitter]
  --variant <v>        serial | tiled | grouped | masked | invec | all   [all]
  --scale <f>          dataset scale in (0, 1]                  [0.01]
  --source <v>         source vertex for sssp/sswp              [0]
  --iters <n>          moldyn/euler iterations                  [20]
  --mesh <n>           euler mesh side (n x n nodes)            [64]
  --dist <d>           heavy-hitter | zipf | moving-cluster     [heavy-hitter]
  --rows <n>           aggregation input rows                   [1000000]
  --cardinality <n>    aggregation group count                  [1024]
";

fn parse_variant(s: &str) -> Result<Vec<Variant>, String> {
    Ok(match s {
        "serial" => vec![Variant::Serial],
        "tiled" => vec![Variant::SerialTiled],
        "grouped" => vec![Variant::Grouped],
        "masked" => vec![Variant::Masked],
        "invec" => vec![Variant::Invec],
        "all" => Variant::ALL.to_vec(),
        other => return Err(format!("unknown variant '{other}'")),
    })
}

fn parse_dist(s: &str) -> Result<Distribution, String> {
    Ok(match s {
        "heavy-hitter" => Distribution::HeavyHitter,
        "zipf" => Distribution::Zipf,
        "moving-cluster" => Distribution::MovingCluster,
        other => return Err(format!("unknown distribution '{other}'")),
    })
}

fn lookup<T: std::str::FromStr>(
    opts: &[(String, String)],
    key: &str,
    default: T,
) -> Result<T, String> {
    match opts.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, v)) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
    }
}

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, options, or
/// malformed values.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    // Collect --key value pairs.
    let mut opts: Vec<(String, String)> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got '{}'", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        opts.push((key.to_string(), value.clone()));
        i += 2;
    }
    const KNOWN: [&str; 9] =
        ["dataset", "variant", "scale", "source", "iters", "dist", "rows", "cardinality", "mesh"];
    if let Some((k, _)) = opts.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
        return Err(format!("unknown option --{k}"));
    }

    let scale: f64 = lookup(&opts, "scale", 0.01)?;
    if !(scale > 0.0 && scale <= 1.0) {
        return Err(format!("--scale must be in (0, 1], got {scale}"));
    }
    let variants = match opts.iter().find(|(k, _)| k == "variant") {
        None => Variant::ALL.to_vec(),
        Some((_, v)) => parse_variant(v)?,
    };
    let dataset = lookup(&opts, "dataset", "higgs-twitter".to_string())?;

    let app = match command.as_str() {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "info" => return Ok(Command::Info { scale }),
        "moldyn" => {
            return Ok(Command::Moldyn { variants, scale, iters: lookup(&opts, "iters", 20)? })
        }
        "euler" => {
            return Ok(Command::Euler {
                mesh: lookup(&opts, "mesh", 64)?,
                iters: lookup(&opts, "iters", 20)?,
                variants,
            })
        }
        "agg" => {
            let dist = match opts.iter().find(|(k, _)| k == "dist") {
                None => Distribution::HeavyHitter,
                Some((_, v)) => parse_dist(v)?,
            };
            return Ok(Command::Agg {
                dist,
                rows: lookup(&opts, "rows", 1_000_000)?,
                cardinality: lookup(&opts, "cardinality", 1024)?,
            });
        }
        "pagerank" => GraphApp::PageRank,
        "sssp" => GraphApp::Sssp,
        "sswp" => GraphApp::Sswp,
        "wcc" => GraphApp::Wcc,
        "spmv" => GraphApp::Spmv,
        other => return Err(format!("unknown command '{other}' (try 'invector help')")),
    };
    Ok(Command::Graph { app, dataset, variants, scale, source: lookup(&opts, "source", 0)? })
}

fn load_dataset(name: &str, scale: f64) -> Result<Dataset, String> {
    match name {
        "higgs-twitter" => Ok(datasets::higgs_twitter(scale)),
        "soc-pokec" | "soc-Pokec" => Ok(datasets::soc_pokec(scale)),
        "amazon0312" => Ok(datasets::amazon0312(scale)),
        other => Err(format!("unknown dataset '{other}'")),
    }
}

/// Executes a parsed command, printing results to stdout.
///
/// # Errors
///
/// Returns a message for invalid dataset names or out-of-range sources.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Info { scale } => run_info(scale),
        Command::Graph { app, dataset, variants, scale, source } => {
            let d = load_dataset(&dataset, scale)?;
            if app != GraphApp::Wcc
                && app != GraphApp::PageRank
                && !(0..d.graph.num_vertices() as i32).contains(&source)
            {
                return Err(format!("source {source} out of range"));
            }
            run_graph(app, &d, &variants, source);
        }
        Command::Moldyn { variants, scale, iters } => run_moldyn(&variants, scale, iters),
        Command::Euler { mesh, iters, variants } => run_euler(mesh, iters, &variants)?,
        Command::Agg { dist, rows, cardinality } => run_agg(dist, rows, cardinality),
    }
    Ok(())
}

fn run_info(scale: f64) {
    println!("host AVX-512 (avx512f+cd): {}", invector_simd::native::available());
    println!("\ndatasets at scale {scale}:");
    for d in datasets::all(scale) {
        println!(
            "  {:<16} {:>9} vertices {:>11} edges (paper: {}x{}, {} NNZ)",
            d.name,
            d.graph.num_vertices(),
            d.graph.num_edges(),
            d.paper_vertices,
            d.paper_vertices,
            d.paper_edges
        );
    }
}

fn print_run_row(label: &str, r: &invector_kernels::RunResult<impl std::fmt::Debug>) {
    let util =
        r.utilization.map(|u| format!("{:.2}%", u.ratio() * 100.0)).unwrap_or_else(|| "-".into());
    println!(
        "{:<24} tiling {:>8.2}ms  grouping {:>8.2}ms  compute {:>8.2}ms  iters {:>5}  {:>10.2} Minstr  util {}",
        label,
        r.timings.tiling.as_secs_f64() * 1e3,
        r.timings.grouping.as_secs_f64() * 1e3,
        r.timings.compute.as_secs_f64() * 1e3,
        r.iterations,
        r.instructions as f64 / 1e6,
        util
    );
}

fn run_graph(app: GraphApp, d: &Dataset, variants: &[Variant], source: i32) {
    println!(
        "{:?} on {} ({} vertices, {} edges)",
        app,
        d.name,
        d.graph.num_vertices(),
        d.graph.num_edges()
    );
    for &variant in variants {
        match app {
            GraphApp::PageRank => {
                let r = invector_kernels::pagerank(
                    &d.graph,
                    variant,
                    &invector_kernels::PageRankConfig::default(),
                );
                print_run_row(variant.tiled_label(), &r);
            }
            GraphApp::Sssp => {
                let r = invector_kernels::sssp(&d.graph, source, variant, 10_000);
                print_run_row(variant.frontier_label(), &r);
            }
            GraphApp::Sswp => {
                let r = invector_kernels::sswp(&d.graph, source, variant, 10_000);
                print_run_row(variant.frontier_label(), &r);
            }
            GraphApp::Wcc => {
                let r = invector_kernels::wcc(&d.graph, variant, 10_000);
                print_run_row(variant.frontier_label(), &r);
            }
            GraphApp::Spmv => {
                let x = vec![1.0f32; d.graph.num_vertices()];
                let r = invector_kernels::spmv(&d.graph, &x, variant);
                print_run_row(variant.tiled_label(), &r);
            }
        }
    }
}

fn run_moldyn(variants: &[Variant], scale: f64, iters: u32) {
    let molecules = invector_moldyn::input::input_16_3_0r(scale);
    println!("moldyn 16-3.0r at scale {scale}: {} molecules, {iters} iterations", molecules.len());
    for &variant in variants {
        let r = invector_moldyn::sim::simulate(&molecules, variant, iters);
        let util = r
            .utilization
            .map(|u| format!("{:.2}%", u.ratio() * 100.0))
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<24} tiling {:>8.2}ms  grouping {:>8.2}ms  compute {:>8.2}ms  pairs {:>9}  {:>10.2} Minstr  util {}",
            variant.tiled_label(),
            r.timings.tiling.as_secs_f64() * 1e3,
            r.timings.grouping.as_secs_f64() * 1e3,
            r.timings.compute.as_secs_f64() * 1e3,
            r.num_pairs,
            r.instructions as f64 / 1e6,
            util
        );
    }
}

fn run_euler(mesh: usize, iters: u32, variants: &[Variant]) -> Result<(), String> {
    use invector_kernels::euler::{euler_run, initial_state, triangle_mesh};
    if mesh < 2 {
        return Err("mesh side must be at least 2".into());
    }
    let grid = triangle_mesh(mesh);
    let state = initial_state(grid.num_vertices());
    println!(
        "euler: {}x{} mesh ({} nodes, {} edges), {iters} sweeps",
        mesh,
        mesh,
        grid.num_vertices(),
        grid.num_edges()
    );
    for &variant in variants {
        let t = std::time::Instant::now();
        invector_simd::count::reset();
        let out = euler_run(&grid, &state, variant, iters, 0.05);
        let instr = invector_simd::count::take();
        let checksum: f32 = out.fields[0].iter().sum();
        println!(
            "{:<24} {:>10.2} ms  {:>12.2} Minstr  density checksum {:.4}",
            variant.tiled_label(),
            t.elapsed().as_secs_f64() * 1e3,
            instr as f64 / 1e6,
            checksum
        );
    }
    Ok(())
}

fn run_agg(dist: Distribution, rows: usize, cardinality: usize) {
    let input = invector_agg::dist::generate(dist, rows, cardinality, 1);
    println!("aggregation: {dist}, {rows} rows, {cardinality} groups");
    for method in Method::ALL {
        let out = invector_agg::run::aggregate(method, &input.keys, &input.vals, cardinality);
        println!(
            "{:<16} {:>10.1} Mrows/s wall   {:>8.1} instr/row   {:>6} groups out",
            method.label(),
            out.mrows_per_sec(rows),
            out.instructions as f64 / rows as f64,
            out.rows.len()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_graph_command_with_options() {
        let cmd = parse(&args("sssp --dataset amazon0312 --variant invec --scale 0.5 --source 3"))
            .unwrap();
        assert_eq!(
            cmd,
            Command::Graph {
                app: GraphApp::Sssp,
                dataset: "amazon0312".into(),
                variants: vec![Variant::Invec],
                scale: 0.5,
                source: 3,
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let cmd = parse(&args("pagerank")).unwrap();
        match cmd {
            Command::Graph { app, dataset, variants, scale, source } => {
                assert_eq!(app, GraphApp::PageRank);
                assert_eq!(dataset, "higgs-twitter");
                assert_eq!(variants.len(), 5);
                assert_eq!(scale, 0.01);
                assert_eq!(source, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_agg_command() {
        let cmd = parse(&args("agg --dist zipf --rows 5000 --cardinality 64")).unwrap();
        assert_eq!(cmd, Command::Agg { dist: Distribution::Zipf, rows: 5000, cardinality: 64 });
    }

    #[test]
    fn parses_moldyn_command() {
        let cmd = parse(&args("moldyn --iters 5 --variant masked")).unwrap();
        assert_eq!(cmd, Command::Moldyn { variants: vec![Variant::Masked], scale: 0.01, iters: 5 });
    }

    #[test]
    fn rejects_unknown_command_option_and_values() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("sssp --bogus 1")).is_err());
        assert!(parse(&args("sssp --variant warp")).is_err());
        assert!(parse(&args("agg --dist normal")).is_err());
        assert!(parse(&args("sssp --scale 0")).is_err());
        assert!(parse(&args("sssp --scale")).is_err());
        assert!(parse(&args("sssp extra")).is_err());
    }

    #[test]
    fn parses_euler_command() {
        let cmd = parse(&args("euler --mesh 8 --iters 3 --variant invec")).unwrap();
        assert_eq!(cmd, Command::Euler { mesh: 8, iters: 3, variants: vec![Variant::Invec] });
    }

    #[test]
    fn euler_rejects_degenerate_mesh() {
        assert!(run(parse(&args("euler --mesh 1")).unwrap()).is_err());
    }

    #[test]
    fn run_executes_small_commands() {
        run(Command::Info { scale: 0.001 }).unwrap();
        run(parse(&args("wcc --dataset amazon0312 --variant invec --scale 0.002")).unwrap())
            .unwrap();
        run(parse(&args("agg --rows 2000 --cardinality 16")).unwrap()).unwrap();
        run(parse(&args("moldyn --iters 2 --variant serial --scale 0.001")).unwrap()).unwrap();
        run(parse(&args("spmv --dataset soc-pokec --variant invec --scale 0.001")).unwrap())
            .unwrap();
        run(parse(&args("euler --mesh 6 --iters 2 --variant masked")).unwrap()).unwrap();
    }

    #[test]
    fn run_rejects_bad_dataset_and_source() {
        assert!(run(parse(&args("sssp --dataset nope")).unwrap()).is_err());
        assert!(run(
            parse(&args("sssp --dataset amazon0312 --scale 0.002 --source 999999")).unwrap()
        )
        .is_err());
    }
}
