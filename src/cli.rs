//! Command-line interface: parse-and-dispatch for the `invector` binary.
//!
//! Hand-rolled argument parsing (no external dependencies) split from
//! `main.rs` so it is unit-testable. Every application reaches execution
//! through the harness registry ([`invector_harness::registry`]) — the CLI
//! owns no kernel dispatch of its own.

use invector_agg::dist::Distribution;
use invector_core::BackendChoice;
use invector_harness::{driver, registry, RunRecord, RunSpec};
use invector_kernels::{ExecPolicy, Variant};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// Print dataset registry and host capabilities.
    Info {
        /// Dataset scale factor.
        scale: f64,
    },
    /// Print the application registry.
    List,
    /// Run one application.
    Run {
        /// Registry name of the application.
        app: String,
        /// Variant selection (`all` resolves against the app's legal set).
        variants: Vec<Variant>,
        /// Workload sizing.
        spec: RunSpec,
        /// Worker threads.
        threads: usize,
        /// Backend request.
        backend: BackendChoice,
    },
    /// Run every registered cell and cross-check against the serial
    /// reference.
    RunAll {
        /// Workload sizing.
        spec: RunSpec,
        /// Worker threads for the engine rows.
        threads: usize,
    },
}

/// The usage text shown by `invector help`.
pub const USAGE: &str = "\
invector — conflict-free SIMD vectorization of irregular reductions (CGO'18)

USAGE:
  invector <command> [options]

COMMANDS:
  list                 registered applications, variants, and datasets
  run --app <name>     run one application (or use the app name directly:
                       pagerank | spmv | sssp | sswp | bfs | wcc |
                       euler | moldyn | agg)
  run-all              every app x variant x backend, checked against the
                       serial reference (smoke matrix)
  info                 dataset registry and host SIMD capabilities
  help                 this text

OPTIONS:
  --scale <s>          tiny | small | factor in (0, 1]     [small; run-all: tiny]
  --variant <v>        serial | tiled | grouped | masked | invec | all   [all]
  --threads <n>        worker threads                            [1]
  --backend <b>        auto | portable | native                  [auto]
  --dataset <name>     higgs-twitter | soc-Pokec | amazon0312
  --source <v>         source vertex for sssp/sswp/bfs           [0]
  --iters <n>          iteration budget                          [per scale]
  --mesh <n>           euler mesh side (n x n nodes)             [per scale]
  --lattice <n>        moldyn FCC cells per side                 [per scale]
  --dist <d>           heavy-hitter | zipf | moving-cluster      [zipf]
  --rows <n>           aggregation input rows                    [per scale]
  --cardinality <n>    aggregation group count                   [per scale]
";

fn parse_dist(s: &str) -> Result<Distribution, String> {
    Ok(match s {
        "heavy-hitter" => Distribution::HeavyHitter,
        "zipf" => Distribution::Zipf,
        "moving-cluster" => Distribution::MovingCluster,
        other => return Err(format!("unknown distribution '{other}'")),
    })
}

fn parse_backend(s: &str) -> Result<BackendChoice, String> {
    Ok(match s {
        "auto" => BackendChoice::Auto,
        "portable" => BackendChoice::Portable,
        "native" => BackendChoice::Native,
        other => return Err(format!("unknown backend '{other}' (auto | portable | native)")),
    })
}

/// `--key value` pairs in command order.
type Opts = Vec<(String, String)>;

fn get<'a>(opts: &'a Opts, key: &str) -> Option<&'a str> {
    opts.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn lookup<T: std::str::FromStr>(opts: &Opts, key: &str, default: T) -> Result<T, String> {
    match get(opts, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
    }
}

/// Builds the workload spec: the `--scale` preset, then every explicit
/// per-field override on top.
fn build_spec(opts: &Opts, default_scale: &str) -> Result<RunSpec, String> {
    let mut spec = RunSpec::parse(get(opts, "scale").unwrap_or(default_scale))?;
    if let Some(name) = get(opts, "dataset") {
        spec.dataset = Some(name.to_string());
    }
    spec.source = lookup(opts, "source", spec.source)?;
    spec.iters = lookup(opts, "iters", spec.iters)?;
    spec.mesh = lookup(opts, "mesh", spec.mesh)?;
    spec.lattice = lookup(opts, "lattice", spec.lattice)?;
    spec.rows = lookup(opts, "rows", spec.rows)?;
    spec.cardinality = lookup(opts, "cardinality", spec.cardinality)?;
    if let Some(d) = get(opts, "dist") {
        spec.dist = parse_dist(d)?;
    }
    Ok(spec)
}

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// Returns a human-readable message on unknown commands, options, or
/// malformed values — including a nearest-name suggestion for application
/// typos.
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some(command) = args.first() else {
        return Ok(Command::Help);
    };
    let mut opts: Opts = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected an option, got '{}'", args[i]))?;
        let value = args.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?;
        opts.push((key.to_string(), value.clone()));
        i += 2;
    }
    const KNOWN: [&str; 13] = [
        "app",
        "dataset",
        "variant",
        "scale",
        "source",
        "iters",
        "mesh",
        "lattice",
        "dist",
        "rows",
        "cardinality",
        "threads",
        "backend",
    ];
    if let Some((k, _)) = opts.iter().find(|(k, _)| !KNOWN.contains(&k.as_str())) {
        return Err(format!("unknown option --{k}"));
    }

    let threads = lookup(&opts, "threads", 1)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }

    let app = match command.as_str() {
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "list" => return Ok(Command::List),
        "info" => {
            let scale = build_spec(&opts, "small")?.scale;
            return Ok(Command::Info { scale });
        }
        "run-all" => return Ok(Command::RunAll { spec: build_spec(&opts, "tiny")?, threads }),
        "run" => get(&opts, "app")
            .ok_or_else(|| "run needs --app <name> (see 'invector list')".to_string())?
            .to_string(),
        // An application name used as the command is shorthand for
        // `run --app <name>`; unknown names get the registry's suggestion.
        other => registry::lookup(other)
            .map_err(|e| format!("{e}; try 'invector help'"))?
            .name()
            .to_string(),
    };

    let app_entry = registry::lookup(&app)?;
    let variants = match get(&opts, "variant") {
        None | Some("all") => app_entry.variants().to_vec(),
        Some(v) => {
            let variant = Variant::parse(v)?;
            if !app_entry.variants().contains(&variant) {
                return Err(format!(
                    "variant '{}' is not legal for {} (one of: {})",
                    variant.short_name(),
                    app_entry.name(),
                    app_entry
                        .variants()
                        .iter()
                        .map(|v| v.short_name())
                        .collect::<Vec<_>>()
                        .join(" | ")
                ));
            }
            vec![variant]
        }
    };
    Ok(Command::Run {
        app,
        variants,
        spec: build_spec(&opts, "small")?,
        threads,
        backend: parse_backend(get(&opts, "backend").unwrap_or("auto"))?,
    })
}

/// Executes a parsed command, printing results to stdout.
///
/// # Errors
///
/// Returns a message for invalid names or sizes, and for `run-all` cells
/// that disagree with the serial reference.
pub fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => println!("{USAGE}"),
        Command::Info { scale } => run_info(scale),
        Command::List => run_list(),
        Command::Run { app, variants, spec, threads, backend } => {
            run_app(&app, &variants, &spec, threads, backend)?
        }
        Command::RunAll { spec, threads } => run_all(&spec, threads)?,
    }
    Ok(())
}

fn run_info(scale: f64) {
    println!("host AVX-512 (avx512f+cd): {}", invector_simd::native::available());
    println!("\ndatasets at scale {scale}:");
    for d in invector_graph::datasets::all(scale) {
        println!(
            "  {:<16} {:>9} vertices {:>11} edges (paper: {}x{}, {} NNZ)",
            d.name,
            d.graph.num_vertices(),
            d.graph.num_edges(),
            d.paper_vertices,
            d.paper_vertices,
            d.paper_edges
        );
    }
}

fn run_list() {
    println!("{:<10} {:<28} {:<24} summary", "app", "variants", "datasets");
    for app in registry::all() {
        let variants = app.variants().iter().map(|v| v.short_name()).collect::<Vec<_>>().join(",");
        let datasets = if app.datasets().is_empty() {
            "(synthesized)".to_string()
        } else {
            app.datasets().join(",")
        };
        println!("{:<10} {:<28} {:<24} {}", app.name(), variants, datasets, app.summary());
    }
}

fn print_record(r: &RunRecord) {
    let util =
        r.utilization.map(|u| format!("{:.2}%", u.ratio() * 100.0)).unwrap_or_else(|| "-".into());
    println!(
        "{:<24} {:>8}  tiling {:>8.2}ms  grouping {:>8.2}ms  compute {:>8.2}ms  iters {:>5}  {:>10.2} Minstr  util {:>7}  checksum {:.6}",
        r.label,
        r.backend.name(),
        r.timings.tiling.as_secs_f64() * 1e3,
        r.timings.grouping.as_secs_f64() * 1e3,
        r.timings.compute.as_secs_f64() * 1e3,
        r.iterations,
        r.instructions as f64 / 1e6,
        util,
        r.checksum()
    );
}

fn run_app(
    app: &str,
    variants: &[Variant],
    spec: &RunSpec,
    threads: usize,
    backend: BackendChoice,
) -> Result<(), String> {
    let entry = registry::lookup(app)?;
    let workload = entry.prepare(spec)?;
    println!("{}: {}", entry.name(), workload.describe());
    let policy = ExecPolicy::with_threads(threads).backend(backend);
    for &variant in variants {
        print_record(&workload.run(variant, &policy));
    }
    Ok(())
}

fn run_all(spec: &RunSpec, threads: usize) -> Result<(), String> {
    let report = driver::run_all(spec, threads);
    let mut current_app = "";
    for cell in &report.cells {
        if cell.app != current_app {
            current_app = cell.app;
            println!("{}: {}", cell.app, cell.input);
        }
        println!(
            "  {:<24} {:>8}  t={}  {:>10.2}ms  checksum {:>18.6}  {}",
            cell.variant.to_string(),
            cell.backend.name(),
            cell.threads,
            cell.elapsed.as_secs_f64() * 1e3,
            cell.checksum,
            match &cell.error {
                None => "ok".to_string(),
                Some(e) => format!("FAIL: {e}"),
            }
        );
    }
    let failures = report.failures().count();
    println!("\n{} cells, {} failures", report.cells.len(), failures);
    if failures > 0 {
        return Err(format!("{failures} cells disagree with the serial reference"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("list")).unwrap(), Command::List);
    }

    #[test]
    fn app_name_is_shorthand_for_run() {
        let direct = parse(&args("sssp --variant invec --source 3")).unwrap();
        let explicit = parse(&args("run --app sssp --variant invec --source 3")).unwrap();
        assert_eq!(direct, explicit);
        match direct {
            Command::Run { app, variants, spec, threads, backend } => {
                assert_eq!(app, "sssp");
                assert_eq!(variants, vec![Variant::Invec]);
                assert_eq!(spec.source, 3);
                assert_eq!(spec.scale, RunSpec::small().scale);
                assert_eq!(threads, 1);
                assert_eq!(backend, BackendChoice::Auto);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn variant_all_resolves_against_the_apps_legal_set() {
        match parse(&args("agg --variant all")).unwrap() {
            Command::Run { variants, .. } => {
                assert_eq!(variants, vec![Variant::Serial, Variant::Masked, Variant::Invec]);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&args("pagerank")).unwrap() {
            Command::Run { variants, .. } => assert_eq!(variants.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn illegal_variant_for_app_is_rejected_with_the_legal_set() {
        let err = parse(&args("agg --variant tiled")).expect_err("tiled agg must not parse");
        assert!(err.contains("not legal for agg"), "{err}");
        assert!(err.contains("serial | masked | invec"), "{err}");
    }

    #[test]
    fn typo_in_app_name_gets_a_suggestion() {
        let err = parse(&args("pagernak")).expect_err("typo must not parse");
        assert!(err.contains("did you mean 'pagerank'"), "{err}");
        let err = parse(&args("run --app ssp")).expect_err("typo must not parse");
        assert!(err.contains("did you mean"), "{err}");
    }

    #[test]
    fn spec_overrides_compose_with_the_scale_preset() {
        match parse(&args("agg --scale tiny --rows 500 --dist moving-cluster")).unwrap() {
            Command::Run { spec, .. } => {
                assert_eq!(spec.rows, 500);
                assert_eq!(spec.dist, Distribution::MovingCluster);
                assert_eq!(spec.cardinality, RunSpec::tiny().cardinality);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn run_all_defaults_to_tiny_and_accepts_threads() {
        assert_eq!(
            parse(&args("run-all")).unwrap(),
            Command::RunAll { spec: RunSpec::tiny(), threads: 1 }
        );
        assert_eq!(
            parse(&args("run-all --scale tiny --threads 2")).unwrap(),
            Command::RunAll { spec: RunSpec::tiny(), threads: 2 }
        );
    }

    #[test]
    fn rejects_unknown_command_option_and_values() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("sssp --bogus 1")).is_err());
        assert!(parse(&args("sssp --variant warp")).is_err());
        assert!(parse(&args("agg --dist normal")).is_err());
        assert!(parse(&args("sssp --scale 0")).is_err());
        assert!(parse(&args("sssp --scale")).is_err());
        assert!(parse(&args("sssp extra")).is_err());
        assert!(parse(&args("sssp --threads 0")).is_err());
        assert!(parse(&args("sssp --backend gpu")).is_err());
        assert!(parse(&args("run")).is_err());
    }

    #[test]
    fn run_executes_small_commands() {
        run(Command::List).unwrap();
        run(Command::Info { scale: 0.001 }).unwrap();
        run(parse(&args("wcc --dataset amazon0312 --variant invec --scale tiny")).unwrap())
            .unwrap();
        run(parse(&args("agg --scale tiny --rows 2000 --cardinality 16")).unwrap()).unwrap();
        run(parse(&args("moldyn --scale tiny --iters 2 --variant serial")).unwrap()).unwrap();
        run(parse(&args("spmv --dataset soc-Pokec --variant invec --scale tiny")).unwrap())
            .unwrap();
        run(parse(&args("euler --mesh 6 --iters 2 --variant masked --scale tiny")).unwrap())
            .unwrap();
        run(parse(&args("bfs --scale tiny --backend portable --threads 2")).unwrap()).unwrap();
    }

    #[test]
    fn run_rejects_bad_dataset_and_degenerate_mesh() {
        assert!(run(parse(&args("sssp --dataset nope --scale tiny")).unwrap()).is_err());
        assert!(run(parse(&args("euler --mesh 1 --scale tiny")).unwrap()).is_err());
    }
}
