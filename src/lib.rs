//! `invector` — conflict-free SIMD vectorization of associative irregular
//! reductions.
//!
//! This is the façade crate of a full reproduction of *"Conflict-Free
//! Vectorization of Associative Irregular Applications with Recent SIMD
//! Architectural Advances"* (Jiang & Agrawal, CGO 2018). It re-exports the
//! workspace crates:
//!
//! | module | contents |
//! |---|---|
//! | [`simd`] | AVX-512 model: vectors, k-masks, `vpconflictd`, gather/scatter, native backend |
//! | [`core`] | in-vector reduction (Algorithms 1 & 2, adaptive), conflict-masking, reduce-by-key |
//! | [`graph`] | COO/CSR, synthetic SNAP stand-ins, tiling, grouping, frontiers |
//! | [`kernels`] | PageRank, SSSP, SSWP, WCC in all five implementation strategies |
//! | [`moldyn`] | molecular dynamics: inputs, neighbor lists, LJ force kernels |
//! | [`agg`] | hash aggregation: linear & bucketized tables, skewed generators |
//! | [`harness`] | application registry, `Kernel`/`Workload` contract, smoke driver |
//!
//! # Quick start
//!
//! The core primitive: fold SIMD lanes that target the same index *inside*
//! the vector, then scatter without conflicts.
//!
//! ```
//! use invector::core::{invec_accumulate, ops::Sum};
//!
//! // Histogram with duplicate bins, vectorized conflict-free:
//! let bins = [0, 3, 0, 1, 0, 3, 2, 0];
//! let weights = [1.0f32; 8];
//! let mut hist = vec![0.0f32; 4];
//! invec_accumulate::<f32, Sum>(&mut hist, &bins, &weights);
//! assert_eq!(hist, vec![4.0, 1.0, 1.0, 2.0]);
//! ```
//!
//! See `examples/` for complete applications (PageRank, wave-frontier SSSP,
//! hash aggregation, molecular dynamics) and `crates/bench` for the
//! harnesses regenerating every table and figure of the paper.

pub mod cli;

pub use invector_agg as agg;
pub use invector_core as core;
pub use invector_graph as graph;
pub use invector_harness as harness;
pub use invector_kernels as kernels;
pub use invector_moldyn as moldyn;
pub use invector_simd as simd;
