//! `invector-simd` — a software model of the AVX-512 subset used by
//! conflict-free vectorization of irregular reductions.
//!
//! The crate provides fixed-width SIMD vectors ([`SimdVec`]), AVX-512-style
//! write masks ([`Mask`]), the memory primitives irregular applications rely
//! on (gather, scatter and their masked variants, compress/expand), the
//! conflict-detection instruction family (`vpconflictd`, exposed as
//! [`conflict_detect`]) and masked horizontal reductions.
//!
//! Two execution paths exist behind a single API:
//!
//! * a **portable model** written in plain Rust, which defines the reference
//!   semantics and runs on any target, and
//! * a **native backend** ([`native`]) that executes the hot primitives with
//!   real AVX-512 instructions (`_mm512_conflict_epi32`, hardware
//!   gather/scatter) when the host CPU supports them. The native backend is
//!   differential-tested against the portable model.
//!
//! Every emulated operation is accounted as one SIMD instruction by the
//! [`count`] module, so analytic cost claims (e.g. "Algorithm 1 takes
//! `2 + 8·D1` instructions") can be measured rather than assumed.
//!
//! # Example
//!
//! ```
//! use invector_simd::{I32x16, Mask16, conflict_free_subset};
//!
//! // Indices with duplicates: lanes 0 and 2 both target element 7.
//! let mut idx = [1i32; 16];
//! idx[0] = 7;
//! idx[2] = 7;
//! let idx = I32x16::from_array(idx);
//! let safe = conflict_free_subset(Mask16::all(), idx);
//! // Lane 2 conflicts with lane 0, so it drops out of the safe subset.
//! assert!(safe.test(0) && !safe.test(2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod count;
mod element;
mod mask;
pub mod native;
pub mod trace;
mod vector;

mod conflict;

pub use arch::{Avx2, Avx512, Isa, Neon};
pub use conflict::{conflict_detect, conflict_free_subset, has_conflicts};
pub use element::SimdElement;
pub use mask::Mask;
pub use vector::SimdVec;

/// The number of 32-bit lanes in one AVX-512 vector — the width the paper's
/// evaluation (and this crate's aliases) are built around.
pub const LANES: usize = 16;

/// The number of 64-bit lanes in one AVX-512 vector.
pub const LANES64: usize = 8;

/// A 16-lane vector of `i32` (an AVX-512 `__m512i` holding epi32 elements).
pub type I32x16 = SimdVec<i32, LANES>;
/// A 16-lane vector of `u32`.
pub type U32x16 = SimdVec<u32, LANES>;
/// A 16-lane vector of `f32` (an AVX-512 `__m512`).
pub type F32x16 = SimdVec<f32, LANES>;
/// A 16-bit write mask (an AVX-512 `__mmask16`).
pub type Mask16 = Mask<LANES>;

/// An 8-lane vector of `i64` (an AVX-512 `__m512i` holding epi64 elements).
pub type I64x8 = SimdVec<i64, LANES64>;
/// An 8-lane vector of `u64`.
pub type U64x8 = SimdVec<u64, LANES64>;
/// An 8-lane vector of `f64` (an AVX-512 `__m512d`).
pub type F64x8 = SimdVec<f64, LANES64>;
/// An 8-lane vector of `i32` indices, as used by `vgatherdpd`-style mixed
/// 32-bit-index / 64-bit-data accesses.
pub type I32x8 = SimdVec<i32, LANES64>;
/// An 8-bit write mask (an AVX-512 `__mmask8`).
pub type Mask8 = Mask<LANES64>;
