//! Thread-local accounting of executed (emulated) SIMD instructions.
//!
//! The portable model charges every operation that would be a single AVX-512
//! instruction exactly one unit. This lets benchmarks verify the paper's
//! analytic instruction-count claims — e.g. that an invocation of in-vector
//! reduction Algorithm 1 costs about `2 + 8 · D1` instructions — by
//! measuring, not estimating.
//!
//! Counting is a couple of cycles per operation. It is controlled by the
//! crate's on-by-default **`count`** cargo feature: with the feature enabled
//! (the default) every emulated operation is accounted, so statistics never
//! silently disagree with what the benchmarks executed; building with
//! `--no-default-features` compiles every counter call to a no-op, which is
//! what pure wall-clock benchmarks of the portable model want. [`enabled`]
//! reports at runtime which mode was compiled in, and all read-side
//! functions degrade to returning `0` when counting is off.
//!
//! # Per-thread views and the global total
//!
//! [`read`]/[`reset`]/[`take`]/[`with`] are **per-thread** views, exactly as
//! a benchmark wants them. With the **`obs`** feature (also on by default)
//! each thread's counter is additionally a process-visible atomic cell, and
//! [`global_total`] sums every thread's cell — the number published into
//! the `invector-obs` metric registry as `invector_simd_instructions_total`.
//!
//! The execution engine *re-charges* its workers' counts to the calling
//! thread (so a caller's [`read`] delta covers work it fanned out) via
//! [`bump_recharged`]: the re-charge is visible to the caller's thread-local
//! view but excluded from [`global_total`], which would otherwise count
//! every fanned-out instruction twice — once on the worker that executed it
//! and once on the caller it was re-charged to.
//!
//! # Backend-labeled series
//!
//! Native backends (AVX-512, AVX2, NEON) execute real hardware instructions
//! the emulation counters never see, so the backend dispatch layer charges
//! them *coarsely* — once per fused whole-stream call — into a second,
//! process-global family of counters keyed by backend ([`tag`]):
//! [`bump_backend`] records modeled instructions and vector iterations, and
//! [`backend_instructions`]/[`backend_vectors`] read the cumulative totals.
//! The portable path is charged under [`tag::PORTABLE`] with its measured
//! emulated count, so per-ISA totals stay comparable. With the `obs` feature
//! each series is exported as `invector_simd_instructions_{backend}_total`
//! and `invector_simd_vectors_{backend}_total`.
//!
//! # Example
//!
//! ```
//! use invector_simd::{count, F32x16};
//!
//! count::reset();
//! let v = F32x16::splat(1.0) + F32x16::splat(2.0);
//! assert!(count::read() >= 1 || !count::enabled());
//! assert_eq!(v.extract(0), 3.0);
//! ```

/// Modeled cost of one 16-lane gather, in instruction units.
///
/// Register-register AVX-512 operations cost 1 unit; hardware
/// gathers/scatters touch up to 16 cache lines and retire far slower
/// (tens of cycles on KNL/Skylake). Weighting them at 8 units keeps the
/// serial-versus-SIMD instruction model honest: a 16-lane gather does the
/// memory work of 16 scalar random loads at roughly half the cost.
pub const GATHER_COST: u64 = 8;

/// Modeled cost of one 16-lane scatter (see [`GATHER_COST`]).
pub const SCATTER_COST: u64 = 8;

/// `true` when the crate was compiled with the `count` feature (the
/// default), i.e. when [`bump`] actually records and [`read`] actually
/// reports executed instructions.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "count")
}

/// Counting with cross-thread visibility: each thread owns an atomic cell
/// registered in a process-wide list, so [`global_total`] can merge every
/// thread's count without any hot-path synchronization (the owning thread
/// is the only writer of its cell).
#[cfg(all(feature = "count", feature = "obs"))]
mod imp {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, Once, OnceLock};

    /// One thread's instruction cell. `total` is everything the thread's
    /// local view saw (own work plus engine re-charges); `recharged` is the
    /// re-charged share, subtracted when merging so the global total counts
    /// each executed instruction exactly once.
    struct CountCell {
        total: AtomicU64,
        recharged: AtomicU64,
    }

    fn cells() -> &'static Mutex<Vec<Arc<CountCell>>> {
        static CELLS: OnceLock<Mutex<Vec<Arc<CountCell>>>> = OnceLock::new();
        CELLS.get_or_init(|| Mutex::new(Vec::new()))
    }

    struct Local {
        cell: Arc<CountCell>,
        /// `total` at the last [`super::reset`]/[`super::take`]; the
        /// thread-local view is `total - baseline`.
        baseline: Cell<u64>,
    }

    thread_local! {
        static LOCAL: std::cell::OnceCell<Local> = const { std::cell::OnceCell::new() };
    }

    fn with_local<R>(f: impl FnOnce(&Local) -> R) -> R {
        LOCAL.with(|slot| {
            let local = slot.get_or_init(|| {
                let cell =
                    Arc::new(CountCell { total: AtomicU64::new(0), recharged: AtomicU64::new(0) });
                cells().lock().expect("count cell list").push(Arc::clone(&cell));
                // Bridge the totals into the metric registry exactly once
                // per process.
                static REGISTER: Once = Once::new();
                REGISTER.call_once(|| {
                    invector_obs::Registry::global().register_collector(
                        "invector_simd_instructions_total",
                        "Emulated SIMD instructions executed, summed across threads \
                         (engine re-charges excluded).",
                        super::global_total,
                    );
                });
                Local { cell, baseline: Cell::new(0) }
            });
            f(local)
        })
    }

    #[inline]
    pub fn bump(n: u64) {
        with_local(|l| {
            // Single-writer cell: a relaxed load+store is enough and
            // cheaper than a fetch_add.
            let t = l.cell.total.load(Ordering::Relaxed);
            l.cell.total.store(t.wrapping_add(n), Ordering::Relaxed);
        });
    }

    #[inline]
    pub fn bump_recharged(n: u64) {
        with_local(|l| {
            let t = l.cell.total.load(Ordering::Relaxed);
            l.cell.total.store(t.wrapping_add(n), Ordering::Relaxed);
            let r = l.cell.recharged.load(Ordering::Relaxed);
            l.cell.recharged.store(r.wrapping_add(n), Ordering::Relaxed);
        });
    }

    #[inline]
    pub fn read() -> u64 {
        with_local(|l| l.cell.total.load(Ordering::Relaxed).wrapping_sub(l.baseline.get()))
    }

    #[inline]
    pub fn reset() {
        with_local(|l| l.baseline.set(l.cell.total.load(Ordering::Relaxed)));
    }

    #[inline]
    pub fn take() -> u64 {
        with_local(|l| {
            let total = l.cell.total.load(Ordering::Relaxed);
            let out = total.wrapping_sub(l.baseline.get());
            l.baseline.set(total);
            out
        })
    }

    pub fn global_total() -> u64 {
        cells()
            .lock()
            .expect("count cell list")
            .iter()
            .map(|c| {
                c.total.load(Ordering::Relaxed).wrapping_sub(c.recharged.load(Ordering::Relaxed))
            })
            .fold(0u64, u64::wrapping_add)
    }
}

/// Counting without the `obs` feature: the original plain `Cell` path —
/// per-thread views only, no cross-thread merge.
#[cfg(all(feature = "count", not(feature = "obs")))]
mod imp {
    use std::cell::Cell;

    thread_local! {
        static SIMD_INSTRUCTIONS: Cell<u64> = const { Cell::new(0) };
    }

    #[inline]
    pub fn bump(n: u64) {
        SIMD_INSTRUCTIONS.with(|c| c.set(c.get().wrapping_add(n)));
    }

    #[inline]
    pub fn bump_recharged(n: u64) {
        bump(n);
    }

    #[inline]
    pub fn read() -> u64 {
        SIMD_INSTRUCTIONS.with(Cell::get)
    }

    #[inline]
    pub fn reset() {
        SIMD_INSTRUCTIONS.with(|c| c.set(0));
    }

    #[inline]
    pub fn take() -> u64 {
        SIMD_INSTRUCTIONS.with(|c| c.replace(0))
    }

    pub fn global_total() -> u64 {
        0
    }
}

/// Counting compiled out: everything is a no-op reading zero.
#[cfg(not(feature = "count"))]
mod imp {
    #[inline]
    pub fn bump(_n: u64) {}

    #[inline]
    pub fn bump_recharged(_n: u64) {}

    #[inline]
    pub fn read() -> u64 {
        0
    }

    #[inline]
    pub fn reset() {}

    #[inline]
    pub fn take() -> u64 {
        0
    }

    pub fn global_total() -> u64 {
        0
    }
}

/// Records `n` executed SIMD instructions on the current thread.
///
/// Compiles to a no-op without the `count` feature.
#[inline(always)]
pub fn bump(n: u64) {
    imp::bump(n);
}

/// Records `n` instructions that were **already executed (and counted) on
/// another thread** and are being re-charged to this one, so this thread's
/// [`read`] delta covers work it fanned out to the execution engine.
///
/// Re-charged instructions are visible to this thread's [`read`] but
/// excluded from [`global_total`] — they were counted once on the worker
/// that ran them.
#[inline(always)]
pub fn bump_recharged(n: u64) {
    imp::bump_recharged(n);
}

/// Returns the number of SIMD instructions recorded on this thread since the
/// last [`reset`] (always `0` without the `count` feature).
#[inline]
pub fn read() -> u64 {
    imp::read()
}

/// Resets this thread's instruction counter to zero.
#[inline]
pub fn reset() {
    imp::reset()
}

/// Returns the current count and resets the counter in one step (always `0`
/// without the `count` feature).
#[inline]
pub fn take() -> u64 {
    imp::take()
}

/// The process-wide instruction total: every thread's executed count,
/// merged, with engine re-charges counted once. `0` unless both the
/// `count` and `obs` features are enabled. Unlike [`read`], this is never
/// reset — it is the cumulative series the metric registry exports.
pub fn global_total() -> u64 {
    imp::global_total()
}

/// Runs `f` and returns its result together with the number of SIMD
/// instructions it executed on this thread (`0` without the `count`
/// feature).
///
/// The surrounding count is preserved: instructions recorded by `f` are also
/// visible to any enclosing [`with`] or [`read`].
///
/// # Example
///
/// ```
/// use invector_simd::{count, I32x16};
///
/// let (_, n) = count::with(|| I32x16::splat(3) + I32x16::splat(4));
/// assert!(n >= 1 || !count::enabled());
/// ```
pub fn with<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = read();
    let result = f();
    (result, read().wrapping_sub(before))
}

/// Stable indices for the backend-labeled counter series.
///
/// Each value doubles as the [`Isa::TAG`](crate::arch::Isa::TAG) of the
/// corresponding backend and as the index into [`BACKEND_NAMES`].
pub mod tag {
    /// The portable software model (any lane width).
    pub const PORTABLE: usize = 0;
    /// The 16-lane AVX-512 backend.
    pub const AVX512: usize = 1;
    /// The 8-lane AVX2 backend.
    pub const AVX2: usize = 2;
    /// The 4-lane NEON backend.
    pub const NEON: usize = 3;
}

/// Backend names for the labeled counter series, indexed by the constants
/// in [`tag`].
pub const BACKEND_NAMES: [&str; 4] = ["portable", "avx512", "avx2", "neon"];

/// Backend-labeled counters: one pair of process-global atomics per backend,
/// bumped once per fused whole-stream call (never per vector), so plain
/// `fetch_add` contention is irrelevant.
#[cfg(feature = "count")]
mod backend_imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    const N: usize = super::BACKEND_NAMES.len();
    static INSTRUCTIONS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];
    static VECTORS: [AtomicU64; N] = [const { AtomicU64::new(0) }; N];

    /// Bridges the per-backend totals into the metric registry exactly once
    /// per process, lazily on the first charge.
    #[cfg(feature = "obs")]
    fn register() {
        static REGISTER: std::sync::Once = std::sync::Once::new();
        REGISTER.call_once(|| {
            let registry = invector_obs::Registry::global();
            for (i, name) in super::BACKEND_NAMES.iter().enumerate() {
                registry.register_collector(
                    &format!("invector_simd_instructions_{name}_total"),
                    "Modeled SIMD instructions charged to this backend by the \
                     fused accumulate dispatch layer.",
                    move || super::backend_instructions(i),
                );
                registry.register_collector(
                    &format!("invector_simd_vectors_{name}_total"),
                    "Vector iterations executed by this backend's fused \
                     accumulate drivers.",
                    move || super::backend_vectors(i),
                );
            }
        });
    }

    #[cfg(not(feature = "obs"))]
    fn register() {}

    pub fn bump(backend: usize, instructions: u64, vectors: u64) {
        register();
        INSTRUCTIONS[backend].fetch_add(instructions, Ordering::Relaxed);
        VECTORS[backend].fetch_add(vectors, Ordering::Relaxed);
    }

    pub fn instructions(backend: usize) -> u64 {
        INSTRUCTIONS[backend].load(Ordering::Relaxed)
    }

    pub fn vectors(backend: usize) -> u64 {
        VECTORS[backend].load(Ordering::Relaxed)
    }
}

/// Backend-labeled counting compiled out with the `count` feature.
#[cfg(not(feature = "count"))]
mod backend_imp {
    pub fn bump(_backend: usize, _instructions: u64, _vectors: u64) {}

    pub fn instructions(_backend: usize) -> u64 {
        0
    }

    pub fn vectors(_backend: usize) -> u64 {
        0
    }
}

/// Charges `instructions` modeled instruction units and `vectors` vector
/// iterations to `backend` (an index from [`tag`]).
///
/// Called once per fused whole-stream driver run by the backend dispatch
/// layer — native backends are charged `vectors · MODEL_COST_PER_VECTOR +
/// 8 · merge_iterations` from their depth histogram, the portable path its
/// measured emulated count. A no-op without the `count` feature.
///
/// # Panics
///
/// Panics if `backend` is not one of the [`tag`] constants.
#[inline]
pub fn bump_backend(backend: usize, instructions: u64, vectors: u64) {
    assert!(backend < BACKEND_NAMES.len(), "unknown backend tag {backend}");
    backend_imp::bump(backend, instructions, vectors);
}

/// Cumulative modeled instructions charged to `backend` via
/// [`bump_backend`] since process start (`0` without the `count` feature).
/// Never reset — this is the series the metric registry exports.
///
/// # Panics
///
/// Panics if `backend` is not one of the [`tag`] constants.
pub fn backend_instructions(backend: usize) -> u64 {
    assert!(backend < BACKEND_NAMES.len(), "unknown backend tag {backend}");
    backend_imp::instructions(backend)
}

/// Cumulative vector iterations charged to `backend` via [`bump_backend`]
/// since process start (`0` without the `count` feature).
///
/// # Panics
///
/// Panics if `backend` is not one of the [`tag`] constants.
pub fn backend_vectors(backend: usize) -> u64 {
    assert!(backend < BACKEND_NAMES.len(), "unknown backend tag {backend}");
    backend_imp::vectors(backend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_reflects_feature() {
        assert_eq!(enabled(), cfg!(feature = "count"));
    }

    #[cfg(feature = "count")]
    #[test]
    fn bump_and_read_round_trip() {
        reset();
        bump(3);
        bump(4);
        assert_eq!(read(), 7);
        assert_eq!(take(), 7);
        assert_eq!(read(), 0);
    }

    #[cfg(not(feature = "count"))]
    #[test]
    fn disabled_counting_reads_zero() {
        reset();
        bump(3);
        assert_eq!(read(), 0);
        assert_eq!(take(), 0);
        let ((), n) = with(|| bump(11));
        assert_eq!(n, 0);
        assert_eq!(global_total(), 0);
    }

    #[cfg(feature = "count")]
    #[test]
    fn with_reports_nested_cost_without_losing_outer_count() {
        reset();
        bump(5);
        let ((), inner) = with(|| bump(11));
        assert_eq!(inner, 11);
        assert_eq!(read(), 16);
    }

    #[cfg(feature = "count")]
    #[test]
    fn counters_are_per_thread() {
        reset();
        bump(9);
        let other = std::thread::spawn(|| {
            reset();
            bump(1);
            read()
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(read(), 9);
    }

    #[cfg(all(feature = "count", feature = "obs"))]
    #[test]
    fn recharges_count_locally_but_not_globally() {
        // Spawn a dedicated thread so other tests' bumps cannot land on
        // this thread-local view mid-assertion; the *global* deltas below
        // are still safe because no other test uses bump_recharged.
        std::thread::spawn(|| {
            reset();
            let spent_before = global_total();
            bump(10);
            bump_recharged(6);
            assert_eq!(read(), 16, "re-charge is visible locally");
            let my_global_share = 10; // the re-charged 6 is excluded
            assert!(global_total().wrapping_sub(spent_before) >= my_global_share);
            assert_eq!(take(), 16);
        })
        .join()
        .unwrap();
    }

    #[cfg(feature = "count")]
    #[test]
    fn backend_counters_accumulate_per_tag() {
        let i0 = backend_instructions(tag::AVX2);
        let v0 = backend_vectors(tag::AVX2);
        let n0 = backend_instructions(tag::NEON);
        bump_backend(tag::AVX2, 38, 1);
        bump_backend(tag::AVX2, 76, 2);
        assert_eq!(backend_instructions(tag::AVX2).wrapping_sub(i0), 114);
        assert_eq!(backend_vectors(tag::AVX2).wrapping_sub(v0), 3);
        assert_eq!(backend_instructions(tag::NEON), n0, "tags are independent");
    }

    #[cfg(not(feature = "count"))]
    #[test]
    fn backend_counters_read_zero_when_disabled() {
        bump_backend(tag::AVX512, 10, 1);
        assert_eq!(backend_instructions(tag::AVX512), 0);
        assert_eq!(backend_vectors(tag::AVX512), 0);
    }

    #[test]
    #[should_panic(expected = "unknown backend tag")]
    fn backend_counters_reject_unknown_tags() {
        bump_backend(BACKEND_NAMES.len(), 1, 1);
    }

    #[cfg(all(feature = "count", feature = "obs"))]
    #[test]
    fn global_total_survives_thread_local_resets() {
        std::thread::spawn(|| {
            bump(21);
            let g = global_total();
            reset();
            assert_eq!(read(), 0);
            assert!(global_total() >= g, "reset is a view operation, not a rollback");
        })
        .join()
        .unwrap();
    }
}
