//! Thread-local accounting of executed (emulated) SIMD instructions.
//!
//! The portable model charges every operation that would be a single AVX-512
//! instruction exactly one unit. This lets benchmarks verify the paper's
//! analytic instruction-count claims — e.g. that an invocation of in-vector
//! reduction Algorithm 1 costs about `2 + 8 · D1` instructions — by
//! measuring, not estimating.
//!
//! Counting a thread-local `Cell<u64>` bump is a couple of cycles. It is
//! controlled by the crate's on-by-default **`count`** cargo feature: with
//! the feature enabled (the default) every emulated operation is accounted,
//! so statistics never silently disagree with what the benchmarks executed;
//! building with `--no-default-features` compiles every counter call to a
//! no-op, which is what pure wall-clock benchmarks of the portable model
//! want. [`enabled`] reports at runtime which mode was compiled in, and all
//! read-side functions degrade to returning `0` when counting is off.
//!
//! # Example
//!
//! ```
//! use invector_simd::{count, F32x16};
//!
//! count::reset();
//! let v = F32x16::splat(1.0) + F32x16::splat(2.0);
//! assert!(count::read() >= 1 || !count::enabled());
//! assert_eq!(v.extract(0), 3.0);
//! ```

#[cfg(feature = "count")]
use std::cell::Cell;

/// Modeled cost of one 16-lane gather, in instruction units.
///
/// Register-register AVX-512 operations cost 1 unit; hardware
/// gathers/scatters touch up to 16 cache lines and retire far slower
/// (tens of cycles on KNL/Skylake). Weighting them at 8 units keeps the
/// serial-versus-SIMD instruction model honest: a 16-lane gather does the
/// memory work of 16 scalar random loads at roughly half the cost.
pub const GATHER_COST: u64 = 8;

/// Modeled cost of one 16-lane scatter (see [`GATHER_COST`]).
pub const SCATTER_COST: u64 = 8;

#[cfg(feature = "count")]
thread_local! {
    static SIMD_INSTRUCTIONS: Cell<u64> = const { Cell::new(0) };
}

/// `true` when the crate was compiled with the `count` feature (the
/// default), i.e. when [`bump`] actually records and [`read`] actually
/// reports executed instructions.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "count")
}

/// Records `n` executed SIMD instructions on the current thread.
///
/// Compiles to a no-op without the `count` feature.
#[inline(always)]
pub fn bump(n: u64) {
    #[cfg(feature = "count")]
    SIMD_INSTRUCTIONS.with(|c| c.set(c.get().wrapping_add(n)));
    #[cfg(not(feature = "count"))]
    let _ = n;
}

/// Returns the number of SIMD instructions recorded on this thread since the
/// last [`reset`] (always `0` without the `count` feature).
#[inline]
pub fn read() -> u64 {
    #[cfg(feature = "count")]
    {
        SIMD_INSTRUCTIONS.with(Cell::get)
    }
    #[cfg(not(feature = "count"))]
    {
        0
    }
}

/// Resets this thread's instruction counter to zero.
#[inline]
pub fn reset() {
    #[cfg(feature = "count")]
    SIMD_INSTRUCTIONS.with(|c| c.set(0));
}

/// Returns the current count and resets the counter in one step (always `0`
/// without the `count` feature).
#[inline]
pub fn take() -> u64 {
    #[cfg(feature = "count")]
    {
        SIMD_INSTRUCTIONS.with(|c| c.replace(0))
    }
    #[cfg(not(feature = "count"))]
    {
        0
    }
}

/// Runs `f` and returns its result together with the number of SIMD
/// instructions it executed on this thread (`0` without the `count`
/// feature).
///
/// The surrounding count is preserved: instructions recorded by `f` are also
/// visible to any enclosing [`with`] or [`read`].
///
/// # Example
///
/// ```
/// use invector_simd::{count, I32x16};
///
/// let (_, n) = count::with(|| I32x16::splat(3) + I32x16::splat(4));
/// assert!(n >= 1 || !count::enabled());
/// ```
pub fn with<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = read();
    let result = f();
    (result, read().wrapping_sub(before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_reflects_feature() {
        assert_eq!(enabled(), cfg!(feature = "count"));
    }

    #[cfg(feature = "count")]
    #[test]
    fn bump_and_read_round_trip() {
        reset();
        bump(3);
        bump(4);
        assert_eq!(read(), 7);
        assert_eq!(take(), 7);
        assert_eq!(read(), 0);
    }

    #[cfg(not(feature = "count"))]
    #[test]
    fn disabled_counting_reads_zero() {
        reset();
        bump(3);
        assert_eq!(read(), 0);
        assert_eq!(take(), 0);
        let ((), n) = with(|| bump(11));
        assert_eq!(n, 0);
    }

    #[cfg(feature = "count")]
    #[test]
    fn with_reports_nested_cost_without_losing_outer_count() {
        reset();
        bump(5);
        let ((), inner) = with(|| bump(11));
        assert_eq!(inner, 11);
        assert_eq!(read(), 16);
    }

    #[cfg(feature = "count")]
    #[test]
    fn counters_are_per_thread() {
        reset();
        bump(9);
        let other = std::thread::spawn(|| {
            bump(1);
            read()
        })
        .join()
        .unwrap();
        assert_eq!(other, 1);
        assert_eq!(read(), 9);
    }
}
