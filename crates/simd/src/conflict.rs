//! The `vpconflictd` conflict-detection instruction family.

use crate::count;
use crate::mask::Mask;
use crate::native;
use crate::vector::SimdVec;

/// Detects conflicting lanes in an index vector (`vpconflictd`).
///
/// For each lane `i`, the result lane holds a bitset in which bit `j` is set
/// iff `j < i` and `idx[j] == idx[i]` — i.e. each lane reports the preceding
/// lanes it collides with, starting from the least significant bit. Lanes
/// with result `0` have no earlier duplicate and form a conflict-free subset.
///
/// Dispatches to the hardware instruction when AVX-512 is available.
///
/// # Example
///
/// ```
/// use invector_simd::{conflict_detect, I32x16};
///
/// let mut idx = [0i32; 16];
/// idx[3] = 0; // lanes 0..16 all hold 0 here; make it interesting:
/// let idx: [i32; 16] = std::array::from_fn(|i| (i % 4) as i32);
/// let c = conflict_detect(I32x16::from_array(idx));
/// assert_eq!(c.extract(0), 0); // first occurrence of 0
/// assert_eq!(c.extract(4), 0b1); // second occurrence of 0 collides with lane 0
/// assert_eq!(c.extract(8), 0b1_0001); // third collides with lanes 0 and 4
/// ```
pub fn conflict_detect<const N: usize>(idx: SimdVec<i32, N>) -> SimdVec<i32, N> {
    count::bump(1);
    if N == 16 && native::available() {
        if let Some(&idx16) = idx.as_array().first_chunk::<16>() {
            // SAFETY: guarded by `native::available()`.
            let out = unsafe { native::conflict_i32(idx16) };
            return SimdVec::from_array(std::array::from_fn(|i| out[i]));
        }
    }
    let lanes = idx.as_array();
    SimdVec::from_array(std::array::from_fn(|i| {
        let mut bits = 0i32;
        for j in 0..i {
            if lanes[j] == lanes[i] {
                bits |= 1 << j;
            }
        }
        bits
    }))
}

/// Returns the conflict-free subset of the `active` lanes of `idx`.
///
/// A lane is in the subset iff it is active and no *active* preceding lane
/// holds the same index. The subset therefore contains exactly the first
/// active occurrence of every distinct index — scattering through these
/// lanes can never self-conflict.
///
/// This is the paper's `v_get_conflict_free_subset` primitive: one
/// `vpconflictd` plus one masked test against the broadcast active mask
/// (2 SIMD instructions).
///
/// # Example
///
/// ```
/// use invector_simd::{conflict_free_subset, I32x16, Mask16};
///
/// let idx = I32x16::from_array(std::array::from_fn(|i| (i % 2) as i32));
/// let safe = conflict_free_subset(Mask16::all(), idx);
/// assert_eq!(safe.bits(), 0b11); // lanes 0 and 1: first 0 and first 1
///
/// // Deactivating lane 0 promotes lane 2 to "first occurrence of 0".
/// let safe = conflict_free_subset(Mask16::all().with(0, false), idx);
/// assert_eq!(safe.bits(), 0b110);
/// ```
pub fn conflict_free_subset<const N: usize>(active: Mask<N>, idx: SimdVec<i32, N>) -> Mask<N> {
    let conflicts = conflict_detect(idx);
    count::bump(1); // vptestnmd against the broadcast active mask
    let active_bits = active.bits() as i32;
    let lanes = conflicts.as_array();
    let free: Mask<N> = Mask::from_array(std::array::from_fn(|i| lanes[i] & active_bits == 0));
    Mask::from_bits(free.bits() & active.bits())
}

/// Reports whether any two lanes of `idx` hold the same value.
///
/// # Example
///
/// ```
/// use invector_simd::{has_conflicts, I32x16};
/// assert!(!has_conflicts(I32x16::iota()));
/// assert!(has_conflicts(I32x16::splat(3)));
/// ```
pub fn has_conflicts<const N: usize>(idx: SimdVec<i32, N>) -> bool {
    let c = conflict_detect(idx);
    c.as_array().iter().any(|&bits| bits != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{I32x16, Mask16};

    #[test]
    fn distinct_indices_have_no_conflicts() {
        let c = conflict_detect(I32x16::iota());
        assert_eq!(*c.as_array(), [0i32; 16]);
    }

    #[test]
    fn all_equal_indices_report_all_preceding_lanes() {
        let c = conflict_detect(I32x16::splat(42));
        for i in 0..16 {
            assert_eq!(c.extract(i), (1i32 << i) - 1, "lane {i}");
        }
    }

    #[test]
    fn paper_figure5_index_vector() {
        // The running example from Figure 5 of the paper.
        let idx = I32x16::from_array([0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5]);
        let safe = conflict_free_subset(Mask16::all(), idx);
        // Non-conflicting lanes: first 0 (lane 0), first 1 (lane 1),
        // first 2 (lane 4), first 5 (lane 8).
        assert_eq!(safe.bits(), 0b0000_0001_0001_0011);
    }

    #[test]
    fn subset_respects_active_mask() {
        let idx = I32x16::splat(7);
        // Only lanes 5 and 9 active: lane 5 is the first active occurrence.
        let active = Mask16::none().with(5, true).with(9, true);
        let safe = conflict_free_subset(active, idx);
        assert_eq!(safe, Mask16::none().with(5, true));
    }

    #[test]
    fn subset_of_empty_active_mask_is_empty() {
        let safe = conflict_free_subset(Mask16::none(), I32x16::splat(1));
        assert!(safe.is_empty());
    }

    #[test]
    fn subset_contains_first_occurrence_of_each_distinct_index() {
        let idx = I32x16::from_array([3, 3, 9, 9, 3, 1, 1, 9, 2, 2, 2, 2, 0, 3, 1, 0]);
        let safe = conflict_free_subset(Mask16::all(), idx);
        let mut seen = std::collections::HashSet::new();
        for i in 0..16 {
            let first = seen.insert(idx.extract(i));
            assert_eq!(safe.test(i), first, "lane {i}");
        }
    }

    #[test]
    fn negative_indices_compare_by_value() {
        let idx = I32x16::from_array(std::array::from_fn(|i| if i < 8 { -3 } else { -4 }));
        let c = conflict_detect(idx);
        assert_eq!(c.extract(1), 0b1);
        assert_eq!(c.extract(8), 0);
        assert_eq!(c.extract(9), 0b1_0000_0000);
    }

    #[test]
    fn has_conflicts_detects_any_duplicate() {
        let mut arr: [i32; 16] = std::array::from_fn(|i| i as i32);
        assert!(!has_conflicts(I32x16::from_array(arr)));
        arr[15] = arr[0];
        assert!(has_conflicts(I32x16::from_array(arr)));
    }

    #[test]
    fn portable_matches_native_on_random_vectors() {
        use rand::{Rng, SeedableRng};
        if !crate::native::available() {
            eprintln!("skipping: AVX-512 not available");
            return;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0FFEE);
        for _ in 0..500 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(-4..8));
            // SAFETY: guarded by `available()`.
            let native = unsafe { crate::native::conflict_i32(idx) };
            let portable: [i32; 16] = std::array::from_fn(|i| {
                let mut bits = 0i32;
                for j in 0..i {
                    if idx[j] == idx[i] {
                        bits |= 1 << j;
                    }
                }
                bits
            });
            assert_eq!(native, portable, "input {idx:?}");
        }
    }
}
