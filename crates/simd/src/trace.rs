//! Optional memory-access tracing into a cache simulator.
//!
//! When a [`Hierarchy`](invector_cachesim::Hierarchy) is
//! [`install`]ed on the current thread, every gather/scatter lane and every
//! contiguous vector load/store feeds its byte address to the simulator.
//! [`take`] removes it and returns the accumulated statistics. With no
//! simulator installed the hooks cost one thread-local flag check.
//!
//! # Example
//!
//! ```
//! use invector_cachesim::Hierarchy;
//! use invector_simd::{trace, F32x16, I32x16};
//!
//! let data = vec![1.0f32; 1 << 20];
//! trace::install(Hierarchy::knl_like());
//! for k in 0..1000 {
//!     let idx = I32x16::from_array(std::array::from_fn(|l| ((k * 16 + l) % data.len()) as i32));
//!     let _ = F32x16::gather(&data, idx);
//! }
//! let stats = trace::take().expect("tracer was installed").stats();
//! assert!(stats.accesses >= 16_000);
//! ```

use std::cell::{Cell, RefCell};

use invector_cachesim::Hierarchy;

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SIM: RefCell<Option<Hierarchy>> = const { RefCell::new(None) };
}

/// Installs a cache simulator on the current thread, replacing (and
/// discarding) any previous one.
pub fn install(hierarchy: Hierarchy) {
    SIM.with(|s| *s.borrow_mut() = Some(hierarchy));
    ENABLED.with(|e| e.set(true));
}

/// Removes the current thread's simulator and returns it (with its
/// accumulated statistics), if one was installed.
pub fn take() -> Option<Hierarchy> {
    ENABLED.with(|e| e.set(false));
    SIM.with(|s| s.borrow_mut().take())
}

/// `true` if a simulator is installed on this thread.
pub fn is_active() -> bool {
    ENABLED.with(Cell::get)
}

/// Feeds one memory access to the installed simulator (no-op otherwise).
#[inline]
pub(crate) fn access(addr: usize, bytes: usize) {
    if ENABLED.with(Cell::get) {
        SIM.with(|s| {
            if let Some(h) = s.borrow_mut().as_mut() {
                h.access(addr as u64, bytes as u32);
            }
        });
    }
}

/// Feeds a contiguous span (vector load/store) to the simulator.
#[inline]
pub(crate) fn access_span(addr: usize, bytes: usize) {
    access(addr, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{F32x16, I32x16, Mask16};

    #[test]
    fn tracer_records_gather_lanes() {
        let data = vec![0.0f32; 4096];
        install(Hierarchy::knl_like());
        let idx = I32x16::from_array(std::array::from_fn(|l| (l * 256) as i32));
        let _ = F32x16::gather(&data, idx);
        let h = take().expect("installed");
        // 16 lanes, 16 distinct lines, all cold misses.
        assert_eq!(h.stats().accesses, 16);
        assert_eq!(h.stats().memory, 16);
        assert!(!is_active());
    }

    #[test]
    fn masked_ops_record_only_selected_lanes() {
        let mut data = vec![0.0f32; 1024];
        install(Hierarchy::knl_like());
        let idx = I32x16::iota();
        F32x16::splat(1.0).mask_scatter(Mask16::from_bits(0b101), &mut data, idx);
        let h = take().expect("installed");
        assert_eq!(h.stats().accesses, 2);
    }

    #[test]
    fn contiguous_load_touches_one_or_two_lines() {
        let data = vec![0.0f32; 64];
        install(Hierarchy::knl_like());
        let _ = F32x16::load(&data);
        let h = take().expect("installed");
        assert!(h.stats().accesses <= 2, "{}", h.stats().accesses);
    }

    #[test]
    fn no_tracer_means_no_panic() {
        let _ = take();
        let data = vec![0.0f32; 64];
        let _ = F32x16::load(&data); // hooks are inert
        assert!(take().is_none());
    }

    #[test]
    fn repeated_gathers_of_hot_lines_hit() {
        let data = vec![0.0f32; 64];
        install(Hierarchy::knl_like());
        let idx = I32x16::zero();
        for _ in 0..10 {
            let _ = F32x16::gather(&data, idx);
        }
        let h = take().expect("installed");
        let s = h.stats();
        assert_eq!(s.accesses, 160);
        assert!(s.l1_hit_rate() > 0.99 - 1.0 / 160.0);
    }
}
