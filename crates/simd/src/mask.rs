//! AVX-512-style write masks (`__mmask16` model).

use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};

use crate::count;

/// A lane mask with one bit per SIMD lane, modelling an AVX-512 `k` register.
///
/// Bit `i` corresponds to lane `i`; bits at positions `>= N` are always zero
/// (the type maintains this invariant across all operations).
///
/// # Example
///
/// ```
/// use invector_simd::Mask;
///
/// let m = Mask::<16>::from_bits(0b1010);
/// assert_eq!(m.count_ones(), 2);
/// assert_eq!(m.first_set(), Some(1));
/// assert!((m | Mask::from_bits(0b0001)).test(0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mask<const N: usize>(u32);

impl<const N: usize> Mask<N> {
    const VALID: u32 = if N >= 32 { u32::MAX } else { (1u32 << N) - 1 };

    /// The empty mask (no lane selected).
    #[inline]
    pub const fn none() -> Self {
        Mask(0)
    }

    /// The full mask (all `N` lanes selected).
    #[inline]
    pub const fn all() -> Self {
        Mask(Self::VALID)
    }

    /// Builds a mask from raw bits. Bits at positions `>= N` are discarded.
    #[inline]
    pub const fn from_bits(bits: u32) -> Self {
        Mask(bits & Self::VALID)
    }

    /// Builds a mask with exactly the first `n` lanes set.
    ///
    /// # Panics
    ///
    /// Panics if `n > N`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= N, "first_n({n}) out of range for Mask<{N}>");
        if n == 0 {
            Mask(0)
        } else {
            Mask(Self::VALID >> (N - n))
        }
    }

    /// Returns the raw bit pattern (only the low `N` bits can be set).
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Tests lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    pub fn test(self, i: usize) -> bool {
        assert!(i < N, "lane {i} out of range for Mask<{N}>");
        self.0 & (1 << i) != 0
    }

    /// Returns a copy of the mask with lane `i` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    #[must_use]
    pub fn with(self, i: usize, value: bool) -> Self {
        assert!(i < N, "lane {i} out of range for Mask<{N}>");
        if value {
            Mask(self.0 | (1 << i))
        } else {
            Mask(self.0 & !(1 << i))
        }
    }

    /// Number of selected lanes (`kpopcnt`).
    #[inline]
    pub const fn count_ones(self) -> u32 {
        self.0.count_ones()
    }

    /// `true` if no lane is selected (`kortest` reporting ZF).
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if every lane is selected.
    #[inline]
    pub const fn is_full(self) -> bool {
        self.0 == Self::VALID
    }

    /// Index of the lowest selected lane, if any (`tzcnt`).
    #[inline]
    pub const fn first_set(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// A mask containing only the lowest selected lane: `m & (!m + 1)`.
    ///
    /// This is the `mreduce & (~mreduce + 1)` idiom from Algorithm 1 of the
    /// paper, used to pick the lane that receives a merged partial result.
    #[inline]
    pub const fn lowest_set(self) -> Self {
        Mask(self.0 & self.0.wrapping_neg())
    }

    /// `self & !other` (`kandn`).
    #[inline]
    #[must_use]
    pub const fn and_not(self, other: Self) -> Self {
        Mask(self.0 & !other.0)
    }

    /// Iterates over the indices of selected lanes, lowest first.
    ///
    /// # Example
    ///
    /// ```
    /// use invector_simd::Mask;
    /// let lanes: Vec<usize> = Mask::<8>::from_bits(0b1001).iter_set().collect();
    /// assert_eq!(lanes, vec![0, 3]);
    /// ```
    #[inline]
    pub fn iter_set(self) -> IterSet<N> {
        IterSet { bits: self.0 }
    }

    /// Converts to a per-lane boolean array.
    #[inline]
    pub fn to_array(self) -> [bool; N] {
        std::array::from_fn(|i| self.0 & (1 << i) != 0)
    }

    /// Builds a mask from a per-lane boolean array.
    #[inline]
    pub fn from_array(lanes: [bool; N]) -> Self {
        let mut bits = 0u32;
        for (i, &b) in lanes.iter().enumerate() {
            bits |= (b as u32) << i;
        }
        Mask(bits)
    }
}

impl<const N: usize> BitAnd for Mask<N> {
    type Output = Self;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        count::bump(1); // kand
        Mask(self.0 & rhs.0)
    }
}

impl<const N: usize> BitOr for Mask<N> {
    type Output = Self;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        count::bump(1); // kor
        Mask(self.0 | rhs.0)
    }
}

impl<const N: usize> BitXor for Mask<N> {
    type Output = Self;
    #[inline]
    fn bitxor(self, rhs: Self) -> Self {
        count::bump(1); // kxor
        Mask(self.0 ^ rhs.0)
    }
}

impl<const N: usize> Not for Mask<N> {
    type Output = Self;
    #[inline]
    fn not(self) -> Self {
        count::bump(1); // knot
        Mask(!self.0 & Self::VALID)
    }
}

impl<const N: usize> BitAndAssign for Mask<N> {
    #[inline]
    fn bitand_assign(&mut self, rhs: Self) {
        *self = *self & rhs;
    }
}

impl<const N: usize> BitOrAssign for Mask<N> {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        *self = *self | rhs;
    }
}

impl<const N: usize> BitXorAssign for Mask<N> {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Self) {
        *self = *self ^ rhs;
    }
}

impl<const N: usize> fmt::Debug for Mask<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask<{N}>({:0width$b})", self.0, width = N)
    }
}

impl<const N: usize> fmt::Display for Mask<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.0, width = N)
    }
}

impl<const N: usize> fmt::Binary for Mask<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl<const N: usize> fmt::LowerHex for Mask<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Iterator over set lane indices of a [`Mask`], produced by
/// [`Mask::iter_set`].
#[derive(Debug, Clone)]
pub struct IterSet<const N: usize> {
    bits: u32,
}

impl<const N: usize> Iterator for IterSet<N> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            None
        } else {
            let lane = self.bits.trailing_zeros() as usize;
            self.bits &= self.bits - 1;
            Some(lane)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bits.count_ones() as usize;
        (n, Some(n))
    }
}

impl<const N: usize> ExactSizeIterator for IterSet<N> {}

#[cfg(test)]
mod tests {
    use super::*;

    type M16 = Mask<16>;

    #[test]
    fn all_and_none() {
        assert_eq!(M16::all().bits(), 0xFFFF);
        assert!(M16::none().is_empty());
        assert!(M16::all().is_full());
        assert_eq!(M16::all().count_ones(), 16);
    }

    #[test]
    fn from_bits_truncates_out_of_range_bits() {
        let m = Mask::<4>::from_bits(0xFF);
        assert_eq!(m.bits(), 0xF);
        assert!(m.is_full());
    }

    #[test]
    fn not_respects_width() {
        let m = !Mask::<4>::from_bits(0b0101);
        assert_eq!(m.bits(), 0b1010);
    }

    #[test]
    fn first_n_boundaries() {
        assert_eq!(M16::first_n(0).bits(), 0);
        assert_eq!(M16::first_n(3).bits(), 0b111);
        assert_eq!(M16::first_n(16), M16::all());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn first_n_past_width_panics() {
        let _ = M16::first_n(17);
    }

    #[test]
    fn lowest_set_matches_neg_and_idiom() {
        let m = M16::from_bits(0b0110_1000);
        assert_eq!(m.lowest_set().bits(), 0b1000);
        assert_eq!(M16::none().lowest_set(), M16::none());
    }

    #[test]
    fn first_set_and_iteration_agree() {
        let m = M16::from_bits(0b1001_0010);
        assert_eq!(m.first_set(), Some(1));
        let lanes: Vec<_> = m.iter_set().collect();
        assert_eq!(lanes, vec![1, 4, 7]);
        assert_eq!(m.iter_set().len(), 3);
    }

    #[test]
    fn with_and_test() {
        let m = M16::none().with(5, true).with(2, true).with(5, false);
        assert!(m.test(2));
        assert!(!m.test(5));
    }

    #[test]
    fn boolean_array_round_trip() {
        let m = M16::from_bits(0b1100_0011);
        assert_eq!(M16::from_array(m.to_array()), m);
    }

    #[test]
    fn and_not_excludes_lanes() {
        let a = M16::from_bits(0b1111);
        let b = M16::from_bits(0b0101);
        assert_eq!(a.and_not(b).bits(), 0b1010);
    }

    #[test]
    fn bit_ops() {
        let a = M16::from_bits(0b1100);
        let b = M16::from_bits(0b1010);
        assert_eq!((a & b).bits(), 0b1000);
        assert_eq!((a | b).bits(), 0b1110);
        assert_eq!((a ^ b).bits(), 0b0110);
        let mut c = a;
        c |= b;
        assert_eq!(c.bits(), 0b1110);
    }

    #[test]
    fn display_is_fixed_width() {
        assert_eq!(format!("{}", Mask::<8>::from_bits(0b101)), "00000101");
    }
}
