//! The aarch64 NEON backend: 4 lanes, emulated conflict detection, scalar
//! memory traffic.
//!
//! NEON has no gather, no scatter and no `vpconflictd` equivalent, but the
//! paper's scheme still pays off at 4 lanes: conflict detection and the
//! bounds check run as vector compares (three broadcast/compare steps cover
//! every `(i, j<i)` lane pair; `vclt` on reinterpreted unsigned lanes
//! catches negative indices), while the conflict-free gather-combine-commit
//! runs as four scalar accesses — which is what the hardware would do under
//! the hood anyway at this width.
//!
//! Merge iterations fold conflict groups with the same sequential,
//! identity-seeded, ascending scalar fold as the portable model and every
//! other backend, so results are bitwise identical to the portable model at
//! 4 lanes, stats included.
//!
//! NEON (`asimd`) is a mandatory part of the aarch64 baseline, so
//! [`available`] is simply "are we on aarch64". Raw free functions exist
//! only there; the [`Neon`] type and its [`Isa`] impl exist everywhere
//! (compile-time-false `available()`, `unreachable!()` stubs elsewhere).
//! This file is exercised by the `cargo check --target
//! aarch64-unknown-linux-gnu` CI leg; keep the intrinsic surface minimal.

use super::Isa;

/// Returns `true` on aarch64 hosts (NEON is baseline there), `false`
/// everywhere else at compile time.
#[inline]
pub fn available() -> bool {
    cfg!(target_arch = "aarch64")
}

/// The 4-lane NEON backend (vector conflict detection and bounds checks,
/// scalar gather/scatter). Zero-sized; see [`Isa`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Neon;

/// Forwards one fused-driver trait method to the raw `imp` function of the
/// same name (or to an `unreachable!()` stub off aarch64).
macro_rules! neon_isa_driver {
    ($name:ident, $t:ty) => {
        unsafe fn $name(target: &mut [$t], idx: &[i32], vals: &[$t], depth: &mut [u64; 17]) -> u64 {
            #[cfg(target_arch = "aarch64")]
            // SAFETY: forwarded contract — caller checked `available()` and
            // the slice-length preconditions.
            unsafe {
                imp::$name(target, idx, vals, depth)
            }
            #[cfg(not(target_arch = "aarch64"))]
            {
                let _ = (target, idx, vals, depth);
                unreachable!("neon backend is never available on this target")
            }
        }
    };
}

// SAFETY: the drivers below validate indices per vector before any memory
// op, fold merge groups in the portable model's order at 4 lanes, and only
// run on aarch64 where NEON is baseline.
unsafe impl Isa for Neon {
    const NAME: &'static str = "neon";
    const LANES: usize = 4;
    const TAG: usize = crate::count::tag::NEON;
    // 8 scalar load/stores + vector bounds check (3) + emulated conflict
    // detection (3 × broadcast/compare/mask = 9) + combine + loop overhead.
    const MODEL_COST_PER_VECTOR: u64 = 22;

    #[inline]
    fn available() -> bool {
        available()
    }

    unsafe fn conflict_free_subset(active: u32, idx: &[i32]) -> u32 {
        debug_assert_eq!(idx.len(), Self::LANES);
        #[cfg(target_arch = "aarch64")]
        // SAFETY: forwarded contract — caller checked `available()`.
        unsafe {
            let mut a = [0i32; 4];
            a.copy_from_slice(idx);
            imp::conflict_free_subset_u4(active, a)
        }
        #[cfg(not(target_arch = "aarch64"))]
        {
            let _ = (active, idx);
            unreachable!("neon backend is never available on this target")
        }
    }

    neon_isa_driver!(accumulate_add_f32, f32);
    neon_isa_driver!(accumulate_min_f32, f32);
    neon_isa_driver!(accumulate_max_f32, f32);
    neon_isa_driver!(accumulate_add_i32, i32);
    neon_isa_driver!(accumulate_min_i32, i32);
    neon_isa_driver!(accumulate_max_i32, i32);

    unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64 {
        #[cfg(target_arch = "aarch64")]
        // SAFETY: forwarded contract — caller checked `available()` and the
        // slice-length preconditions.
        unsafe {
            imp::accumulate_add_f32_alg2(target, aux, touched, idx, vals, depth)
        }
        #[cfg(not(target_arch = "aarch64"))]
        {
            let _ = (target, aux, touched, idx, vals, depth);
            unreachable!("neon backend is never available on this target")
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod imp {
    use std::arch::aarch64::*;

    /// Low-4-bit lane mask from a 32-bit-lane compare result: AND with
    /// per-lane bit weights, horizontal add.
    #[inline]
    unsafe fn movemask4(m: uint32x4_t) -> u32 {
        // SAFETY: loads from a local array; register-only from there.
        unsafe {
            let weights = [1u32, 2, 4, 8];
            let bits = vld1q_u32(weights.as_ptr());
            vaddvq_u32(vandq_u32(m, bits))
        }
    }

    /// Emulated conflict-free subset over a loaded index vector: for each
    /// active lane `j`, one broadcast-compare marks every later lane
    /// holding the same index as a duplicate. `arr` holds the same values
    /// as `vidx` (scalar broadcast source).
    #[inline]
    unsafe fn cfs_from_vec(active: u32, vidx: int32x4_t, arr: &[i32; 4]) -> u32 {
        // SAFETY: register-only intrinsics.
        unsafe {
            let mut dup = 0u32;
            for j in 0..3 {
                if active & (1 << j) == 0 {
                    continue;
                }
                let eq = movemask4(vceqq_s32(vidx, vdupq_n_s32(arr[j])));
                // Only lanes after j count; lane j itself stays first.
                dup |= eq & !((1u32 << (j + 1)) - 1);
            }
            active & !dup
        }
    }

    /// The conflict-free-subset primitive at 4 lanes: active lanes with no
    /// earlier active duplicate, via a three-step broadcast-compare sweep.
    /// Pure lane-local computation — indices may be any `i32`.
    ///
    /// # Safety
    ///
    /// Only callable on aarch64 (NEON is baseline there).
    pub unsafe fn conflict_free_subset_u4(active: u32, idx: [i32; 4]) -> u32 {
        // SAFETY: loads from a local array; register-only from there.
        unsafe {
            let vidx = vld1q_s32(idx.as_ptr());
            cfs_from_vec(active & 0xF, vidx, &idx)
        }
    }

    /// Generates one fused whole-stream accumulation driver at 4 lanes:
    /// vectorized conflict detection and bounds check, scalar
    /// gather-combine-commit (NEON has neither gather nor scatter; at 4
    /// lanes the hardware would serialize them anyway). Tails run as
    /// partial vectors with the same depth accounting as the portable
    /// 4-lane driver.
    macro_rules! neon_accumulate {
        ($(#[$doc:meta])* $name:ident, $t:ty, $zero_elem:expr, $identity:expr, $combine:expr) => {
            $(#[$doc])*
            ///
            /// Records one depth-histogram bucket per vector in `depth`
            /// (`depth[d] += 1`, `d` ≤ 2) and returns the number of vector
            /// iterations executed (`⌈n / 4⌉`).
            ///
            /// # Safety
            ///
            /// `idx.len() == vals.len()`; `target.len() <= i32::MAX`.
            /// Out-of-range (including negative) indices panic like the
            /// portable model, before any lane of the offending vector
            /// commits.
            pub unsafe fn $name(
                target: &mut [$t],
                idx: &[i32],
                vals: &[$t],
                depth: &mut [u64; 17],
            ) -> u64 {
                // SAFETY: every unchecked slice access below is covered by
                // the loop bounds (`j + l < n`) or by the per-vector bounds
                // check over the index lanes.
                unsafe {
                    let n = idx.len();
                    // Unsigned compare catches negative indices too.
                    let vlen = vdupq_n_u32(target.len() as u32);
                    let mut vectors = 0u64;
                    let mut j = 0;
                    while j < n {
                        let lanes = (n - j).min(4);
                        let active: u32 = (1u32 << lanes) - 1;
                        let mut ai = [0i32; 4];
                        let mut av = [$zero_elem; 4];
                        for l in 0..lanes {
                            ai[l] = *idx.get_unchecked(j + l);
                            av[l] = *vals.get_unchecked(j + l);
                        }
                        let vidx = vld1q_s32(ai.as_ptr());
                        let inb =
                            movemask4(vcltq_u32(vreinterpretq_u32_s32(vidx), vlen)) & active;
                        if inb != active {
                            let bad = (active & !inb).trailing_zeros() as usize;
                            panic!(
                                "gather/scatter index {} out of bounds for slice of length {}",
                                ai[bad],
                                target.len()
                            );
                        }
                        let mret = cfs_from_vec(active, vidx, &ai);
                        // Merge conflicting groups (usually zero
                        // iterations): identity-seeded ascending fold over
                        // the original lane values, the portable order.
                        let mut d = 0u32;
                        let mut todo = active & !mret;
                        while todo != 0 {
                            d += 1;
                            let i = todo.trailing_zeros() as usize;
                            let mreduce =
                                movemask4(vceqq_s32(vidx, vdupq_n_s32(ai[i]))) & active;
                            let mut acc: $t = $identity;
                            let mut bits = mreduce;
                            while bits != 0 {
                                let l = bits.trailing_zeros() as usize;
                                acc = $combine(acc, *vals.get_unchecked(j + l));
                                bits &= bits - 1;
                            }
                            av[mreduce.trailing_zeros() as usize] = acc;
                            todo &= !mreduce;
                        }
                        depth[d as usize] += 1;
                        // Conflict-free commit: the selected lanes hold
                        // pairwise-distinct, validated indices.
                        let mut bits = mret;
                        while bits != 0 {
                            let l = bits.trailing_zeros() as usize;
                            let slot = target.get_unchecked_mut(ai[l] as usize);
                            *slot = $combine(*slot, av[l]);
                            bits &= bits - 1;
                        }
                        vectors += 1;
                        j += 4;
                    }
                    vectors
                }
            }
        };
    }

    neon_accumulate!(
        /// Fused whole-stream `target[idx[j]] += vals[j]` (f32 sums).
        accumulate_add_f32,
        f32,
        0.0f32,
        0.0f32,
        |a: f32, b: f32| a + b
    );
    neon_accumulate!(
        /// Fused whole-stream f32 minimum: the SSSP-shaped reduction.
        accumulate_min_f32,
        f32,
        0.0f32,
        f32::INFINITY,
        f32::min
    );
    neon_accumulate!(
        /// Fused whole-stream f32 maximum: the SSWP-shaped reduction.
        accumulate_max_f32,
        f32,
        0.0f32,
        f32::NEG_INFINITY,
        f32::max
    );
    neon_accumulate!(
        /// Fused whole-stream `target[idx[j]] += vals[j]` (wrapping i32).
        accumulate_add_i32,
        i32,
        0i32,
        0i32,
        |a: i32, b: i32| a.wrapping_add(b)
    );
    neon_accumulate!(
        /// Fused whole-stream i32 minimum: the WCC-shaped reduction.
        accumulate_min_i32,
        i32,
        0i32,
        i32::MAX,
        |a: i32, b: i32| a.min(b)
    );
    neon_accumulate!(
        /// Fused whole-stream i32 maximum.
        accumulate_max_i32,
        i32,
        0i32,
        i32::MIN,
        |a: i32, b: i32| a.max(b)
    );

    /// Four-lane Algorithm 2 (aux-array realization, §3.4) over `f32`
    /// sums; same contract as the other backends' `alg2_add_f32`.
    ///
    /// # Safety
    ///
    /// Only callable on aarch64. `aux` writes are bounds-checked
    /// (panicking like the portable model on a bad index).
    pub unsafe fn alg2_add_f32(
        active: u32,
        idx: [i32; 4],
        data: &mut [f32; 4],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
    ) -> (u32, u32) {
        // SAFETY: register-only intrinsics on caller-owned arrays; the aux
        // writes below use safe (checked) indexing.
        unsafe {
            let vidx = vld1q_s32(idx.as_ptr());
            let act = active & 0xF;
            let mret1 = cfs_from_vec(act, vidx, &idx);
            let mret2 = cfs_from_vec(act & !mret1, vidx, &idx);
            let mut d2 = 0u32;
            // Lanes that are neither first nor second occurrence.
            let mut remaining = act & !mret1 & !mret2;
            while remaining != 0 {
                d2 += 1;
                let i = remaining.trailing_zeros() as usize;
                let mreduce = movemask4(vceqq_s32(vidx, vdupq_n_s32(idx[i]))) & (act & !mret2);
                let mut acc = 0.0f32;
                let mut bits = mreduce;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    acc += data[l];
                    bits &= bits - 1;
                }
                data[mreduce.trailing_zeros() as usize] = acc;
                remaining &= !mreduce;
            }
            // Route the second-occurrence subset into the shadow array,
            // ascending lanes like the portable model.
            let mut bits = mret2;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                let slot = &mut aux[idx[l] as usize];
                if *slot == 0.0 {
                    touched.push(idx[l]);
                }
                *slot += data[l];
                bits &= bits - 1;
            }
            (mret1, d2)
        }
    }

    /// Fused whole-stream f32 summation via **Algorithm 2** at 4 lanes;
    /// same contract as the other backends' drivers (the caller folds
    /// `aux` into `target` afterwards in `touched` order).
    ///
    /// # Safety
    ///
    /// `idx.len() == vals.len()`; `aux.len() == target.len()`;
    /// `target.len() <= i32::MAX`. Out-of-range (including negative)
    /// indices panic like the portable model before any commit.
    pub unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64 {
        // SAFETY: every unchecked slice access is covered by the loop
        // bounds or by the per-vector bounds check over the index lanes.
        unsafe {
            let n = idx.len();
            let vlen = vdupq_n_u32(target.len() as u32);
            let mut vectors = 0u64;
            let mut j = 0;
            while j < n {
                let lanes = (n - j).min(4);
                let active: u32 = (1u32 << lanes) - 1;
                let mut ai = [0i32; 4];
                let mut av = [0.0f32; 4];
                for l in 0..lanes {
                    ai[l] = *idx.get_unchecked(j + l);
                    av[l] = *vals.get_unchecked(j + l);
                }
                let vidx = vld1q_s32(ai.as_ptr());
                let inb = movemask4(vcltq_u32(vreinterpretq_u32_s32(vidx), vlen)) & active;
                if inb != active {
                    let bad = (active & !inb).trailing_zeros() as usize;
                    panic!(
                        "gather/scatter index {} out of bounds for slice of length {}",
                        ai[bad],
                        target.len()
                    );
                }
                let (mret1, d2) = alg2_add_f32(active, ai, &mut av, aux, touched);
                depth[d2 as usize] += 1;
                // Conflict-free commit of the first-occurrence subset.
                let mut bits = mret1;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    let slot = target.get_unchecked_mut(ai[l] as usize);
                    *slot += av[l];
                    bits &= bits - 1;
                }
                vectors += 1;
                j += 4;
            }
            vectors
        }
    }
}

#[cfg(target_arch = "aarch64")]
pub use imp::{
    accumulate_add_f32, accumulate_add_f32_alg2, accumulate_add_i32, accumulate_max_f32,
    accumulate_max_i32, accumulate_min_f32, accumulate_min_i32, alg2_add_f32,
    conflict_free_subset_u4,
};

#[cfg(test)]
mod tests {
    #[test]
    fn availability_tracks_architecture() {
        assert_eq!(super::available(), cfg!(target_arch = "aarch64"));
    }

    #[cfg(target_arch = "aarch64")]
    mod arm {
        use super::super::*;

        fn reference_cfs(active: u32, idx: [i32; 4]) -> u32 {
            let mut m = 0u32;
            for i in 0..4 {
                let act = active & (1 << i) != 0;
                let first = (0..i).all(|j| active & (1 << j) == 0 || idx[j] != idx[i]);
                if act && first {
                    m |= 1 << i;
                }
            }
            m
        }

        #[test]
        fn emulated_cfs_matches_reference() {
            for idx in [[0i32; 4], [1, 2, 1, 2], [-1, -1, 5, -1], [3, 1, 4, 1]] {
                for active in 0..16u32 {
                    // SAFETY: aarch64-only module; NEON is baseline.
                    let got = unsafe { conflict_free_subset_u4(active, idx) };
                    assert_eq!(got, reference_cfs(active, idx), "idx {idx:?} active {active:#x}");
                }
            }
        }

        #[test]
        fn fused_add_matches_scalar_reference() {
            let idx: Vec<i32> = (0..11).map(|i| i % 3).collect();
            let vals: Vec<f32> = (0..11).map(|i| i as f32).collect();
            let mut target = vec![0.0f32; 3];
            let mut depth = [0u64; 17];
            // SAFETY: lengths match, indices all in range.
            let vectors = unsafe { accumulate_add_f32(&mut target, &idx, &vals, &mut depth) };
            assert_eq!(vectors, 3);
            let mut expect = vec![0.0f32; 3];
            for (i, v) in idx.iter().zip(&vals) {
                expect[*i as usize] += v;
            }
            assert_eq!(target, expect);
        }
    }
}
