//! The AVX2 backend: 8 lanes, no `vpconflictd`, no hardware scatter.
//!
//! AVX2 machines (every x86 server/desktop since Haswell) lack the three
//! instructions the AVX-512 backend leans on, so each gets a faithful
//! emulation that preserves the portable model's semantics bit for bit *at
//! eight lanes*:
//!
//! * **conflict detection** — the paper's point is that Algorithm 2 needs
//!   no `vpconflictd`; what the drivers do need is the conflict-free-subset
//!   mask, which [`conflict_free_subset_u8`] emulates with a
//!   broadcast-compare sweep: for each active lane `j < 7`, one
//!   `vpbroadcastd` + `vpcmpeqd` + `vmovmskps` marks every later lane
//!   holding the same index as a duplicate. Seven compares cover all
//!   `(i, j<i)` lane pairs — O(LANES) work instead of `vpconflictd`'s
//!   single instruction, which is exactly the trade §2 of the paper prices.
//! * **scatter** — the conflict-free commit stores the combined vector to
//!   the stack and writes the selected (pairwise-distinct) lanes back with
//!   scalar stores.
//! * **unsigned bounds compare** — AVX2 only has signed `vpcmpgtd`, so both
//!   sides are biased by `i32::MIN`; negative indices wrap above any valid
//!   length and fail the check, panicking like the portable model.
//!
//! Loads use `vmaskmov` for tails (fault-suppressing, zero-filling, like
//! AVX-512 `maskz`), and the conflict-free gather runs on the real
//! `vgatherdps` with a vector mask. Merge iterations fold from the source
//! slices with the same sequential identity-seeded ascending scalar fold as
//! the portable model and every other backend.
//!
//! Raw free functions exist only on `x86_64`; the [`Avx2`] type and its
//! [`Isa`] impl exist everywhere (compile-time-false `available()`,
//! `unreachable!()` stubs elsewhere).

use std::sync::OnceLock;

use super::Isa;

/// Returns `true` when the running CPU supports AVX2. Computed once and
/// cached.
#[inline]
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// The 8-lane AVX2 backend (emulated conflict detection, gather with scalar
/// write-back). Zero-sized; see [`Isa`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx2;

/// Forwards one fused-driver trait method to the raw `imp` function of the
/// same name (or to an `unreachable!()` stub off x86_64).
macro_rules! avx2_isa_driver {
    ($name:ident, $t:ty) => {
        unsafe fn $name(target: &mut [$t], idx: &[i32], vals: &[$t], depth: &mut [u64; 17]) -> u64 {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: forwarded contract — caller checked `available()` and
            // the slice-length preconditions.
            unsafe {
                imp::$name(target, idx, vals, depth)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = (target, idx, vals, depth);
                unreachable!("avx2 backend is never available on this target")
            }
        }
    };
}

// SAFETY: the drivers below validate indices per vector before any memory
// op, fold merge groups in the portable model's order at 8 lanes, and are
// only reachable when `available()` observed avx2.
unsafe impl Isa for Avx2 {
    const NAME: &'static str = "avx2";
    const LANES: usize = 8;
    const TAG: usize = crate::count::tag::AVX2;
    // loadidx + loadval + biased bounds check (3) + emulated conflict
    // detection (7 × broadcast/compare/movemask = 21) + gather + combine +
    // up to 8 scalar write-backs + loop overhead.
    const MODEL_COST_PER_VECTOR: u64 = 38;

    #[inline]
    fn available() -> bool {
        available()
    }

    unsafe fn conflict_free_subset(active: u32, idx: &[i32]) -> u32 {
        debug_assert_eq!(idx.len(), Self::LANES);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded contract — caller checked `available()`.
        unsafe {
            let mut a = [0i32; 8];
            a.copy_from_slice(idx);
            u32::from(imp::conflict_free_subset_u8(active as u8, a))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (active, idx);
            unreachable!("avx2 backend is never available on this target")
        }
    }

    avx2_isa_driver!(accumulate_add_f32, f32);
    avx2_isa_driver!(accumulate_min_f32, f32);
    avx2_isa_driver!(accumulate_max_f32, f32);
    avx2_isa_driver!(accumulate_add_i32, i32);
    avx2_isa_driver!(accumulate_min_i32, i32);
    avx2_isa_driver!(accumulate_max_i32, i32);

    unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded contract — caller checked `available()` and the
        // slice-length preconditions.
        unsafe {
            imp::accumulate_add_f32_alg2(target, aux, touched, idx, vals, depth)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (target, aux, touched, idx, vals, depth);
            unreachable!("avx2 backend is never available on this target")
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::arch::x86_64::*;

    /// Per-lane all-ones where the corresponding low bit of `m` is set —
    /// the `__m256i` shape AVX2's `vmaskmov` loads and `vgather` masks
    /// want in place of an opmask register.
    #[target_feature(enable = "avx2")]
    unsafe fn mask_to_vec(m: u32) -> __m256i {
        let bits = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
        let v = _mm256_set1_epi32(m as i32);
        _mm256_cmpeq_epi32(_mm256_and_si256(v, bits), bits)
    }

    /// Low-8-bit lane mask from a 32-bit-lane compare result.
    #[target_feature(enable = "avx2")]
    unsafe fn movemask32(v: __m256i) -> u32 {
        _mm256_movemask_ps(_mm256_castsi256_ps(v)) as u32
    }

    /// Emulated conflict-free subset over a loaded index vector: for each
    /// active lane `j`, broadcast-compare marks every *later* lane holding
    /// the same index as a duplicate; the result keeps the active lanes
    /// with no earlier active duplicate. `arr` holds the same values as
    /// `vidx` (scalar broadcast source).
    #[target_feature(enable = "avx2")]
    unsafe fn cfs_from_vec(active: u32, vidx: __m256i, arr: &[i32; 8]) -> u32 {
        // SAFETY: register-only intrinsics.
        unsafe {
            let mut dup = 0u32;
            for (j, &v) in arr.iter().enumerate().take(7) {
                if active & (1 << j) == 0 {
                    continue;
                }
                let eq = movemask32(_mm256_cmpeq_epi32(vidx, _mm256_set1_epi32(v)));
                // Only lanes after j count; lane j itself stays first.
                dup |= eq & !((1u32 << (j + 1)) - 1);
            }
            active & !dup
        }
    }

    /// The conflict-free-subset primitive without `vpconflictd`: active
    /// lanes with no earlier active duplicate, via a seven-step
    /// broadcast-compare sweep. Pure lane-local computation — indices may
    /// be any `i32`, including negative.
    ///
    /// # Safety
    ///
    /// Requires `avx2` (check [`super::available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn conflict_free_subset_u8(active: u8, idx: [i32; 8]) -> u8 {
        // SAFETY: loads from a local array; register-only from there.
        unsafe {
            let vidx = _mm256_loadu_si256(idx.as_ptr().cast());
            cfs_from_vec(u32::from(active), vidx, &idx) as u8
        }
    }

    /// Conflict-free masked gather: `vgatherdps` with a vector mask.
    #[target_feature(enable = "avx2")]
    unsafe fn gather_f32_masked(base: &[f32], vidx: __m256i, mvec: __m256i) -> __m256 {
        // SAFETY: caller validated the selected indices against `base`.
        unsafe {
            _mm256_mask_i32gather_ps::<4>(
                _mm256_setzero_ps(),
                base.as_ptr(),
                vidx,
                _mm256_castsi256_ps(mvec),
            )
        }
    }

    /// Conflict-free masked gather over `i32` elements.
    #[target_feature(enable = "avx2")]
    unsafe fn gather_i32_masked(base: &[i32], vidx: __m256i, mvec: __m256i) -> __m256i {
        // SAFETY: caller validated the selected indices against `base`.
        unsafe {
            _mm256_mask_i32gather_epi32::<4>(_mm256_setzero_si256(), base.as_ptr(), vidx, mvec)
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn loadu_i32(p: *const i32) -> __m256i {
        // SAFETY: caller guarantees 8 readable elements.
        unsafe { _mm256_loadu_si256(p.cast()) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn storeu_i32(p: *mut i32, v: __m256i) {
        // SAFETY: caller guarantees 8 writable elements.
        unsafe { _mm256_storeu_si256(p.cast(), v) }
    }

    /// Generates one fused whole-stream accumulation driver at 8 lanes.
    /// Same pipeline shape as the AVX-512 drivers — load → conflict-free
    /// subset → (rare) merge fold → gather-combine-commit — with the
    /// emulations described in the module docs standing in for
    /// `vpconflictd`, unsigned compare and scatter. Tails run as masked
    /// vectors (`vmaskmov` zero-fills), never scalar cleanup, so depth
    /// accounting matches the portable 8-lane driver exactly.
    macro_rules! avx2_accumulate {
        ($(#[$doc:meta])* $name:ident, f32, $identity:expr, $combine:expr, $vcombine:ident) => {
            avx2_accumulate!(
                @gen $(#[$doc])* $name, f32, $identity, $combine, $vcombine,
                _mm256_loadu_ps, _mm256_storeu_ps, _mm256_maskload_ps, gather_f32_masked,
                0.0f32
            );
        };
        ($(#[$doc:meta])* $name:ident, i32, $identity:expr, $combine:expr, $vcombine:ident) => {
            avx2_accumulate!(
                @gen $(#[$doc])* $name, i32, $identity, $combine, $vcombine,
                loadu_i32, storeu_i32, _mm256_maskload_epi32, gather_i32_masked,
                0i32
            );
        };
        (@gen $(#[$doc:meta])* $name:ident, $t:ty, $identity:expr, $combine:expr,
         $vcombine:ident, $loadu:ident, $storeu:ident, $maskload:ident, $gather:ident,
         $zero_elem:expr) => {
            $(#[$doc])*
            ///
            /// Records one depth-histogram bucket per vector in `depth`
            /// (`depth[d] += 1`, `d` ≤ 4) and returns the number of vector
            /// iterations executed (`⌈n / 8⌉`).
            ///
            /// # Safety
            ///
            /// Requires `avx2`; `idx.len() == vals.len()`;
            /// `target.len() <= i32::MAX`. Out-of-range (including
            /// negative) indices panic like the portable model, before any
            /// lane of the offending vector commits.
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(
                target: &mut [$t],
                idx: &[i32],
                vals: &[$t],
                depth: &mut [u64; 17],
            ) -> u64 {
                // SAFETY: masked loads/gathers only touch selected lanes;
                // the per-vector bounds check rejects any index the gather
                // and the scalar write-back must not see.
                unsafe {
                    let n = idx.len();
                    // Bias both compare operands by i32::MIN: signed > on
                    // biased values == unsigned <, so negative indices wrap
                    // above every valid length and fail.
                    let bias = _mm256_set1_epi32(i32::MIN);
                    let vlenb = _mm256_set1_epi32((target.len() as i32) ^ i32::MIN);
                    let mut vectors = 0u64;
                    let mut j = 0;
                    while j < n {
                        let rem = n - j;
                        let active: u32 = if rem >= 8 { 0xFF } else { (1u32 << rem) - 1 };
                        let (vidx, mut vval) = if rem >= 8 {
                            (
                                _mm256_loadu_si256(idx.as_ptr().add(j).cast()),
                                $loadu(vals.as_ptr().add(j)),
                            )
                        } else {
                            let am = mask_to_vec(active);
                            (
                                _mm256_maskload_epi32(idx.as_ptr().add(j), am),
                                $maskload(vals.as_ptr().add(j), am),
                            )
                        };
                        let mut ai = [0i32; 8];
                        _mm256_storeu_si256(ai.as_mut_ptr().cast(), vidx);
                        let inb =
                            movemask32(_mm256_cmpgt_epi32(vlenb, _mm256_xor_si256(vidx, bias)))
                                & active;
                        if inb != active {
                            let bad = (active & !inb).trailing_zeros() as usize;
                            panic!(
                                "gather/scatter index {} out of bounds for slice of length {}",
                                ai[bad],
                                target.len()
                            );
                        }
                        let mret = cfs_from_vec(active, vidx, &ai);
                        // Merge conflicting groups (usually zero
                        // iterations): fold straight from the source
                        // slices, identity-seeded, ascending — the portable
                        // order — patching results into a stack copy of the
                        // value vector.
                        let mut d = 0u32;
                        let mut todo = active & !mret;
                        if todo != 0 {
                            let mut buf = [$zero_elem; 8];
                            $storeu(buf.as_mut_ptr(), vval);
                            while todo != 0 {
                                d += 1;
                                let i = todo.trailing_zeros() as usize;
                                let mreduce = movemask32(_mm256_cmpeq_epi32(
                                    vidx,
                                    _mm256_set1_epi32(ai[i]),
                                )) & active;
                                let mut acc: $t = $identity;
                                let mut bits = mreduce;
                                while bits != 0 {
                                    let l = bits.trailing_zeros() as usize;
                                    acc = $combine(acc, *vals.as_ptr().add(j + l));
                                    bits &= bits - 1;
                                }
                                buf[mreduce.trailing_zeros() as usize] = acc;
                                todo &= !mreduce;
                            }
                            vval = $loadu(buf.as_ptr());
                        }
                        depth[d as usize] += 1;
                        // Conflict-free gather-combine commit; no scatter
                        // on AVX2, so the distinct selected lanes write
                        // back scalar.
                        let old = $gather(&*target, vidx, mask_to_vec(mret));
                        let new = $vcombine(old, vval);
                        let mut anew = [$zero_elem; 8];
                        $storeu(anew.as_mut_ptr(), new);
                        let mut bits = mret;
                        while bits != 0 {
                            let l = bits.trailing_zeros() as usize;
                            *target.get_unchecked_mut(ai[l] as usize) = anew[l];
                            bits &= bits - 1;
                        }
                        vectors += 1;
                        j += 8;
                    }
                    vectors
                }
            }
        };
    }

    avx2_accumulate!(
        /// Fused whole-stream `target[idx[j]] += vals[j]` (f32 sums).
        accumulate_add_f32,
        f32,
        0.0f32,
        |a: f32, b: f32| a + b,
        _mm256_add_ps
    );
    avx2_accumulate!(
        /// Fused whole-stream `target[idx[j]] = min(target[idx[j]], vals[j])`
        /// (f32): the SSSP-shaped reduction.
        accumulate_min_f32,
        f32,
        f32::INFINITY,
        f32::min,
        _mm256_min_ps
    );
    avx2_accumulate!(
        /// Fused whole-stream `target[idx[j]] = max(target[idx[j]], vals[j])`
        /// (f32): the SSWP-shaped reduction.
        accumulate_max_f32,
        f32,
        f32::NEG_INFINITY,
        f32::max,
        _mm256_max_ps
    );
    avx2_accumulate!(
        /// Fused whole-stream `target[idx[j]] += vals[j]` (wrapping i32).
        accumulate_add_i32,
        i32,
        0i32,
        |a: i32, b: i32| a.wrapping_add(b),
        _mm256_add_epi32
    );
    avx2_accumulate!(
        /// Fused whole-stream i32 minimum: the WCC-shaped reduction.
        accumulate_min_i32,
        i32,
        i32::MAX,
        |a: i32, b: i32| a.min(b),
        _mm256_min_epi32
    );
    avx2_accumulate!(
        /// Fused whole-stream i32 maximum.
        accumulate_max_i32,
        i32,
        i32::MIN,
        |a: i32, b: i32| a.max(b),
        _mm256_max_epi32
    );

    /// Eight-lane Algorithm 2 (aux-array realization, §3.4) over `f32`
    /// sums — this is the conflict-detection path that needs **no**
    /// `vpconflictd` at all: first occurrences stay in `data` for the
    /// caller to commit (returned mask), second occurrences accumulate into
    /// the `aux` shadow (pushing newly-touched indices onto `touched`), and
    /// only third-and-later occurrences run merge iterations.
    ///
    /// Returns the main-target conflict-free mask and `D2`.
    ///
    /// # Safety
    ///
    /// Requires `avx2`. `aux` writes are bounds-checked (panicking like the
    /// portable model on a bad index), so indices need no prior validation.
    #[target_feature(enable = "avx2")]
    pub unsafe fn alg2_add_f32(
        active: u8,
        idx: [i32; 8],
        data: &mut [f32; 8],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
    ) -> (u8, u32) {
        // SAFETY: register-only intrinsics on caller-owned arrays; the aux
        // writes below use safe (checked) indexing.
        unsafe {
            let vidx = _mm256_loadu_si256(idx.as_ptr().cast());
            let act = u32::from(active);
            let mret1 = cfs_from_vec(act, vidx, &idx);
            let mret2 = cfs_from_vec(act & !mret1, vidx, &idx);
            let mut d2 = 0u32;
            // Lanes that are neither first nor second occurrence.
            let mut remaining = act & !mret1 & !mret2;
            while remaining != 0 {
                d2 += 1;
                let i = remaining.trailing_zeros() as usize;
                // Matching lanes minus the second-occurrence subset; the
                // group's first lane is its mret1 lane.
                let mreduce = movemask32(_mm256_cmpeq_epi32(vidx, _mm256_set1_epi32(idx[i])))
                    & (act & !mret2);
                let mut acc = 0.0f32;
                let mut bits = mreduce;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    acc += data[l];
                    bits &= bits - 1;
                }
                data[mreduce.trailing_zeros() as usize] = acc;
                remaining &= !mreduce;
            }
            // Route the second-occurrence subset into the shadow array,
            // ascending lanes like the portable model.
            let mut bits = mret2;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                let slot = &mut aux[idx[l] as usize];
                if *slot == 0.0 {
                    touched.push(idx[l]);
                }
                *slot += data[l];
                bits &= bits - 1;
            }
            (mret1 as u8, d2)
        }
    }

    /// Fused whole-stream f32 summation via **Algorithm 2** at 8 lanes;
    /// same contract as the AVX-512 driver (the caller folds `aux` into
    /// `target` afterwards in `touched` order).
    ///
    /// Records `depth[d2] += 1` per vector and returns the vector count.
    ///
    /// # Safety
    ///
    /// Requires `avx2`; `idx.len() == vals.len()`;
    /// `aux.len() == target.len()`; `target.len() <= i32::MAX`.
    /// Out-of-range (including negative) indices panic like the portable
    /// model, before any lane of the offending vector commits.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64 {
        // SAFETY: masked loads/gathers only touch selected lanes; the
        // per-vector bounds check rejects any index the gather and the
        // scalar write-back must not see.
        unsafe {
            let n = idx.len();
            let bias = _mm256_set1_epi32(i32::MIN);
            let vlenb = _mm256_set1_epi32((target.len() as i32) ^ i32::MIN);
            let mut vectors = 0u64;
            let mut j = 0;
            while j < n {
                let rem = n - j;
                let active: u32 = if rem >= 8 { 0xFF } else { (1u32 << rem) - 1 };
                let (vidx, vval) = if rem >= 8 {
                    (
                        _mm256_loadu_si256(idx.as_ptr().add(j).cast()),
                        _mm256_loadu_ps(vals.as_ptr().add(j)),
                    )
                } else {
                    let am = mask_to_vec(active);
                    (
                        _mm256_maskload_epi32(idx.as_ptr().add(j), am),
                        _mm256_maskload_ps(vals.as_ptr().add(j), am),
                    )
                };
                let mut ai = [0i32; 8];
                let mut av = [0.0f32; 8];
                _mm256_storeu_si256(ai.as_mut_ptr().cast(), vidx);
                _mm256_storeu_ps(av.as_mut_ptr(), vval);
                let inb =
                    movemask32(_mm256_cmpgt_epi32(vlenb, _mm256_xor_si256(vidx, bias))) & active;
                if inb != active {
                    let bad = (active & !inb).trailing_zeros() as usize;
                    panic!(
                        "gather/scatter index {} out of bounds for slice of length {}",
                        ai[bad],
                        target.len()
                    );
                }
                let (mret1, d2) = alg2_add_f32(active as u8, ai, &mut av, aux, touched);
                depth[d2 as usize] += 1;
                // Conflict-free commit of the first-occurrence subset:
                // gather-add, scalar write-back of the distinct lanes.
                let mret1 = u32::from(mret1);
                let vmerged = _mm256_loadu_ps(av.as_ptr());
                let old = gather_f32_masked(&*target, vidx, mask_to_vec(mret1));
                let new = _mm256_add_ps(old, vmerged);
                let mut anew = [0.0f32; 8];
                _mm256_storeu_ps(anew.as_mut_ptr(), new);
                let mut bits = mret1;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    *target.get_unchecked_mut(ai[l] as usize) = anew[l];
                    bits &= bits - 1;
                }
                vectors += 1;
                j += 8;
            }
            vectors
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use imp::{
    accumulate_add_f32, accumulate_add_f32_alg2, accumulate_add_i32, accumulate_max_f32,
    accumulate_max_i32, accumulate_min_f32, accumulate_min_i32, alg2_add_f32,
    conflict_free_subset_u8,
};

#[cfg(test)]
mod tests {
    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn avx2_backend_contract_off_x86_64() {
        assert!(!super::available());
    }

    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use super::super::*;
        use rand::{Rng, SeedableRng};

        /// Portable conflict-free subset: active lanes with no earlier
        /// active duplicate.
        fn reference_cfs(active: u8, idx: [i32; 8]) -> u8 {
            let mut m = 0u8;
            for i in 0..8 {
                let act = active & (1 << i) != 0;
                let first = (0..i).all(|j| active & (1 << j) == 0 || idx[j] != idx[i]);
                if act && first {
                    m |= 1 << i;
                }
            }
            m
        }

        #[test]
        fn emulated_cfs_matches_reference_on_adversarial_indices() {
            if !available() {
                eprintln!("skipping: AVX2 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA2C5);
            // Dense duplicates, all-same, negatives (no sentinel values
            // exist to collide with — the sweep is value-agnostic).
            for _ in 0..2000 {
                let idx: [i32; 8] = std::array::from_fn(|_| rng.gen_range(-3..4));
                let active: u8 = rng.gen();
                // SAFETY: guarded by `available()`.
                let got = unsafe { conflict_free_subset_u8(active, idx) };
                assert_eq!(got, reference_cfs(active, idx), "idx {idx:?} active {active:#04x}");
            }
            for idx in [[0i32; 8], [i32::MIN; 8], [-1, -1, 0, 0, -1, 1, 1, 0]] {
                for active in [0xFFu8, 0x5A, 0x00, 0x80] {
                    // SAFETY: guarded by `available()`.
                    let got = unsafe { conflict_free_subset_u8(active, idx) };
                    assert_eq!(got, reference_cfs(active, idx), "idx {idx:?}");
                }
            }
        }

        #[test]
        fn fused_drivers_match_scalar_reference() {
            if !available() {
                eprintln!("skipping: AVX2 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA2D6);
            for _ in 0..300 {
                let n: usize = rng.gen_range(0..60);
                let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
                let vf: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
                let vi: Vec<i32> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
                let init_f: Vec<f32> = (0..7).map(|k| k as f32 - 3.0).collect();
                let init_i: Vec<i32> = (0..7).map(|k| k - 3).collect();

                macro_rules! check {
                    ($f:ident, $init:expr, $vals:expr, $fold:expr) => {{
                        let mut target = $init.clone();
                        let mut depth = [0u64; 17];
                        // SAFETY: lengths match, indices in range; guarded
                        // by `available()`.
                        let vectors = unsafe { $f(&mut target, &idx, &$vals, &mut depth) };
                        assert_eq!(vectors, n.div_ceil(8) as u64);
                        assert_eq!(depth.iter().sum::<u64>(), vectors);
                        let mut expect = $init.clone();
                        for (&i, &v) in idx.iter().zip(&$vals) {
                            let slot = &mut expect[i as usize];
                            *slot = $fold(*slot, v);
                        }
                        assert_eq!(target, expect, stringify!($f));
                    }};
                }
                check!(accumulate_min_f32, init_f, vf, f32::min);
                check!(accumulate_max_f32, init_f, vf, f32::max);
                check!(accumulate_add_i32, init_i, vi, |a: i32, b: i32| a.wrapping_add(b));
                check!(accumulate_min_i32, init_i, vi, |a: i32, b: i32| a.min(b));
                check!(accumulate_max_i32, init_i, vi, |a: i32, b: i32| a.max(b));
            }
        }

        #[test]
        fn fused_add_handles_masked_tails_and_depth() {
            if !available() {
                eprintln!("skipping: AVX2 not available on this host");
                return;
            }
            // 13 items: one full vector plus a 5-lane masked tail.
            let idx: Vec<i32> = (0..13).map(|i| i % 3).collect();
            let vals: Vec<f32> = (0..13).map(|i| i as f32).collect();
            let mut target = vec![0.0f32; 3];
            let mut depth = [0u64; 17];
            // SAFETY: lengths match, indices all in range; guarded above.
            let vectors = unsafe { accumulate_add_f32(&mut target, &idx, &vals, &mut depth) };
            assert_eq!(vectors, 2);
            assert_eq!(depth.iter().sum::<u64>(), 2);
            let mut expect = vec![0.0f32; 3];
            for (i, v) in idx.iter().zip(&vals) {
                expect[*i as usize] += v;
            }
            assert_eq!(target, expect);
        }

        #[test]
        #[should_panic(expected = "out of bounds")]
        fn fused_driver_panics_on_negative_index() {
            if !available() {
                // Can't exercise the panic without the ISA; fail the
                // should_panic the expected way.
                panic!("index -1 out of bounds for slice of length 0 (avx2 unavailable)");
            }
            let idx = vec![0, 1, -1, 2];
            let vals = vec![1.0f32; 4];
            let mut target = vec![0.0f32; 4];
            let mut depth = [0u64; 17];
            // SAFETY: guarded by `available()`; the bad index must panic
            // before any commit.
            unsafe { accumulate_add_f32(&mut target, &idx, &vals, &mut depth) };
        }

        #[test]
        fn alg2_splits_first_and_second_occurrences() {
            if !available() {
                eprintln!("skipping: AVX2 not available on this host");
                return;
            }
            // Two identical groups of four distinct lanes: zero merges.
            let idx: [i32; 8] = std::array::from_fn(|i| (i % 4) as i32);
            let mut data = [1.0f32; 8];
            let mut aux = vec![0.0f32; 4];
            let mut touched = Vec::new();
            // SAFETY: guarded by `available()`.
            let (mret1, d2) = unsafe { alg2_add_f32(0xFF, idx, &mut data, &mut aux, &mut touched) };
            assert_eq!(d2, 0);
            assert_eq!(mret1, 0x0F);
            assert_eq!(touched.len(), 4);
            assert_eq!(aux, vec![1.0; 4]);
        }
    }
}
