//! Lane-generic ISA abstraction over the native backends.
//!
//! The portable model ([`SimdVec`](crate::SimdVec) + the `reduce_alg1` /
//! `reduce_alg2` machinery in `invector-core`) defines the semantics of
//! conflict-free accumulation at *any* lane count. Each native backend is a
//! zero-sized type implementing [`Isa`]: a fixed lane width, a runtime
//! availability probe, a conflict-free-subset primitive, and the fused
//! whole-stream `accumulate_{add,min,max}_{f32,i32}` drivers. The backend
//! dispatch layer in `invector-core` is generic over `I: Isa`, so adding an
//! ISA means implementing this trait — nothing above it changes.
//!
//! Three backends exist today:
//!
//! | type       | lanes | conflict detection                                |
//! |------------|-------|---------------------------------------------------|
//! | [`Avx512`] | 16    | hardware `vpconflictd` + `vptestnmd`              |
//! | [`Avx2`]   | 8     | emulated: broadcast/compare sweep (no `vpconflictd`) |
//! | [`Neon`]   | 4     | emulated: three compare/mask steps                |
//!
//! Every type is defined on every compilation target; on the wrong
//! architecture `available()` is a compile-time `false` and the `unsafe`
//! entry points are `unreachable!()` stubs. This lets the dispatch layer
//! compile unconditionally (one match over backends, no `#[cfg]` forests)
//! while the availability gate keeps the stubs dead.
//!
//! Bitwise parity contract: each driver must agree **bit for bit** with the
//! portable model *at its own lane width* — merge iterations fold conflict
//! groups with the same sequential, identity-seeded, ascending scalar fold
//! the portable `SimdVec::reduce` performs. `tests/native_differential.rs`
//! enforces this for every backend available at runtime.

pub mod avx2;
pub mod avx512;
pub mod neon;

pub use avx2::Avx2;
pub use avx512::Avx512;
pub use neon::Neon;

/// One native SIMD instruction set, as seen by the backend dispatch layer.
///
/// All methods are associated functions (the implementing types are
/// zero-sized); masks are the low `LANES` bits of a `u32`, ascending
/// lane order, matching [`Mask::bits`](crate::Mask::bits).
///
/// # Safety
///
/// Implementations promise that every `unsafe fn` below is sound to call
/// whenever `available()` returned `true`, with the documented slice-length
/// preconditions; and that results are bitwise identical to the portable
/// model at `LANES` lanes (same conflict-free subset, same fold order, same
/// depth accounting, same out-of-bounds panic behavior).
pub unsafe trait Isa {
    /// Stable lowercase backend name (`"avx512"`, `"avx2"`, `"neon"`).
    const NAME: &'static str;

    /// 32-bit lanes per vector.
    const LANES: usize;

    /// Index into [`count::BACKEND_NAMES`](crate::count::BACKEND_NAMES) for
    /// the backend-labeled instruction/vector counter series.
    const TAG: usize;

    /// Modeled hardware instructions per conflict-free vector iteration,
    /// used to keep per-ISA counter totals comparable with the portable
    /// model's emulated counts. Merge iterations add the paper's `8` each
    /// (charged separately by the dispatch layer from the depth histogram).
    const MODEL_COST_PER_VECTOR: u64;

    /// Does the running CPU support this ISA? Compile-time `false` on
    /// foreign architectures; cached after the first probe.
    fn available() -> bool;

    /// Active lanes with no earlier active duplicate index.
    ///
    /// `idx.len()` must equal `LANES`; `active` uses the low `LANES` bits.
    /// Pure lane-local computation: indices may be any `i32`, including
    /// negative (no memory is touched).
    ///
    /// # Safety
    ///
    /// `available()` must have returned `true`.
    unsafe fn conflict_free_subset(active: u32, idx: &[i32]) -> u32;

    /// Fused whole-stream `target[idx[j]] += vals[j]` over `f32`.
    ///
    /// Records one depth bucket per vector (`depth[d] += 1`) and returns
    /// the number of vector iterations (`⌈idx.len() / LANES⌉`).
    ///
    /// # Safety
    ///
    /// `available()` must have returned `true`; `idx.len() == vals.len()`;
    /// `target.len() <= i32::MAX`. Out-of-range (including negative)
    /// indices panic like the portable model before any lane of the
    /// offending vector commits.
    unsafe fn accumulate_add_f32(
        target: &mut [f32],
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64;

    /// Fused whole-stream `f32` minimum; contract as [`Isa::accumulate_add_f32`].
    ///
    /// # Safety
    ///
    /// As [`Isa::accumulate_add_f32`].
    unsafe fn accumulate_min_f32(
        target: &mut [f32],
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64;

    /// Fused whole-stream `f32` maximum; contract as [`Isa::accumulate_add_f32`].
    ///
    /// # Safety
    ///
    /// As [`Isa::accumulate_add_f32`].
    unsafe fn accumulate_max_f32(
        target: &mut [f32],
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64;

    /// Fused whole-stream wrapping `i32` sum; contract as
    /// [`Isa::accumulate_add_f32`].
    ///
    /// # Safety
    ///
    /// As [`Isa::accumulate_add_f32`].
    unsafe fn accumulate_add_i32(
        target: &mut [i32],
        idx: &[i32],
        vals: &[i32],
        depth: &mut [u64; 17],
    ) -> u64;

    /// Fused whole-stream `i32` minimum; contract as
    /// [`Isa::accumulate_add_f32`].
    ///
    /// # Safety
    ///
    /// As [`Isa::accumulate_add_f32`].
    unsafe fn accumulate_min_i32(
        target: &mut [i32],
        idx: &[i32],
        vals: &[i32],
        depth: &mut [u64; 17],
    ) -> u64;

    /// Fused whole-stream `i32` maximum; contract as
    /// [`Isa::accumulate_add_f32`].
    ///
    /// # Safety
    ///
    /// As [`Isa::accumulate_add_f32`].
    unsafe fn accumulate_max_i32(
        target: &mut [i32],
        idx: &[i32],
        vals: &[i32],
        depth: &mut [u64; 17],
    ) -> u64;

    /// Fused whole-stream `f32` summation via the paper's **Algorithm 2**
    /// (aux-array realization, §3.4): per vector, first occurrences commit
    /// to `target`, second occurrences accumulate into the `aux` shadow
    /// (recording newly-touched slots in `touched`), and only
    /// third-and-later occurrences pay merge iterations. The caller must
    /// fold `aux` into `target` afterwards in `touched` order to match the
    /// portable `AuxArray::merge_into`.
    ///
    /// # Safety
    ///
    /// As [`Isa::accumulate_add_f32`], plus `aux.len() == target.len()`.
    unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64;
}
