//! The AVX-512 backend: hardware `vpconflictd`, gather and scatter.
//!
//! When the host CPU supports `avx512f` + `avx512cd`, [`available`] returns
//! `true` and the backend-dispatch layer in `invector-core` routes every
//! kernel's hot loop through the real instructions
//! (`vpconflictd`, `vgatherdps`, `vscatterdps`) instead of the portable
//! software model. The portable model defines the semantics; this module
//! must agree with it **bit for bit** (see the differential tests at the
//! bottom of this file and in `tests/native_differential.rs`).
//!
//! Bitwise parity is achieved by construction: every merge iteration folds
//! its conflict group with the *same sequential, identity-seeded, ascending
//! scalar fold* the portable `SimdVec::reduce` performs, using the same
//! scalar combiners (`+`, `f32::min`, `i32::wrapping_add`, ...). Only the
//! conflict detection, the loads, and the conflict-free
//! gather-combine-scatter commit run as wide instructions — which is where
//! all the time goes, because merge iterations are rare (D1 ≈ 0 for graph
//! workloads, §3.4).
//!
//! The raw free functions only exist on `x86_64`; the [`Avx512`] type and
//! its [`Isa`] impl exist everywhere, with `available()` a compile-time
//! `false` (and `unreachable!()` method stubs) on other architectures, so
//! the generic dispatch layer compiles on every target.
//!
//! All functions here are `unsafe`: callers must have validated lane indices
//! against the backing slice (for the functions that touch memory), and must
//! only call them when [`available`] reports support.

use std::sync::OnceLock;

use super::Isa;

/// Returns `true` when the running CPU supports the AVX-512 subset this
/// module needs (`avx512f` and `avx512cd`). The result is computed once and
/// cached.
#[inline]
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::is_x86_feature_detected!("avx512f") && std::is_x86_feature_detected!("avx512cd")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// The 16-lane AVX-512 backend (`vpconflictd` conflict detection, hardware
/// gather/scatter). Zero-sized; see [`Isa`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Avx512;

/// Forwards one fused-driver trait method to the raw `imp` function of the
/// same name (or to an `unreachable!()` stub off x86_64).
macro_rules! avx512_isa_driver {
    ($name:ident, $t:ty) => {
        unsafe fn $name(target: &mut [$t], idx: &[i32], vals: &[$t], depth: &mut [u64; 17]) -> u64 {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: forwarded contract — caller checked `available()` and
            // the slice-length preconditions.
            unsafe {
                imp::$name(target, idx, vals, depth)
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let _ = (target, idx, vals, depth);
                unreachable!("avx512 backend is never available on this target")
            }
        }
    };
}

// SAFETY: the raw drivers below validate indices per vector before any
// masked gather/scatter, fold merge groups in the portable model's order,
// and are only reachable when `available()` observed avx512f+avx512cd.
unsafe impl Isa for Avx512 {
    const NAME: &'static str = "avx512";
    const LANES: usize = 16;
    const TAG: usize = crate::count::tag::AVX512;
    // loadidx + bounds-cmp + loadval + vpconflictd + broadcast + testn +
    // gather + combine + scatter + loop overhead — one instruction each.
    const MODEL_COST_PER_VECTOR: u64 = 10;

    #[inline]
    fn available() -> bool {
        available()
    }

    unsafe fn conflict_free_subset(active: u32, idx: &[i32]) -> u32 {
        debug_assert_eq!(idx.len(), Self::LANES);
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded contract — caller checked `available()`.
        unsafe {
            let mut a = [0i32; 16];
            a.copy_from_slice(idx);
            u32::from(imp::conflict_free_subset_u16(active as u16, a))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (active, idx);
            unreachable!("avx512 backend is never available on this target")
        }
    }

    avx512_isa_driver!(accumulate_add_f32, f32);
    avx512_isa_driver!(accumulate_min_f32, f32);
    avx512_isa_driver!(accumulate_max_f32, f32);
    avx512_isa_driver!(accumulate_add_i32, i32);
    avx512_isa_driver!(accumulate_min_i32, i32);
    avx512_isa_driver!(accumulate_max_i32, i32);

    unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64 {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: forwarded contract — caller checked `available()` and the
        // slice-length preconditions.
        unsafe {
            imp::accumulate_add_f32_alg2(target, aux, touched, idx, vals, depth)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (target, aux, touched, idx, vals, depth);
            unreachable!("avx512 backend is never available on this target")
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::arch::x86_64::*;

    /// `vpconflictd`: for each lane `i`, a bitset of preceding lanes `j < i`
    /// holding the same 32-bit value.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd` (check [`super::available`]).
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn conflict_i32(idx: [i32; 16]) -> [i32; 16] {
        // SAFETY: caller guarantees the required target features; loads and
        // stores go through unaligned intrinsics on locals we own.
        unsafe {
            let v = _mm512_loadu_si512(idx.as_ptr().cast());
            let c = _mm512_conflict_epi32(v);
            let mut out = [0i32; 16];
            _mm512_storeu_si512(out.as_mut_ptr().cast(), c);
            out
        }
    }

    /// Hardware gather of sixteen `f32` elements.
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every `idx[i]` must be in `0..base.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather_f32(base: &[f32], idx: [i32; 16]) -> [f32; 16] {
        // SAFETY: caller validated every index against `base.len()`.
        unsafe {
            let vi = _mm512_loadu_si512(idx.as_ptr().cast());
            let g = _mm512_i32gather_ps::<4>(vi, base.as_ptr().cast());
            let mut out = [0f32; 16];
            _mm512_storeu_ps(out.as_mut_ptr(), g);
            out
        }
    }

    /// Hardware gather of sixteen `i32` elements.
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every `idx[i]` must be in `0..base.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather_i32(base: &[i32], idx: [i32; 16]) -> [i32; 16] {
        // SAFETY: caller validated every index against `base.len()`.
        unsafe {
            let vi = _mm512_loadu_si512(idx.as_ptr().cast());
            let g = _mm512_i32gather_epi32::<4>(vi, base.as_ptr().cast());
            let mut out = [0i32; 16];
            _mm512_storeu_si512(out.as_mut_ptr().cast(), g);
            out
        }
    }

    /// Hardware masked scatter of sixteen `f32` lanes: `base[idx[l]] =
    /// data[l]` for the selected lanes, which **must hold distinct indices**
    /// (e.g. a mask returned by [`invec_add_f32`]).
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every selected `idx[l]` must be in
    /// `0..base.len()` and the selected indices must be pairwise distinct.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scatter_f32(mask: u16, base: &mut [f32], idx: [i32; 16], data: [f32; 16]) {
        // SAFETY: caller validated indices and distinctness.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let vdata = _mm512_loadu_ps(data.as_ptr());
            _mm512_mask_i32scatter_ps::<4>(base.as_mut_ptr().cast(), mask, vidx, vdata);
        }
    }

    /// Hardware masked scatter of sixteen `i32` lanes; see [`scatter_f32`].
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every selected `idx[l]` must be in
    /// `0..base.len()` and the selected indices must be pairwise distinct.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scatter_i32(mask: u16, base: &mut [i32], idx: [i32; 16], data: [i32; 16]) {
        // SAFETY: caller validated indices and distinctness.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let vdata = _mm512_loadu_si512(data.as_ptr().cast());
            _mm512_mask_i32scatter_epi32::<4>(base.as_mut_ptr().cast(), mask, vidx, vdata);
        }
    }

    /// The paper's conflict-free-subset primitive, fully in hardware:
    /// `vpconflictd` + masked test against the broadcast active mask.
    /// Returns the mask of active lanes with no earlier active duplicate.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd`.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn conflict_free_subset_u16(active: u16, idx: [i32; 16]) -> u16 {
        // SAFETY: register-only intrinsics; loads from a local array.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let conflicts = _mm512_conflict_epi32(vidx);
            let act = _mm512_set1_epi32(active as u32 as i32);
            // One `testn` ((conflicts & act) == 0 per lane) replaces the
            // and + compare pair.
            _mm512_mask_testn_epi32_mask(active, conflicts, act)
        }
    }

    /// Generates the per-vector Algorithm-1 body for one (type, operator)
    /// pair. Conflict detection is `vpconflictd`; each (rare) merge
    /// iteration folds its group with the same sequential identity-seeded
    /// ascending scalar fold as the portable model, so results are bitwise
    /// identical for **all** inputs, floats included.
    macro_rules! native_invec {
        ($(#[$doc:meta])* $name:ident, $t:ty, $identity:expr, $combine:expr) => {
            $(#[$doc])*
            ///
            /// Returns the conflict-free mask and the number of merge
            /// iterations executed (`D1`), exactly like the portable
            /// `reduce_alg1`.
            ///
            /// # Safety
            ///
            /// Requires `avx512f` and `avx512cd`. No memory outside `data`
            /// is touched, so indices need no validation.
            #[target_feature(enable = "avx512f,avx512cd")]
            pub unsafe fn $name(active: u16, idx: [i32; 16], data: &mut [$t; 16]) -> (u16, u32) {
                // SAFETY: register-only intrinsics on caller-owned arrays.
                unsafe {
                    let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
                    let mret = conflict_free_subset_u16(active, idx);
                    let mut d1 = 0u32;
                    let mut todo = active & !mret;
                    while todo != 0 {
                        d1 += 1;
                        let i = todo.trailing_zeros() as usize;
                        // All active lanes holding the same index as lane i.
                        let key = _mm512_set1_epi32(idx[i]);
                        let mreduce = _mm512_mask_cmpeq_epi32_mask(active, vidx, key);
                        // Sequential identity-seeded fold, ascending lanes —
                        // the portable model's reduction order.
                        let mut acc: $t = $identity;
                        let mut bits = mreduce;
                        while bits != 0 {
                            let l = bits.trailing_zeros() as usize;
                            acc = $combine(acc, data[l]);
                            bits &= bits - 1;
                        }
                        data[mreduce.trailing_zeros() as usize] = acc;
                        todo &= !mreduce;
                    }
                    (mret, d1)
                }
            }
        };
    }

    native_invec!(
        /// Native Algorithm 1 with the **sum** operator over `f32` lanes
        /// (`invec_add`): the PageRank / aggregation fold.
        invec_add_f32,
        f32,
        0.0f32,
        |a: f32, b: f32| a + b
    );
    native_invec!(
        /// Native Algorithm 1 with the **min** operator over `f32` lanes
        /// (`invec_min`): the SSSP relaxation fold.
        invec_min_f32,
        f32,
        f32::INFINITY,
        f32::min
    );
    native_invec!(
        /// Native Algorithm 1 with the **max** operator over `f32` lanes
        /// (`invec_max`): the SSWP relaxation fold.
        invec_max_f32,
        f32,
        f32::NEG_INFINITY,
        f32::max
    );
    native_invec!(
        /// Native Algorithm 1 with the **sum** operator over `i32` lanes
        /// (wrapping, like the portable `Sum` on `i32`).
        invec_add_i32,
        i32,
        0i32,
        |a: i32, b: i32| a.wrapping_add(b)
    );
    native_invec!(
        /// Native Algorithm 1 with the **min** operator over `i32` lanes:
        /// the WCC label-propagation fold.
        invec_min_i32,
        i32,
        i32::MAX,
        |a: i32, b: i32| a.min(b)
    );
    native_invec!(
        /// Native Algorithm 1 with the **max** operator over `i32` lanes.
        invec_max_i32,
        i32,
        i32::MIN,
        |a: i32, b: i32| a.max(b)
    );

    /// Native Algorithm 1 over `K` `f32` data vectors sharing one index
    /// vector (sum operator) — the multi-component fold Moldyn (3-D
    /// forces), Euler (4 flux components) and hash aggregation
    /// (count/sum/sumsq) run. One `vpconflictd` merge schedule serves every
    /// component, exactly like the portable `reduce_alg1_arr`.
    ///
    /// Returns the conflict-free mask and `D1`.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd`. No memory outside `comps` is
    /// touched.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn invec_add_arr_f32(
        active: u16,
        idx: [i32; 16],
        comps: &mut [[f32; 16]],
    ) -> (u16, u32) {
        // SAFETY: register-only intrinsics on caller-owned arrays.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let mret = conflict_free_subset_u16(active, idx);
            let mut d1 = 0u32;
            let mut todo = active & !mret;
            while todo != 0 {
                d1 += 1;
                let i = todo.trailing_zeros() as usize;
                let key = _mm512_set1_epi32(idx[i]);
                let mreduce = _mm512_mask_cmpeq_epi32_mask(active, vidx, key);
                let first = mreduce.trailing_zeros() as usize;
                for comp in comps.iter_mut() {
                    let mut acc = 0.0f32;
                    let mut bits = mreduce;
                    while bits != 0 {
                        let l = bits.trailing_zeros() as usize;
                        acc += comp[l];
                        bits &= bits - 1;
                    }
                    comp[first] = acc;
                }
                todo &= !mreduce;
            }
            (mret, d1)
        }
    }

    /// Native Algorithm 2 (aux-array realization, §3.4) over `f32` sums:
    /// first occurrences stay in `data` for the caller to scatter (returned
    /// mask), second occurrences accumulate into the `aux` shadow (pushing
    /// newly-touched indices onto `touched`), and only third-and-later
    /// occurrences run merge iterations.
    ///
    /// Returns the main-target conflict-free mask and `D2`.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd`. `aux` writes are bounds-checked
    /// (panicking like the portable model on a bad index), so indices need
    /// no prior validation.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn alg2_add_f32(
        active: u16,
        idx: [i32; 16],
        data: &mut [f32; 16],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
    ) -> (u16, u32) {
        // SAFETY: register-only intrinsics on caller-owned arrays; the aux
        // writes below use safe (checked) indexing.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let mret1 = conflict_free_subset_u16(active, idx);
            let mret2 = conflict_free_subset_u16(active & !mret1, idx);
            let mut d2 = 0u32;
            // Lanes that are neither first nor second occurrence.
            let mut remaining = active & !mret1 & !mret2;
            while remaining != 0 {
                d2 += 1;
                let i = remaining.trailing_zeros() as usize;
                // Matching lanes minus the second-occurrence subset; the
                // group's first lane is its mret1 lane.
                let key = _mm512_set1_epi32(idx[i]);
                let mreduce = _mm512_mask_cmpeq_epi32_mask(active & !mret2, vidx, key);
                let mut acc = 0.0f32;
                let mut bits = mreduce;
                while bits != 0 {
                    let l = bits.trailing_zeros() as usize;
                    acc += data[l];
                    bits &= bits - 1;
                }
                data[mreduce.trailing_zeros() as usize] = acc;
                remaining &= !mreduce;
            }
            // Route the second-occurrence subset into the shadow array,
            // ascending lanes like the portable model.
            let mut bits = mret2;
            while bits != 0 {
                let l = bits.trailing_zeros() as usize;
                let slot = &mut aux[idx[l] as usize];
                if *slot == 0.0 {
                    touched.push(idx[l]);
                }
                *slot += data[l];
                bits &= bits - 1;
            }
            (mret1, d2)
        }
    }

    /// Generates one fused whole-stream accumulation driver: the complete
    /// load → `vpconflictd` → in-vector-reduce → gather-combine-scatter
    /// pipeline stays inside a single `target_feature` function so the hot
    /// loop lives in registers (per-chunk call boundaries would force
    /// spills and block inlining). Tails shorter than 16 lanes run as
    /// masked vectors (`maskz` loads suppress faults on the missing
    /// elements), never as scalar cleanup — depth accounting therefore
    /// matches the portable per-vector drivers exactly.
    macro_rules! native_accumulate {
        ($(#[$doc:meta])* $name:ident, f32, $identity:expr, $combine:expr, $commit:ident) => {
            native_accumulate!(
                @gen $(#[$doc])* $name, f32, $identity, $combine, $commit,
                _mm512_maskz_loadu_ps, _mm512_setzero_ps,
                _mm512_mask_i32gather_ps, _mm512_mask_i32scatter_ps,
                _mm512_set1_ps, _mm512_mask_mov_ps
            );
        };
        ($(#[$doc:meta])* $name:ident, i32, $identity:expr, $combine:expr, $commit:ident) => {
            native_accumulate!(
                @gen $(#[$doc])* $name, i32, $identity, $combine, $commit,
                maskz_loadu_i32, _mm512_setzero_si512,
                _mm512_mask_i32gather_epi32, _mm512_mask_i32scatter_epi32,
                _mm512_set1_epi32, _mm512_mask_mov_epi32
            );
        };
        (@gen $(#[$doc:meta])* $name:ident, $t:ty, $identity:expr, $combine:expr, $commit:ident,
         $maskz_load:ident, $zero:ident, $gather:ident, $scatter:ident,
         $set1:ident, $blend:ident) => {
            $(#[$doc])*
            ///
            /// Records one depth-histogram bucket per vector in `depth`
            /// (`depth[d] += 1`, `d` ≤ 8) and returns the number of vector
            /// iterations executed (`⌈n / 16⌉`).
            ///
            /// # Safety
            ///
            /// Requires `avx512f` + `avx512cd`; `idx.len() == vals.len()`;
            /// `target.len() <= i32::MAX`. Out-of-range (including negative)
            /// indices panic like the portable model, before any lane of
            /// the offending vector commits — one masked unsigned compare
            /// per vector validates all sixteen lanes, so callers need no
            /// scalar prevalidation pass.
            #[target_feature(enable = "avx512f,avx512cd")]
            pub unsafe fn $name(
                target: &mut [$t],
                idx: &[i32],
                vals: &[$t],
                depth: &mut [u64; 17],
            ) -> u64 {
                // SAFETY: masked (`maskz`/masked gather/scatter) memory ops
                // only touch the lanes the `active` mask selects, and the
                // per-vector bounds check below rejects any index the
                // hardware gather/scatter must not see.
                unsafe {
                    let n = idx.len();
                    let vlen = _mm512_set1_epi32(target.len() as i32);
                    let mut vectors = 0u64;
                    let mut j = 0;
                    while j < n {
                        let rem = n - j;
                        let active: u16 =
                            if rem >= 16 { 0xFFFF } else { (1u16 << rem) - 1 };
                        let vidx = _mm512_maskz_loadu_epi32(active, idx.as_ptr().add(j).cast());
                        // Unsigned compare: negative lanes wrap past
                        // `i32::MAX >= target.len()` and fail it too.
                        let inb = _mm512_mask_cmplt_epu32_mask(active, vidx, vlen);
                        if inb != active {
                            let mut ai = [0i32; 16];
                            _mm512_storeu_si512(ai.as_mut_ptr().cast(), vidx);
                            let bad = (active & !inb).trailing_zeros() as usize;
                            panic!(
                                "gather/scatter index {} out of bounds for slice of length {}",
                                ai[bad],
                                target.len()
                            );
                        }
                        let mut vval = $maskz_load(active, vals.as_ptr().add(j));
                        // Conflict-free subset of the active lanes: one
                        // `testn` ((conflicts & act) == 0 per lane) replaces
                        // the and + compare pair.
                        let conflicts = _mm512_conflict_epi32(vidx);
                        let act = _mm512_set1_epi32(active as u32 as i32);
                        let mret = _mm512_mask_testn_epi32_mask(active, conflicts, act);
                        // Merge conflicting groups (usually zero
                        // iterations): the untouched lane values still sit
                        // in the source slices, so each group folds straight
                        // from memory — no register spill — and the result
                        // blends into the group's first lane with one masked
                        // broadcast.
                        let mut d = 0u32;
                        let mut todo = active & !mret;
                        while todo != 0 {
                            d += 1;
                            let i = todo.trailing_zeros() as usize;
                            let key = _mm512_set1_epi32(*idx.as_ptr().add(j + i));
                            let mreduce = _mm512_mask_cmpeq_epi32_mask(active, vidx, key);
                            // Identity-seeded: NOT the load fill value —
                            // min/max identities differ from 0.
                            let mut acc: $t = $identity;
                            let mut bits = mreduce;
                            while bits != 0 {
                                let l = bits.trailing_zeros() as usize;
                                acc = $combine(acc, *vals.as_ptr().add(j + l));
                                bits &= bits - 1;
                            }
                            vval = $blend(vval, 1 << mreduce.trailing_zeros(), $set1(acc));
                            todo &= !mreduce;
                        }
                        depth[d as usize] += 1;
                        // Conflict-free gather-combine-scatter commit.
                        let old = $gather::<4>($zero(), mret, vidx, target.as_ptr().cast());
                        let new = $commit(old, vval);
                        $scatter::<4>(target.as_mut_ptr().cast(), mret, vidx, new);
                        vectors += 1;
                        j += 16;
                    }
                    vectors
                }
            }
        };
    }

    // Thin alias so one macro body covers both element types (the i32
    // masked-load intrinsic takes an unrelated pointer type).
    #[target_feature(enable = "avx512f")]
    unsafe fn maskz_loadu_i32(k: u16, p: *const i32) -> __m512i {
        // SAFETY: masked load only touches the selected lanes.
        unsafe { _mm512_maskz_loadu_epi32(k, p) }
    }

    native_accumulate!(
        /// Fused whole-stream `target[idx[j]] += vals[j]` (f32 sums).
        accumulate_add_f32,
        f32,
        0.0f32,
        |a: f32, b: f32| a + b,
        _mm512_add_ps
    );
    native_accumulate!(
        /// Fused whole-stream `target[idx[j]] = min(target[idx[j]], vals[j])`
        /// (f32): the SSSP-shaped reduction.
        accumulate_min_f32,
        f32,
        f32::INFINITY,
        f32::min,
        _mm512_min_ps
    );
    native_accumulate!(
        /// Fused whole-stream `target[idx[j]] = max(target[idx[j]], vals[j])`
        /// (f32): the SSWP-shaped reduction.
        accumulate_max_f32,
        f32,
        f32::NEG_INFINITY,
        f32::max,
        _mm512_max_ps
    );
    native_accumulate!(
        /// Fused whole-stream `target[idx[j]] += vals[j]` (wrapping i32).
        accumulate_add_i32,
        i32,
        0i32,
        |a: i32, b: i32| a.wrapping_add(b),
        _mm512_add_epi32
    );
    native_accumulate!(
        /// Fused whole-stream i32 minimum: the WCC-shaped reduction.
        accumulate_min_i32,
        i32,
        i32::MAX,
        |a: i32, b: i32| a.min(b),
        _mm512_min_epi32
    );
    native_accumulate!(
        /// Fused whole-stream i32 maximum.
        accumulate_max_i32,
        i32,
        i32::MIN,
        |a: i32, b: i32| a.max(b),
        _mm512_max_epi32
    );

    /// Fused whole-stream f32 summation via **Algorithm 2**: per vector,
    /// first occurrences commit to `target` through a conflict-free masked
    /// gather-add-scatter, second occurrences accumulate into the `aux`
    /// shadow (`touched` records newly-used slots for an `O(touched)`
    /// merge), and only third-and-later occurrences pay merge iterations.
    /// The caller must fold `aux` into `target` afterwards, in `touched`
    /// order, to match the portable `AuxArray::merge_into`.
    ///
    /// Records `depth[d2] += 1` per vector and returns the vector count.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` + `avx512cd`; `idx.len() == vals.len()`;
    /// `aux.len() == target.len()`; `target.len() <= i32::MAX`. Out-of-range
    /// (including negative) indices panic like the portable model, before
    /// any lane of the offending vector commits.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn accumulate_add_f32_alg2(
        target: &mut [f32],
        aux: &mut [f32],
        touched: &mut Vec<i32>,
        idx: &[i32],
        vals: &[f32],
        depth: &mut [u64; 17],
    ) -> u64 {
        // SAFETY: masked memory ops only touch the lanes their mask
        // selects, and the per-vector bounds check below rejects any index
        // the hardware gather/scatter must not see.
        unsafe {
            let n = idx.len();
            let vlen = _mm512_set1_epi32(target.len() as i32);
            let mut vectors = 0u64;
            let mut j = 0;
            while j < n {
                let rem = n - j;
                let active: u16 = if rem >= 16 { 0xFFFF } else { (1u16 << rem) - 1 };
                let mut ai = [0i32; 16];
                let mut av = [0.0f32; 16];
                let vidx = _mm512_maskz_loadu_epi32(active, idx.as_ptr().add(j).cast());
                // Unsigned compare: negative lanes wrap past
                // `i32::MAX >= target.len()` and fail it too.
                let inb = _mm512_mask_cmplt_epu32_mask(active, vidx, vlen);
                if inb != active {
                    let mut bad_idx = [0i32; 16];
                    _mm512_storeu_si512(bad_idx.as_mut_ptr().cast(), vidx);
                    let bad = (active & !inb).trailing_zeros() as usize;
                    panic!(
                        "gather/scatter index {} out of bounds for slice of length {}",
                        bad_idx[bad],
                        target.len()
                    );
                }
                let vval = _mm512_maskz_loadu_ps(active, vals.as_ptr().add(j));
                _mm512_storeu_si512(ai.as_mut_ptr().cast(), vidx);
                _mm512_storeu_ps(av.as_mut_ptr(), vval);
                let (mret1, d2) = alg2_add_f32(active, ai, &mut av, aux, touched);
                depth[d2 as usize] += 1;
                // Conflict-free commit of the first-occurrence subset.
                let vmerged = _mm512_loadu_ps(av.as_ptr());
                let old = _mm512_mask_i32gather_ps::<4>(
                    _mm512_setzero_ps(),
                    mret1,
                    vidx,
                    target.as_ptr().cast(),
                );
                let new = _mm512_add_ps(old, vmerged);
                _mm512_mask_i32scatter_ps::<4>(target.as_mut_ptr().cast(), mret1, vidx, new);
                vectors += 1;
                j += 16;
            }
            vectors
        }
    }

    /// Hardware masked scatter-add of sixteen `f32` lanes:
    /// `base[idx[l]] += data[l]` for the selected lanes, which **must hold
    /// distinct indices** (e.g. the mask returned by [`invec_add_f32`]).
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every selected `idx[l]` must be in
    /// `0..base.len()` and the selected indices must be pairwise distinct
    /// (otherwise updates are lost, as with any gather-add-scatter).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scatter_add_f32(mask: u16, base: &mut [f32], idx: [i32; 16], data: [f32; 16]) {
        // SAFETY: caller validated indices and distinctness.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let vdata = _mm512_loadu_ps(data.as_ptr());
            let old = _mm512_mask_i32gather_ps::<4>(
                _mm512_setzero_ps(),
                mask,
                vidx,
                base.as_ptr().cast(),
            );
            let new = _mm512_add_ps(old, vdata);
            _mm512_mask_i32scatter_ps::<4>(base.as_mut_ptr().cast(), mask, vidx, new);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use imp::{
    accumulate_add_f32, accumulate_add_f32_alg2, accumulate_add_i32, accumulate_max_f32,
    accumulate_max_i32, accumulate_min_f32, accumulate_min_i32, alg2_add_f32,
    conflict_free_subset_u16, conflict_i32, gather_f32, gather_i32, invec_add_arr_f32,
    invec_add_f32, invec_add_i32, invec_max_f32, invec_max_i32, invec_min_f32, invec_min_i32,
    scatter_add_f32, scatter_f32, scatter_i32,
};

#[cfg(test)]
mod tests {
    #[cfg(not(target_arch = "x86_64"))]
    #[test]
    fn native_backend_contract_off_x86_64() {
        // On non-x86 targets the raw entry points are compiled out and
        // availability must be a hard false so the dispatch layer can never
        // reach an AVX-512 path.
        assert!(!super::available());
    }

    #[cfg(target_arch = "x86_64")]
    mod x86 {
        use super::super::*;
        use rand::{Rng, SeedableRng};

        fn reference_conflict(idx: [i32; 16]) -> [i32; 16] {
            std::array::from_fn(|i| {
                let mut bits = 0i32;
                for j in 0..i {
                    if idx[j] == idx[i] {
                        bits |= 1 << j;
                    }
                }
                bits
            })
        }

        /// Portable conflict-free subset: active lanes with no earlier
        /// active duplicate.
        fn reference_cfs(active: u16, idx: [i32; 16]) -> u16 {
            let mut m = 0u16;
            for i in 0..16 {
                let act = active & (1 << i) != 0;
                let first = (0..i).all(|j| active & (1 << j) == 0 || idx[j] != idx[i]);
                if act && first {
                    m |= 1 << i;
                }
            }
            m
        }

        /// The portable model's sequential fold for one lane's group.
        fn reference_fold<T: Copy>(
            active: u16,
            idx: [i32; 16],
            data: [T; 16],
            lane: usize,
            identity: T,
            combine: impl Fn(T, T) -> T,
        ) -> T {
            let mut acc = identity;
            for l in 0..16 {
                if active & (1 << l) != 0 && idx[l] == idx[lane] {
                    acc = combine(acc, data[l]);
                }
            }
            acc
        }

        #[test]
        fn native_conflict_matches_reference_when_available() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let cases: [[i32; 16]; 4] = [
                std::array::from_fn(|i| i as i32),
                [7; 16],
                std::array::from_fn(|i| (i % 3) as i32),
                std::array::from_fn(|i| if i % 2 == 0 { -5 } else { i as i32 }),
            ];
            for idx in cases {
                // SAFETY: guarded by `available()`.
                let native = unsafe { conflict_i32(idx) };
                assert_eq!(native, reference_conflict(idx), "input {idx:?}");
            }
        }

        #[test]
        fn native_invec_add_matches_portable_model_bitwise() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1601);
            for _ in 0..500 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..6));
                // Arbitrary floats: the sequential-fold merge makes the
                // native path bitwise identical, not merely close.
                let data: [f32; 16] = std::array::from_fn(|_| rng.gen_range(-100.0..100.0));
                let active: u16 = rng.gen();

                let mut native_data = data;
                // SAFETY: guarded by `available()`.
                let (native_mask, d1) = unsafe { invec_add_f32(active, idx, &mut native_data) };

                assert_eq!(
                    native_mask,
                    reference_cfs(active, idx),
                    "mask for idx {idx:?} active {active:#06x}"
                );
                // D1 = number of index groups with 2+ active lanes.
                let groups = (0..16)
                    .filter(|&i| active & (1 << i) != 0)
                    .filter(|&i| {
                        (0..16).filter(|&l| active & (1 << l) != 0 && idx[l] == idx[i]).count() > 1
                    })
                    .map(|i| idx[i])
                    .collect::<std::collections::HashSet<_>>();
                assert_eq!(d1 as usize, groups.len(), "D1 for idx {idx:?}");
                for (lane, got) in native_data.iter().enumerate() {
                    if native_mask & (1 << lane) != 0 {
                        let expect = reference_fold(active, idx, data, lane, 0.0f32, |a, b| a + b);
                        assert_eq!(got.to_bits(), expect.to_bits(), "lane {lane} idx {idx:?}");
                    }
                }
            }
        }

        #[test]
        fn native_invec_min_max_match_scalar_reference() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1602);
            for _ in 0..300 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..5));
                let data: [f32; 16] = std::array::from_fn(|_| rng.gen_range(-100.0..100.0));
                let active: u16 = rng.gen::<u16>() | 1; // keep at least one lane

                for minimize in [true, false] {
                    let mut out = data;
                    // SAFETY: guarded by `available()`.
                    let (mask, _) = unsafe {
                        if minimize {
                            invec_min_f32(active, idx, &mut out)
                        } else {
                            invec_max_f32(active, idx, &mut out)
                        }
                    };
                    for (lane, got) in out.iter().enumerate() {
                        if mask & (1 << lane) != 0 {
                            let expect = if minimize {
                                reference_fold(active, idx, data, lane, f32::INFINITY, f32::min)
                            } else {
                                reference_fold(active, idx, data, lane, f32::NEG_INFINITY, f32::max)
                            };
                            assert_eq!(*got, expect, "lane {lane} minimize={minimize}");
                        }
                    }
                }
            }
        }

        #[test]
        fn native_invec_i32_variants_match_scalar_reference() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1603);
            for _ in 0..300 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(-2..5));
                let data: [i32; 16] = std::array::from_fn(|_| rng.gen_range(i32::MIN..i32::MAX));
                let active: u16 = rng.gen();

                let mut add = data;
                let mut min = data;
                let mut max = data;
                // SAFETY: guarded by `available()`.
                let (m_add, _) = unsafe { invec_add_i32(active, idx, &mut add) };
                let (m_min, _) = unsafe { invec_min_i32(active, idx, &mut min) };
                let (m_max, _) = unsafe { invec_max_i32(active, idx, &mut max) };
                let expect_mask = reference_cfs(active, idx);
                assert_eq!(m_add, expect_mask);
                assert_eq!(m_min, expect_mask);
                assert_eq!(m_max, expect_mask);
                for lane in 0..16 {
                    if expect_mask & (1 << lane) != 0 {
                        assert_eq!(
                            add[lane],
                            reference_fold(active, idx, data, lane, 0i32, |a, b| a.wrapping_add(b))
                        );
                        assert_eq!(
                            min[lane],
                            reference_fold(active, idx, data, lane, i32::MAX, |a, b| a.min(b))
                        );
                        assert_eq!(
                            max[lane],
                            reference_fold(active, idx, data, lane, i32::MIN, |a, b| a.max(b))
                        );
                    }
                }
            }
        }

        #[test]
        fn native_conflict_free_subset_matches_portable() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0DE);
            for _ in 0..500 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(-3..5));
                let active: u16 = rng.gen();
                // SAFETY: guarded by `available()`.
                let native = unsafe { conflict_free_subset_u16(active, idx) };
                assert_eq!(native, reference_cfs(active, idx), "idx {idx:?} active {active:#06x}");
            }
        }

        #[test]
        fn isa_trait_subset_matches_raw_entry_point() {
            use crate::arch::Isa;
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0x15A);
            for _ in 0..200 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(-3..5));
                let active: u16 = rng.gen();
                // SAFETY: guarded by `available()`.
                let raw = unsafe { conflict_free_subset_u16(active, idx) };
                // SAFETY: guarded by `available()`.
                let via_trait = unsafe { Avx512::conflict_free_subset(u32::from(active), &idx) };
                assert_eq!(u32::from(raw), via_trait);
            }
        }

        #[test]
        fn native_arr_fold_matches_per_component_single_folds() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1604);
            for _ in 0..200 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..4));
                let active: u16 = rng.gen();
                let comps: [[f32; 16]; 3] =
                    std::array::from_fn(|_| std::array::from_fn(|_| rng.gen_range(-50.0..50.0)));
                let mut arr = comps;
                // SAFETY: guarded by `available()`.
                let (m_arr, d_arr) = unsafe { invec_add_arr_f32(active, idx, &mut arr) };
                for (c, comp) in comps.iter().enumerate() {
                    let mut single = *comp;
                    // SAFETY: guarded by `available()`.
                    let (m, d) = unsafe { invec_add_f32(active, idx, &mut single) };
                    assert_eq!(m, m_arr);
                    assert_eq!(d, d_arr);
                    for lane in 0..16 {
                        if m & (1 << lane) != 0 {
                            assert_eq!(
                                arr[c][lane].to_bits(),
                                single[lane].to_bits(),
                                "component {c} lane {lane}"
                            );
                        }
                    }
                }
            }
        }

        #[test]
        fn native_alg2_splits_first_and_second_occurrences() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            // Two identical groups of eight distinct lanes: the §3.4
            // extreme case needs zero merge iterations.
            let idx: [i32; 16] = std::array::from_fn(|i| (i % 8) as i32);
            let mut data = [1.0f32; 16];
            let mut aux = vec![0.0f32; 8];
            let mut touched = Vec::new();
            // SAFETY: guarded by `available()`.
            let (mret1, d2) =
                unsafe { alg2_add_f32(0xFFFF, idx, &mut data, &mut aux, &mut touched) };
            assert_eq!(d2, 0);
            assert_eq!(mret1, 0x00FF);
            assert_eq!(touched.len(), 8);
            assert_eq!(aux, vec![1.0; 8]);
        }

        #[test]
        fn native_scatter_add_accumulates_distinct_lanes() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut base = vec![1.0f32; 32];
            let idx: [i32; 16] = std::array::from_fn(|i| (i * 2) as i32);
            let data: [f32; 16] = std::array::from_fn(|i| i as f32);
            // SAFETY: indices in range and pairwise distinct; guarded above.
            unsafe { scatter_add_f32(0b0000_0000_1010_0101, &mut base, idx, data) };
            assert_eq!(base[0], 1.0 + 0.0);
            assert_eq!(base[4], 1.0 + 2.0);
            assert_eq!(base[10], 1.0 + 5.0);
            assert_eq!(base[14], 1.0 + 7.0);
            assert_eq!(base[2], 1.0, "unselected lane wrote");
            assert_eq!(base[6], 1.0, "unselected lane wrote");
        }

        #[test]
        fn native_plain_scatters_write_selected_lanes_only() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let mut base_f = vec![-1.0f32; 20];
            let mut base_i = vec![-1i32; 20];
            let idx: [i32; 16] = std::array::from_fn(|i| i as i32);
            let df: [f32; 16] = std::array::from_fn(|i| i as f32);
            let di: [i32; 16] = std::array::from_fn(|i| i as i32 * 10);
            // SAFETY: indices in range and distinct; guarded above.
            unsafe { scatter_f32(0x000F, &mut base_f, idx, df) };
            unsafe { scatter_i32(0x000F, &mut base_i, idx, di) };
            assert_eq!(&base_f[..5], &[0.0, 1.0, 2.0, 3.0, -1.0]);
            assert_eq!(&base_i[..5], &[0, 10, 20, 30, -1]);
        }

        #[test]
        fn native_gathers_match_scalar_when_available() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            let base_f: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
            let base_i: Vec<i32> = (0..64).map(|i| i * 3).collect();
            let idx: [i32; 16] = std::array::from_fn(|i| ((i * 37) % 64) as i32);
            // SAFETY: all indices in range; guarded by `available()`.
            let gf = unsafe { gather_f32(&base_f, idx) };
            let gi = unsafe { gather_i32(&base_i, idx) };
            for lane in 0..16 {
                assert_eq!(gf[lane], base_f[idx[lane] as usize]);
                assert_eq!(gi[lane], base_i[idx[lane] as usize]);
            }
        }

        #[test]
        fn fused_accumulate_handles_masked_tails_and_depth() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            // 21 items: one full vector plus a 5-lane masked tail.
            let idx: Vec<i32> = (0..21).map(|i| i % 3).collect();
            let vals: Vec<f32> = (0..21).map(|i| i as f32).collect();
            let mut target = vec![0.0f32; 3];
            let mut depth = [0u64; 17];
            // SAFETY: lengths match, indices all in range; guarded above.
            let vectors = unsafe { accumulate_add_f32(&mut target, &idx, &vals, &mut depth) };
            assert_eq!(vectors, 2);
            assert_eq!(depth.iter().sum::<u64>(), 2);
            let mut expect = vec![0.0f32; 3];
            for (i, v) in idx.iter().zip(&vals) {
                expect[*i as usize] += v;
            }
            // Per-bin sums of small integers are exact.
            assert_eq!(target, expect);
        }

        #[test]
        fn fused_min_max_drivers_match_scalar_reference() {
            if !available() {
                eprintln!("skipping: AVX-512 not available on this host");
                return;
            }
            // Regression guard: the merge fold must seed with the operator
            // identity, not the masked-load fill value 0 — a 0 seed corrupts
            // min over positive values and max over negative values.
            let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1605);
            for _ in 0..200 {
                let n = rng.gen_range(0..80);
                let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
                let vf: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
                let vi: Vec<i32> = (0..n).map(|_| rng.gen_range(-100..100)).collect();
                let init_f: Vec<f32> = (0..7).map(|k| k as f32 - 3.0).collect();
                let init_i: Vec<i32> = (0..7).map(|k| k - 3).collect();

                macro_rules! check {
                    ($f:ident, $init:expr, $vals:expr, $fold:expr) => {{
                        let mut target = $init.clone();
                        let mut depth = [0u64; 17];
                        // SAFETY: lengths match, indices in range; guarded
                        // by `available()`.
                        unsafe { $f(&mut target, &idx, &$vals, &mut depth) };
                        let mut expect = $init.clone();
                        for (&i, &v) in idx.iter().zip(&$vals) {
                            let slot = &mut expect[i as usize];
                            *slot = $fold(*slot, v);
                        }
                        assert_eq!(target, expect, stringify!($f));
                    }};
                }
                check!(accumulate_min_f32, init_f, vf, f32::min);
                check!(accumulate_max_f32, init_f, vf, f32::max);
                check!(accumulate_add_i32, init_i, vi, |a: i32, b: i32| a.wrapping_add(b));
                check!(accumulate_min_i32, init_i, vi, |a: i32, b: i32| a.min(b));
                check!(accumulate_max_i32, init_i, vi, |a: i32, b: i32| a.max(b));
            }
        }
    }
}
