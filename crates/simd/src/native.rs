//! Native AVX-512 implementations of the hot primitives.
//!
//! When the host CPU supports `avx512f` + `avx512cd`, [`available`] returns
//! `true` and the portable model routes conflict detection and gathers
//! through the real instructions (`_mm512_conflict_epi32`,
//! `_mm512_i32gather_*`). The portable model defines the semantics; this
//! module must agree with it bit-for-bit (see the differential tests at the
//! bottom of this file).
//!
//! All functions here are `unsafe`: callers must have validated lane indices
//! against the backing slice, and must only call them when [`available`]
//! reports support.

use std::sync::OnceLock;

/// Returns `true` when the running CPU supports the AVX-512 subset this
/// module needs (`avx512f` and `avx512cd`). The result is computed once and
/// cached.
#[inline]
pub fn available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::is_x86_feature_detected!("avx512f") && std::is_x86_feature_detected!("avx512cd")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

#[cfg(target_arch = "x86_64")]
mod imp {
    use std::arch::x86_64::*;

    /// `vpconflictd`: for each lane `i`, a bitset of preceding lanes `j < i`
    /// holding the same 32-bit value.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd` (check [`super::available`]).
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn conflict_i32(idx: [i32; 16]) -> [i32; 16] {
        // SAFETY: caller guarantees the required target features; loads and
        // stores go through unaligned intrinsics on locals we own.
        unsafe {
            let v = _mm512_loadu_si512(idx.as_ptr().cast());
            let c = _mm512_conflict_epi32(v);
            let mut out = [0i32; 16];
            _mm512_storeu_si512(out.as_mut_ptr().cast(), c);
            out
        }
    }

    /// Hardware gather of sixteen `f32` elements.
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every `idx[i]` must be in `0..base.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather_f32(base: &[f32], idx: [i32; 16]) -> [f32; 16] {
        // SAFETY: caller validated every index against `base.len()`.
        unsafe {
            let vi = _mm512_loadu_si512(idx.as_ptr().cast());
            let g = _mm512_i32gather_ps::<4>(vi, base.as_ptr().cast());
            let mut out = [0f32; 16];
            _mm512_storeu_ps(out.as_mut_ptr(), g);
            out
        }
    }

    /// Hardware gather of sixteen `i32` elements.
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every `idx[i]` must be in `0..base.len()`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gather_i32(base: &[i32], idx: [i32; 16]) -> [i32; 16] {
        // SAFETY: caller validated every index against `base.len()`.
        unsafe {
            let vi = _mm512_loadu_si512(idx.as_ptr().cast());
            let g = _mm512_i32gather_epi32::<4>(vi, base.as_ptr().cast());
            let mut out = [0i32; 16];
            _mm512_storeu_si512(out.as_mut_ptr().cast(), g);
            out
        }
    }

    /// The paper's conflict-free-subset primitive, fully in hardware:
    /// `vpconflictd` + masked test against the broadcast active mask.
    /// Returns the mask of active lanes with no earlier active duplicate.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd`.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn conflict_free_subset_u16(active: u16, idx: [i32; 16]) -> u16 {
        // SAFETY: register-only intrinsics; loads from a local array.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let conflicts = _mm512_conflict_epi32(vidx);
            let act = _mm512_set1_epi32(active as u32 as i32);
            let masked = _mm512_and_si512(conflicts, act);
            _mm512_mask_cmpeq_epi32_mask(active, masked, _mm512_setzero_si512())
        }
    }

    /// **In-vector reduction, Algorithm 1, entirely in AVX-512**: folds the
    /// active lanes of `data` by the indices in `idx` (summation) and
    /// returns the conflict-free mask — the native counterpart of the
    /// portable `reduce_alg1::<f32, Sum, 16>` and the code the paper's
    /// artifact implements with ICC intrinsics.
    ///
    /// # Safety
    ///
    /// Requires `avx512f` and `avx512cd`.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn invec_add_f32(active: u16, idx: [i32; 16], data: &mut [f32; 16]) -> u16 {
        // SAFETY: register-only intrinsics; loads/stores on caller arrays.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let mut vdata = _mm512_loadu_ps(data.as_ptr());
            let mret = conflict_free_subset_u16(active, idx);
            let mut todo = active & !mret;
            while todo != 0 {
                let i = todo.trailing_zeros();
                // Broadcast idx[i] to all lanes and find its group.
                let key = _mm512_permutexvar_epi32(_mm512_set1_epi32(i as i32), vidx);
                let mreduce = _mm512_mask_cmpeq_epi32_mask(active, vidx, key);
                // Horizontal masked reduce, parked in the group's first lane.
                let sum = _mm512_mask_reduce_add_ps(mreduce, vdata);
                let first = mreduce.trailing_zeros();
                vdata = _mm512_mask_blend_ps(1u16 << first, vdata, _mm512_set1_ps(sum));
                todo &= !mreduce;
            }
            _mm512_storeu_ps(data.as_mut_ptr(), vdata);
            mret
        }
    }

    /// Generates the Algorithm-1 loop body for one reduction operator.
    macro_rules! native_invec {
        ($(#[$doc:meta])* $name:ident, $reduce:ident, $identity:expr) => {
            $(#[$doc])*
            ///
            /// # Safety
            ///
            /// Requires `avx512f` and `avx512cd`.
            #[target_feature(enable = "avx512f,avx512cd")]
            pub unsafe fn $name(active: u16, idx: [i32; 16], data: &mut [f32; 16]) -> u16 {
                let _ = $identity; // identity is implicit in the masked reduce
                // SAFETY: register-only intrinsics on caller-owned arrays.
                unsafe {
                    let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
                    let mut vdata = _mm512_loadu_ps(data.as_ptr());
                    let mret = conflict_free_subset_u16(active, idx);
                    let mut todo = active & !mret;
                    while todo != 0 {
                        let i = todo.trailing_zeros();
                        let key = _mm512_permutexvar_epi32(_mm512_set1_epi32(i as i32), vidx);
                        let mreduce = _mm512_mask_cmpeq_epi32_mask(active, vidx, key);
                        let folded = $reduce(mreduce, vdata);
                        let first = mreduce.trailing_zeros();
                        vdata = _mm512_mask_blend_ps(1u16 << first, vdata, _mm512_set1_ps(folded));
                        todo &= !mreduce;
                    }
                    _mm512_storeu_ps(data.as_mut_ptr(), vdata);
                    mret
                }
            }
        };
    }

    native_invec!(
        /// Native Algorithm 1 with the **min** operator (`invec_min`): the
        /// SSSP relaxation fold, entirely in AVX-512.
        invec_min_f32,
        _mm512_mask_reduce_min_ps,
        f32::INFINITY
    );
    native_invec!(
        /// Native Algorithm 1 with the **max** operator (`invec_max`): the
        /// SSWP relaxation fold, entirely in AVX-512.
        invec_max_f32,
        _mm512_mask_reduce_max_ps,
        f32::NEG_INFINITY
    );

    /// Whole-stream `target[idx[j]] += vals[j]` with the full in-vector
    /// reduction pipeline in one `target_feature` function (so the hot
    /// loop stays in registers: per-chunk function-call boundaries would
    /// otherwise force spills and block inlining).
    ///
    /// # Safety
    ///
    /// Requires `avx512f`+`avx512cd`; `idx.len() == vals.len()`; every
    /// index in `0..target.len()`.
    #[target_feature(enable = "avx512f,avx512cd")]
    pub unsafe fn accumulate_add_f32(target: &mut [f32], idx: &[i32], vals: &[f32]) {
        // SAFETY: caller validated lengths and index ranges.
        unsafe {
            let n = idx.len();
            let mut j = 0;
            while j + 16 <= n {
                let vidx = _mm512_loadu_si512(idx.as_ptr().add(j).cast());
                let mut vdata = _mm512_loadu_ps(vals.as_ptr().add(j));
                // Conflict-free subset.
                let conflicts = _mm512_conflict_epi32(vidx);
                let mret = _mm512_cmpeq_epi32_mask(conflicts, _mm512_setzero_si512());
                // Merge conflicting groups (usually zero iterations).
                let mut todo = !mret;
                while todo != 0 {
                    let i = todo.trailing_zeros();
                    let key = _mm512_permutexvar_epi32(_mm512_set1_epi32(i as i32), vidx);
                    let mreduce = _mm512_cmpeq_epi32_mask(vidx, key);
                    let sum = _mm512_mask_reduce_add_ps(mreduce, vdata);
                    let first = mreduce.trailing_zeros();
                    vdata = _mm512_mask_blend_ps(1u16 << first, vdata, _mm512_set1_ps(sum));
                    todo &= !mreduce;
                }
                // Conflict-free gather-add-scatter.
                let old = _mm512_mask_i32gather_ps::<4>(
                    _mm512_setzero_ps(),
                    mret,
                    vidx,
                    target.as_ptr().cast(),
                );
                let new = _mm512_add_ps(old, vdata);
                _mm512_mask_i32scatter_ps::<4>(target.as_mut_ptr().cast(), mret, vidx, new);
                j += 16;
            }
            // Scalar tail.
            for k in j..n {
                *target.get_unchecked_mut(*idx.get_unchecked(k) as usize) += *vals.get_unchecked(k);
            }
        }
    }

    /// Hardware masked scatter-add of sixteen `f32` lanes:
    /// `base[idx[l]] += data[l]` for the selected lanes, which **must hold
    /// distinct indices** (e.g. the mask returned by [`invec_add_f32`]).
    ///
    /// # Safety
    ///
    /// Requires `avx512f`; every selected `idx[l]` must be in
    /// `0..base.len()` and the selected indices must be pairwise distinct
    /// (otherwise updates are lost, as with any gather-add-scatter).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn scatter_add_f32(mask: u16, base: &mut [f32], idx: [i32; 16], data: [f32; 16]) {
        // SAFETY: caller validated indices and distinctness.
        unsafe {
            let vidx = _mm512_loadu_si512(idx.as_ptr().cast());
            let vdata = _mm512_loadu_ps(data.as_ptr());
            let old = _mm512_mask_i32gather_ps::<4>(
                _mm512_setzero_ps(),
                mask,
                vidx,
                base.as_ptr().cast(),
            );
            let new = _mm512_add_ps(old, vdata);
            _mm512_mask_i32scatter_ps::<4>(base.as_mut_ptr().cast(), mask, vidx, new);
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub use imp::{
    accumulate_add_f32, conflict_free_subset_u16, conflict_i32, gather_f32, gather_i32,
    invec_add_f32, invec_max_f32, invec_min_f32, scatter_add_f32,
};

#[cfg(not(target_arch = "x86_64"))]
mod imp_stub {
    /// Stub for non-x86_64 targets; never called because
    /// [`super::available`] is `false` there.
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn conflict_i32(_idx: [i32; 16]) -> [i32; 16] {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn gather_f32(_base: &[f32], _idx: [i32; 16]) -> [f32; 16] {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn gather_i32(_base: &[i32], _idx: [i32; 16]) -> [i32; 16] {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn conflict_free_subset_u16(_active: u16, _idx: [i32; 16]) -> u16 {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn invec_add_f32(_active: u16, _idx: [i32; 16], _data: &mut [f32; 16]) -> u16 {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn scatter_add_f32(
        _mask: u16,
        _base: &mut [f32],
        _idx: [i32; 16],
        _data: [f32; 16],
    ) {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn invec_min_f32(_active: u16, _idx: [i32; 16], _data: &mut [f32; 16]) -> u16 {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn invec_max_f32(_active: u16, _idx: [i32; 16], _data: &mut [f32; 16]) -> u16 {
        unreachable!("native backend is unavailable on this architecture")
    }

    /// See [`conflict_i32`].
    ///
    /// # Safety
    ///
    /// Must not be called.
    pub unsafe fn accumulate_add_f32(_target: &mut [f32], _idx: &[i32], _vals: &[f32]) {
        unreachable!("native backend is unavailable on this architecture")
    }
}

#[cfg(not(target_arch = "x86_64"))]
pub use imp_stub::{
    accumulate_add_f32, conflict_free_subset_u16, conflict_i32, gather_f32, gather_i32,
    invec_add_f32, invec_max_f32, invec_min_f32, scatter_add_f32,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_conflict(idx: [i32; 16]) -> [i32; 16] {
        std::array::from_fn(|i| {
            let mut bits = 0i32;
            for j in 0..i {
                if idx[j] == idx[i] {
                    bits |= 1 << j;
                }
            }
            bits
        })
    }

    #[test]
    fn native_conflict_matches_reference_when_available() {
        if !available() {
            eprintln!("skipping: AVX-512 not available on this host");
            return;
        }
        let cases: [[i32; 16]; 4] = [
            std::array::from_fn(|i| i as i32),
            [7; 16],
            std::array::from_fn(|i| (i % 3) as i32),
            std::array::from_fn(|i| if i % 2 == 0 { -5 } else { i as i32 }),
        ];
        for idx in cases {
            // SAFETY: guarded by `available()`.
            let native = unsafe { conflict_i32(idx) };
            assert_eq!(native, reference_conflict(idx), "input {idx:?}");
        }
    }

    #[test]
    fn native_invec_add_matches_portable_model() {
        use rand::{Rng, SeedableRng};
        if !available() {
            eprintln!("skipping: AVX-512 not available on this host");
            return;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1601);
        for _ in 0..500 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..6));
            // Small integers: f32 addition is exact in any order, so the
            // hardware tree reduction and the portable fold agree exactly.
            let data: [f32; 16] = std::array::from_fn(|_| rng.gen_range(-64..64) as f32);
            let active: u16 = rng.gen();

            let mut native_data = data;
            // SAFETY: guarded by `available()`.
            let native_mask = unsafe { invec_add_f32(active, idx, &mut native_data) };

            // Portable reference: conflict-free subset + per-group sums.
            let portable_mask = {
                let mut m = 0u16;
                for i in 0..16 {
                    let act = active & (1 << i) != 0;
                    let first = (0..i).all(|j| active & (1 << j) == 0 || idx[j] != idx[i]);
                    if act && first {
                        m |= 1 << i;
                    }
                }
                m
            };
            assert_eq!(native_mask, portable_mask, "mask for idx {idx:?} active {active:#06x}");
            for lane in 0..16 {
                if native_mask & (1 << lane) != 0 {
                    let expect: f32 = (0..16)
                        .filter(|&l| active & (1 << l) != 0 && idx[l] == idx[lane])
                        .map(|l| data[l])
                        .sum();
                    assert_eq!(native_data[lane], expect, "lane {lane} idx {idx:?}");
                }
            }
        }
    }

    #[test]
    fn native_invec_min_max_match_scalar_reference() {
        use rand::{Rng, SeedableRng};
        if !available() {
            eprintln!("skipping: AVX-512 not available on this host");
            return;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xA1602);
        for _ in 0..300 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..5));
            let data: [f32; 16] = std::array::from_fn(|_| rng.gen_range(-100.0..100.0));
            let active: u16 = rng.gen::<u16>() | 1; // keep at least one lane

            for minimize in [true, false] {
                let mut out = data;
                // SAFETY: guarded by `available()`.
                let mask = unsafe {
                    if minimize {
                        invec_min_f32(active, idx, &mut out)
                    } else {
                        invec_max_f32(active, idx, &mut out)
                    }
                };
                for lane in 0..16 {
                    if mask & (1 << lane) != 0 {
                        let group = (0..16)
                            .filter(|&l| active & (1 << l) != 0 && idx[l] == idx[lane])
                            .map(|l| data[l]);
                        let expect = if minimize {
                            group.fold(f32::INFINITY, f32::min)
                        } else {
                            group.fold(f32::NEG_INFINITY, f32::max)
                        };
                        assert_eq!(out[lane], expect, "lane {lane} minimize={minimize}");
                    }
                }
            }
        }
    }

    #[test]
    fn native_conflict_free_subset_matches_portable() {
        use rand::{Rng, SeedableRng};
        if !available() {
            eprintln!("skipping: AVX-512 not available on this host");
            return;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0DE);
        for _ in 0..500 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(-3..5));
            let active: u16 = rng.gen();
            // SAFETY: guarded by `available()`.
            let native = unsafe { conflict_free_subset_u16(active, idx) };
            let mut expect = 0u16;
            for i in 0..16 {
                let act = active & (1 << i) != 0;
                let first = (0..i).all(|j| active & (1 << j) == 0 || idx[j] != idx[i]);
                if act && first {
                    expect |= 1 << i;
                }
            }
            assert_eq!(native, expect, "idx {idx:?} active {active:#06x}");
        }
    }

    #[test]
    fn native_scatter_add_accumulates_distinct_lanes() {
        if !available() {
            eprintln!("skipping: AVX-512 not available on this host");
            return;
        }
        let mut base = vec![1.0f32; 32];
        let idx: [i32; 16] = std::array::from_fn(|i| (i * 2) as i32);
        let data: [f32; 16] = std::array::from_fn(|i| i as f32);
        // SAFETY: indices in range and pairwise distinct; guarded above.
        unsafe { scatter_add_f32(0b0000_0000_1010_0101, &mut base, idx, data) };
        assert_eq!(base[0], 1.0 + 0.0);
        assert_eq!(base[4], 1.0 + 2.0);
        assert_eq!(base[10], 1.0 + 5.0);
        assert_eq!(base[14], 1.0 + 7.0);
        assert_eq!(base[2], 1.0, "unselected lane wrote");
        assert_eq!(base[6], 1.0, "unselected lane wrote");
    }

    #[test]
    fn native_gathers_match_scalar_when_available() {
        if !available() {
            eprintln!("skipping: AVX-512 not available on this host");
            return;
        }
        let base_f: Vec<f32> = (0..64).map(|i| i as f32 * 0.5).collect();
        let base_i: Vec<i32> = (0..64).map(|i| i * 3).collect();
        let idx: [i32; 16] = std::array::from_fn(|i| ((i * 37) % 64) as i32);
        // SAFETY: all indices in range; guarded by `available()`.
        let gf = unsafe { gather_f32(&base_f, idx) };
        let gi = unsafe { gather_i32(&base_i, idx) };
        for lane in 0..16 {
            assert_eq!(gf[lane], base_f[idx[lane] as usize]);
            assert_eq!(gi[lane], base_i[idx[lane] as usize]);
        }
    }
}
