//! Back-compat alias for the AVX-512 backend.
//!
//! The native implementations moved to [`crate::arch`] when the substrate
//! went lane-generic: [`crate::arch::avx512`] holds everything that used to
//! live here, and sibling modules add the 8-lane AVX2 and 4-lane NEON
//! backends behind the same [`Isa`](crate::arch::Isa) trait. This module
//! re-exports the AVX-512 entry points under their historical paths
//! (`native::available`, `native::invec_add_f32`, ...) for existing callers
//! and tests; new code should dispatch through the trait.

pub use crate::arch::avx512::available;

#[cfg(target_arch = "x86_64")]
pub use crate::arch::avx512::{
    accumulate_add_f32, accumulate_add_f32_alg2, accumulate_add_i32, accumulate_max_f32,
    accumulate_max_i32, accumulate_min_f32, accumulate_min_i32, alg2_add_f32,
    conflict_free_subset_u16, conflict_i32, gather_f32, gather_i32, invec_add_arr_f32,
    invec_add_f32, invec_add_i32, invec_max_f32, invec_max_i32, invec_min_f32, invec_min_i32,
    scatter_add_f32, scatter_f32, scatter_i32,
};
