//! Fixed-width SIMD vectors with AVX-512-style memory primitives.

use std::any::TypeId;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Sub, SubAssign};

use crate::count;
use crate::element::SimdElement;
use crate::mask::Mask;
use crate::native;

/// A fixed-width SIMD vector of `N` lanes of `T`, modelling one AVX-512
/// register (`__m512` / `__m512i` when `T` is 32-bit and `N == 16`).
///
/// All lane-wise operations cost one emulated SIMD instruction (recorded by
/// [`crate::count`]). Memory primitives follow AVX-512 semantics:
///
/// * [`gather`](Self::gather) / [`scatter`](Self::scatter) perform indexed
///   loads/stores; on duplicate scatter indices the **highest lane wins**,
///   exactly like `vpscatterdd`.
/// * masked variants leave unselected lanes (or memory) untouched.
/// * [`compress`](Self::compress) / [`expand`](Self::expand) model
///   `vpcompressd` / `vpexpandd`.
///
/// # Example
///
/// ```
/// use invector_simd::{F32x16, I32x16, Mask16};
///
/// let data = [10.0f32, 20.0, 30.0, 40.0];
/// let idx = I32x16::from_array(std::array::from_fn(|i| (i % 4) as i32));
/// let v = F32x16::gather(&data, idx);
/// assert_eq!(v.extract(5), 20.0);
/// ```
#[derive(Clone, Copy, PartialEq)]
#[repr(C, align(64))]
pub struct SimdVec<T, const N: usize>([T; N]);

impl<T: SimdElement, const N: usize> SimdVec<T, N> {
    /// Builds a vector from an array of lane values.
    #[inline]
    pub const fn from_array(lanes: [T; N]) -> Self {
        SimdVec(lanes)
    }

    /// Returns the lanes as an array.
    #[inline]
    pub const fn to_array(self) -> [T; N] {
        self.0
    }

    /// Borrows the lanes.
    #[inline]
    pub const fn as_array(&self) -> &[T; N] {
        &self.0
    }

    /// Mutably borrows the lanes.
    #[inline]
    pub const fn as_mut_array(&mut self) -> &mut [T; N] {
        &mut self.0
    }

    /// Broadcasts `value` to all lanes (`vpbroadcastd`).
    #[inline]
    pub fn splat(value: T) -> Self {
        count::bump(1);
        SimdVec([value; N])
    }

    /// The all-zero (default-element) vector.
    #[inline]
    pub fn zero() -> Self {
        SimdVec([T::default(); N])
    }

    /// Loads `N` consecutive elements starting at `slice[0]` (`vmovups`).
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < N`.
    #[inline]
    pub fn load(slice: &[T]) -> Self {
        count::bump(1);
        assert!(slice.len() >= N, "slice shorter than vector width {N}");
        crate::trace::access_span(slice.as_ptr() as usize, N * std::mem::size_of::<T>());
        let head: &[T; N] = slice[..N].try_into().unwrap();
        SimdVec(*head)
    }

    /// Loads up to `N` elements, filling the remaining lanes with `fill`.
    /// Returns the vector and the mask of lanes that received real data.
    #[inline]
    pub fn load_partial(slice: &[T], fill: T) -> (Self, Mask<N>) {
        count::bump(1);
        let n = slice.len().min(N);
        let mut lanes = [fill; N];
        lanes[..n].copy_from_slice(&slice[..n]);
        (SimdVec(lanes), Mask::first_n(n))
    }

    /// Stores all lanes to `slice[..N]` (`vmovups`).
    ///
    /// # Panics
    ///
    /// Panics if `slice.len() < N`.
    #[inline]
    pub fn store(self, slice: &mut [T]) {
        count::bump(1);
        crate::trace::access_span(slice.as_ptr() as usize, N * std::mem::size_of::<T>());
        slice[..N].copy_from_slice(&self.0);
    }

    /// Reads lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    pub fn extract(self, i: usize) -> T {
        count::bump(1);
        self.0[i]
    }

    /// Returns a copy with lane `i` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    #[inline]
    #[must_use]
    pub fn insert(mut self, i: usize, value: T) -> Self {
        count::bump(1);
        self.0[i] = value;
        self
    }

    /// Lane-wise minimum (`vpminsd` / `vminps`).
    #[inline]
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        count::bump(1);
        SimdVec(std::array::from_fn(|i| self.0[i].lane_min(other.0[i])))
    }

    /// Lane-wise maximum (`vpmaxsd` / `vmaxps`).
    #[inline]
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        count::bump(1);
        SimdVec(std::array::from_fn(|i| self.0[i].lane_max(other.0[i])))
    }

    /// Selects `self` on set lanes of `mask` and `other` elsewhere
    /// (`vpblendmd`).
    #[inline]
    #[must_use]
    pub fn blend(self, mask: Mask<N>, other: Self) -> Self {
        count::bump(1);
        SimdVec(std::array::from_fn(|i| if mask.test(i) { self.0[i] } else { other.0[i] }))
    }

    /// Lane-wise equality compare (`vpcmpeqd`).
    #[inline]
    pub fn simd_eq(self, other: Self) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] == other.0[i]))
    }

    /// Lane-wise inequality compare.
    #[inline]
    pub fn simd_ne(self, other: Self) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] != other.0[i]))
    }

    /// Lane-wise `<` compare.
    #[inline]
    pub fn simd_lt(self, other: Self) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] < other.0[i]))
    }

    /// Lane-wise `<=` compare.
    #[inline]
    pub fn simd_le(self, other: Self) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] <= other.0[i]))
    }

    /// Lane-wise `>` compare.
    #[inline]
    pub fn simd_gt(self, other: Self) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] > other.0[i]))
    }

    /// Lane-wise `>=` compare.
    #[inline]
    pub fn simd_ge(self, other: Self) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] >= other.0[i]))
    }

    /// Compares every lane against the broadcast scalar `value`
    /// (`vpcmpeqd` with an embedded broadcast operand).
    #[inline]
    pub fn eq_broadcast(self, value: T) -> Mask<N> {
        count::bump(1);
        Mask::from_array(std::array::from_fn(|i| self.0[i] == value))
    }

    /// Gathers `base[idx[i]]` into each lane (`vpgatherdd` / `vgatherdps`).
    ///
    /// # Panics
    ///
    /// Panics if any index is negative or `>= base.len()`.
    #[inline]
    pub fn gather(base: &[T], idx: SimdVec<i32, N>) -> Self {
        count::bump(count::GATHER_COST);
        trace_lanes(base, idx, Mask::all());
        if let Some(v) = native_gather(base, idx) {
            return v;
        }
        SimdVec(std::array::from_fn(|i| base[checked_index(idx.0[i], base.len())]))
    }

    /// Gathers `base[idx[i]]` on set lanes of `mask`; other lanes keep the
    /// corresponding lane of `self` (masked `vgatherdps`).
    ///
    /// # Panics
    ///
    /// Panics if any *selected* index is negative or `>= base.len()`.
    #[inline]
    #[must_use]
    pub fn mask_gather(self, mask: Mask<N>, base: &[T], idx: SimdVec<i32, N>) -> Self {
        count::bump(count::GATHER_COST);
        trace_lanes(base, idx, mask);
        SimdVec(std::array::from_fn(|i| {
            if mask.test(i) {
                base[checked_index(idx.0[i], base.len())]
            } else {
                self.0[i]
            }
        }))
    }

    /// Scatters each lane to `base[idx[i]]` (`vpscatterdd` / `vscatterdps`).
    ///
    /// On duplicate indices the highest lane wins, matching AVX-512.
    ///
    /// # Panics
    ///
    /// Panics if any index is negative or `>= base.len()`.
    #[inline]
    pub fn scatter(self, base: &mut [T], idx: SimdVec<i32, N>) {
        count::bump(count::SCATTER_COST);
        trace_lanes(base, idx, Mask::all());
        for i in 0..N {
            base[checked_index(idx.0[i], base.len())] = self.0[i];
        }
    }

    /// Scatters the lanes selected by `mask` to `base[idx[i]]` (masked
    /// `vscatterdps`). Unselected lanes write nothing. On duplicate selected
    /// indices the highest lane wins.
    ///
    /// # Panics
    ///
    /// Panics if any *selected* index is negative or `>= base.len()`.
    #[inline]
    pub fn mask_scatter(self, mask: Mask<N>, base: &mut [T], idx: SimdVec<i32, N>) {
        count::bump(count::SCATTER_COST);
        trace_lanes(base, idx, mask);
        for i in mask.iter_set() {
            base[checked_index(idx.0[i], base.len())] = self.0[i];
        }
    }

    /// Packs the lanes selected by `mask` into the low lanes, filling the
    /// rest with the default element (`vpcompressd` into a zeroed register).
    #[inline]
    #[must_use]
    pub fn compress(self, mask: Mask<N>) -> Self {
        count::bump(1);
        let mut lanes = [T::default(); N];
        for (out, lane) in mask.iter_set().enumerate() {
            lanes[out] = self.0[lane];
        }
        SimdVec(lanes)
    }

    /// Spreads the low lanes of `self` into the lanes selected by `mask`;
    /// unselected lanes take the corresponding lane of `fill`
    /// (`vpexpandd`).
    #[inline]
    #[must_use]
    pub fn expand(self, mask: Mask<N>, fill: Self) -> Self {
        count::bump(1);
        let mut lanes = fill.0;
        for (src, lane) in mask.iter_set().enumerate() {
            lanes[lane] = self.0[src];
        }
        SimdVec(lanes)
    }

    /// Stores the lanes selected by `mask` contiguously to the front of
    /// `out` and returns how many were written (`vpcompressstoreu`) — the
    /// idiom vectorized frontier/queue building uses.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the number of selected lanes.
    ///
    /// # Example
    ///
    /// ```
    /// use invector_simd::{I32x16, Mask16};
    /// let v = I32x16::iota();
    /// let mut out = [0i32; 4];
    /// let n = v.compress_store(Mask16::from_bits(0b1000_0010_0001), &mut out);
    /// assert_eq!(n, 3);
    /// assert_eq!(&out[..3], &[0, 5, 11]);
    /// ```
    pub fn compress_store(self, mask: Mask<N>, out: &mut [T]) -> usize {
        count::bump(1);
        let needed = mask.count_ones() as usize;
        assert!(out.len() >= needed, "compress_store needs {needed} slots, got {}", out.len());
        for (k, lane) in mask.iter_set().enumerate() {
            out[k] = self.0[lane];
        }
        needed
    }

    /// Horizontal reduction of the lanes selected by `mask` with the
    /// associative combiner `f`, starting from `identity`.
    ///
    /// AVX-512 exposes this as the `_mm512_mask_reduce_*` family; the paper
    /// counts one such reduction as a single instruction, and so does this
    /// model.
    ///
    /// # Example
    ///
    /// ```
    /// use invector_simd::{F32x16, Mask16};
    /// let v = F32x16::splat(2.0);
    /// let s = v.reduce(Mask16::from_bits(0b111), 0.0, |a, b| a + b);
    /// assert_eq!(s, 6.0);
    /// ```
    #[inline]
    pub fn reduce(self, mask: Mask<N>, identity: T, f: impl Fn(T, T) -> T) -> T {
        count::bump(1);
        let mut acc = identity;
        for lane in mask.iter_set() {
            acc = f(acc, self.0[lane]);
        }
        acc
    }
}

/// Feeds the selected lanes' addresses to the trace hook (no-op unless a
/// cache simulator is installed on this thread).
#[inline]
fn trace_lanes<T: SimdElement, const N: usize>(base: &[T], idx: SimdVec<i32, N>, mask: Mask<N>) {
    if crate::trace::is_active() {
        let elem = std::mem::size_of::<T>();
        let lanes = idx.as_array();
        for i in mask.iter_set() {
            crate::trace::access(base.as_ptr() as usize + lanes[i] as usize * elem, elem);
        }
    }
}

/// Validates a gather/scatter lane index against the backing slice length.
#[inline(always)]
fn checked_index(idx: i32, len: usize) -> usize {
    let u = idx as usize; // negative values become huge and fail the check below
    assert!(
        (idx as i64) >= 0 && u < len,
        "gather/scatter index {idx} out of bounds for slice of length {len}"
    );
    u
}

/// Hardware gather for `f32`/`i32`/`u32` × 16 when AVX-512 is available.
///
/// Falls back to `None` (portable path) for other shapes. Bounds are checked
/// before issuing the hardware gather so safety never depends on the ISA.
#[inline]
fn native_gather<T: SimdElement, const N: usize>(
    base: &[T],
    idx: SimdVec<i32, N>,
) -> Option<SimdVec<T, N>> {
    if N != 16 || !native::available() {
        return None;
    }
    for &i in idx.as_array().iter() {
        let _ = checked_index(i, base.len());
    }
    let idx16: [i32; 16] = *idx.as_array().first_chunk::<16>()?;
    if TypeId::of::<T>() == TypeId::of::<f32>() {
        // SAFETY: T == f32 (checked via TypeId); indices validated above.
        let out = unsafe {
            native::gather_f32(
                std::slice::from_raw_parts(base.as_ptr().cast::<f32>(), base.len()),
                idx16,
            )
        };
        let lanes = unsafe { std::mem::transmute_copy::<[f32; 16], [T; N]>(&out) };
        return Some(SimdVec(lanes));
    }
    if TypeId::of::<T>() == TypeId::of::<i32>() || TypeId::of::<T>() == TypeId::of::<u32>() {
        // SAFETY: T is a 32-bit integer (checked via TypeId); indices validated.
        let out = unsafe {
            native::gather_i32(
                std::slice::from_raw_parts(base.as_ptr().cast::<i32>(), base.len()),
                idx16,
            )
        };
        let lanes = unsafe { std::mem::transmute_copy::<[i32; 16], [T; N]>(&out) };
        return Some(SimdVec(lanes));
    }
    None
}

macro_rules! impl_arith {
    ($t:ty, $wrap:ident) => {
        impl<const N: usize> Add for SimdVec<$t, N> {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| impl_arith!(@add $wrap, self.0[i], rhs.0[i])))
            }
        }
        impl<const N: usize> Sub for SimdVec<$t, N> {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| impl_arith!(@sub $wrap, self.0[i], rhs.0[i])))
            }
        }
        impl<const N: usize> Mul for SimdVec<$t, N> {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| impl_arith!(@mul $wrap, self.0[i], rhs.0[i])))
            }
        }
        impl<const N: usize> AddAssign for SimdVec<$t, N> {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                *self = *self + rhs;
            }
        }
        impl<const N: usize> SubAssign for SimdVec<$t, N> {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                *self = *self - rhs;
            }
        }
        impl<const N: usize> MulAssign for SimdVec<$t, N> {
            #[inline]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }
    };
    (@add wrapping, $a:expr, $b:expr) => { $a.wrapping_add($b) };
    (@sub wrapping, $a:expr, $b:expr) => { $a.wrapping_sub($b) };
    (@mul wrapping, $a:expr, $b:expr) => { $a.wrapping_mul($b) };
    (@add plain, $a:expr, $b:expr) => { $a + $b };
    (@sub plain, $a:expr, $b:expr) => { $a - $b };
    (@mul plain, $a:expr, $b:expr) => { $a * $b };
}

impl_arith!(i32, wrapping);
impl_arith!(u32, wrapping);
impl_arith!(f32, plain);
impl_arith!(i64, wrapping);
impl_arith!(u64, wrapping);
impl_arith!(f64, plain);

macro_rules! impl_float_div {
    ($t:ty) => {
        impl<const N: usize> Div for SimdVec<$t, N> {
            type Output = Self;
            /// Lane-wise division (`vdivps` / `vdivpd`).
            #[inline]
            fn div(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| self.0[i] / rhs.0[i]))
            }
        }

        impl<const N: usize> DivAssign for SimdVec<$t, N> {
            #[inline]
            fn div_assign(&mut self, rhs: Self) {
                *self = *self / rhs;
            }
        }
    };
}

impl_float_div!(f32);
impl_float_div!(f64);

macro_rules! impl_bitwise {
    ($t:ty, $u:ty) => {
        impl<const N: usize> std::ops::BitAnd for SimdVec<$t, N> {
            type Output = Self;
            /// Lane-wise AND (`vpandd` / `vpandq`).
            #[inline]
            fn bitand(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| self.0[i] & rhs.0[i]))
            }
        }
        impl<const N: usize> std::ops::BitOr for SimdVec<$t, N> {
            type Output = Self;
            /// Lane-wise OR (`vpord` / `vporq`).
            #[inline]
            fn bitor(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| self.0[i] | rhs.0[i]))
            }
        }
        impl<const N: usize> std::ops::BitXor for SimdVec<$t, N> {
            type Output = Self;
            /// Lane-wise XOR (`vpxord` / `vpxorq`).
            #[inline]
            fn bitxor(self, rhs: Self) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| self.0[i] ^ rhs.0[i]))
            }
        }
        impl<const N: usize> SimdVec<$t, N> {
            /// Lane-wise logical shift left by `count` bits (`vpslld`).
            /// Not the `Shl` operator impl: takes a bit count, not a
            /// lane-wise shift vector.
            #[inline]
            #[must_use]
            #[allow(clippy::should_implement_trait)]
            pub fn shl(self, count_bits: u32) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| self.0[i] << count_bits))
            }

            /// Lane-wise **logical** shift right by `count` bits
            /// (`vpsrld` — zero-filling, even for signed lanes).
            /// Not the `Shr` operator impl: takes a bit count, not a
            /// lane-wise shift vector.
            #[inline]
            #[must_use]
            #[allow(clippy::should_implement_trait)]
            pub fn shr(self, count_bits: u32) -> Self {
                count::bump(1);
                SimdVec(std::array::from_fn(|i| ((self.0[i] as $u) >> count_bits) as $t))
            }
        }
    };
}

impl_bitwise!(i32, u32);
impl_bitwise!(u32, u32);
impl_bitwise!(i64, u64);
impl_bitwise!(u64, u64);

impl<const N: usize> SimdVec<i32, N> {
    /// Reinterprets the lanes as `u32` (free — no instruction).
    #[inline]
    pub fn cast_u32(self) -> SimdVec<u32, N> {
        SimdVec(std::array::from_fn(|i| self.0[i] as u32))
    }
}

impl<const N: usize> SimdVec<u32, N> {
    /// Reinterprets the lanes as `i32` (free — no instruction).
    #[inline]
    pub fn cast_i32(self) -> SimdVec<i32, N> {
        SimdVec(std::array::from_fn(|i| self.0[i] as i32))
    }
}

impl<T: SimdElement, const N: usize> Default for SimdVec<T, N> {
    fn default() -> Self {
        SimdVec([T::default(); N])
    }
}

impl<T: SimdElement, const N: usize> fmt::Debug for SimdVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimdVec{:?}", &self.0[..])
    }
}

impl<T: SimdElement, const N: usize> From<[T; N]> for SimdVec<T, N> {
    fn from(lanes: [T; N]) -> Self {
        SimdVec(lanes)
    }
}

impl<T: SimdElement, const N: usize> From<SimdVec<T, N>> for [T; N] {
    fn from(v: SimdVec<T, N>) -> Self {
        v.0
    }
}

impl<const N: usize> SimdVec<i32, N> {
    /// The index vector `[0, 1, 2, ..., N-1]`, useful for strided loads.
    #[inline]
    pub fn iota() -> Self {
        SimdVec(std::array::from_fn(|i| i as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type F = SimdVec<f32, 16>;
    type I = SimdVec<i32, 16>;
    type M = Mask<16>;

    #[test]
    fn splat_and_extract() {
        let v = F::splat(3.5);
        for i in 0..16 {
            assert_eq!(v.extract(i), 3.5);
        }
    }

    #[test]
    fn load_store_round_trip() {
        let data: Vec<f32> = (0..20).map(|i| i as f32).collect();
        let v = F::load(&data);
        let mut out = vec![0.0f32; 16];
        v.store(&mut out);
        assert_eq!(&out[..], &data[..16]);
    }

    #[test]
    #[should_panic(expected = "shorter than vector width")]
    fn load_short_slice_panics() {
        let _ = F::load(&[1.0, 2.0]);
    }

    #[test]
    fn load_partial_fills_tail() {
        let (v, m) = F::load_partial(&[1.0, 2.0, 3.0], -1.0);
        assert_eq!(m, M::first_n(3));
        assert_eq!(v.extract(2), 3.0);
        assert_eq!(v.extract(3), -1.0);
        assert_eq!(v.extract(15), -1.0);
    }

    #[test]
    fn arithmetic_lane_wise() {
        let a = F::splat(6.0);
        let b = F::splat(2.0);
        assert_eq!((a + b).extract(0), 8.0);
        assert_eq!((a - b).extract(7), 4.0);
        assert_eq!((a * b).extract(15), 12.0);
        assert_eq!((a / b).extract(3), 3.0);
    }

    #[test]
    fn integer_arithmetic_wraps() {
        let a = I::splat(i32::MAX);
        let b = I::splat(1);
        assert_eq!((a + b).extract(0), i32::MIN);
    }

    #[test]
    fn min_max() {
        let a = I::from_array(std::array::from_fn(|i| i as i32));
        let b = I::splat(8);
        assert_eq!(a.min(b).extract(12), 8);
        assert_eq!(a.min(b).extract(3), 3);
        assert_eq!(a.max(b).extract(12), 12);
    }

    #[test]
    fn compares_produce_masks() {
        let a = I::from_array(std::array::from_fn(|i| i as i32));
        let m = a.simd_lt(I::splat(4));
        assert_eq!(m, M::first_n(4));
        assert_eq!(a.simd_ge(I::splat(4)), !M::first_n(4));
        assert_eq!(a.eq_broadcast(5), M::none().with(5, true));
        assert_eq!(a.simd_le(I::splat(0)), M::first_n(1));
        assert_eq!(a.simd_gt(I::splat(14)), M::none().with(15, true));
        assert_eq!(a.simd_ne(a), M::none());
    }

    #[test]
    fn blend_selects_by_mask() {
        let a = F::splat(1.0);
        let b = F::splat(2.0);
        let v = a.blend(M::from_bits(0b1), b);
        assert_eq!(v.extract(0), 1.0);
        assert_eq!(v.extract(1), 2.0);
    }

    #[test]
    fn gather_reads_indexed_elements() {
        let base: Vec<f32> = (0..100).map(|i| i as f32 * 10.0).collect();
        let idx = I::from_array(std::array::from_fn(|i| (i * 3) as i32));
        let v = F::gather(&base, idx);
        for i in 0..16 {
            assert_eq!(v.extract(i), (i * 3) as f32 * 10.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_out_of_range_index() {
        let base = vec![0.0f32; 4];
        let _ = F::gather(&base, I::splat(4));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_rejects_negative_index() {
        let base = vec![0.0f32; 4];
        let _ = F::gather(&base, I::splat(-1));
    }

    #[test]
    fn mask_gather_preserves_unselected_lanes() {
        let base = vec![9.0f32; 8];
        let v = F::splat(1.0).mask_gather(M::from_bits(0b10), &base, I::splat(0));
        assert_eq!(v.extract(0), 1.0);
        assert_eq!(v.extract(1), 9.0);
    }

    #[test]
    fn mask_gather_ignores_bad_index_on_unselected_lane() {
        let base = vec![9.0f32; 8];
        // Lane 1's index is out of range but lane 1 is not selected.
        let idx = I::from_array(std::array::from_fn(|i| if i == 1 { 100 } else { 0 }));
        let v = F::splat(1.0).mask_gather(M::from_bits(0b1), &base, idx);
        assert_eq!(v.extract(0), 9.0);
        assert_eq!(v.extract(1), 1.0);
    }

    #[test]
    fn scatter_highest_lane_wins_on_duplicates() {
        let mut base = vec![0i32; 8];
        let vals = I::from_array(std::array::from_fn(|i| i as i32));
        let idx = I::splat(5);
        vals.scatter(&mut base, idx);
        assert_eq!(base[5], 15);
    }

    #[test]
    fn mask_scatter_writes_only_selected() {
        let mut base = vec![0i32; 8];
        let vals = I::splat(7);
        let idx = I::from_array(std::array::from_fn(|i| (i % 8) as i32));
        vals.mask_scatter(M::from_bits(0b101), &mut base, idx);
        assert_eq!(base, vec![7, 0, 7, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn compress_packs_low() {
        let v = I::from_array(std::array::from_fn(|i| i as i32));
        let c = v.compress(M::from_bits(0b1000_0000_0001_0010));
        assert_eq!(c.extract(0), 1);
        assert_eq!(c.extract(1), 4);
        assert_eq!(c.extract(2), 15);
        assert_eq!(c.extract(3), 0);
    }

    #[test]
    fn expand_is_compress_inverse_on_selected_lanes() {
        let mask = M::from_bits(0b0110_0000_0011_0100);
        let v = I::from_array(std::array::from_fn(|i| (i * 7 + 1) as i32));
        let round = v.compress(mask).expand(mask, I::splat(-1));
        for i in 0..16 {
            if mask.test(i) {
                assert_eq!(round.extract(i), v.extract(i));
            } else {
                assert_eq!(round.extract(i), -1);
            }
        }
    }

    #[test]
    fn reduce_respects_mask_and_identity() {
        let v = F::from_array(std::array::from_fn(|i| i as f32));
        let sum = v.reduce(M::from_bits(0b1011), 0.0, |a, b| a + b);
        assert_eq!(sum, 0.0 + 1.0 + 3.0);
        let min = v.reduce(M::none(), f32::INFINITY, |a, b| a.min(b));
        assert_eq!(min, f32::INFINITY);
    }

    #[test]
    fn iota_counts_up() {
        let v = I::iota();
        assert_eq!(v.extract(0), 0);
        assert_eq!(v.extract(15), 15);
    }

    #[test]
    fn conversion_round_trip() {
        let arr: [i32; 16] = std::array::from_fn(|i| i as i32);
        let v: I = arr.into();
        let back: [i32; 16] = v.into();
        assert_eq!(arr, back);
    }

    #[cfg(feature = "count")]
    #[test]
    fn instruction_counting_charges_ops() {
        count::reset();
        let a = F::splat(1.0); // 1
        let b = F::splat(2.0); // 1
        let _ = a + b; // 1
        assert_eq!(count::read(), 3);
    }

    #[test]
    fn f64_eight_lane_vectors_work_end_to_end() {
        // The 64-bit side of the ISA: 8 lanes of f64 gathered through i32
        // indices (`vgatherdpd`), reduced, scattered.
        type F64 = SimdVec<f64, 8>;
        type I8v = SimdVec<i32, 8>;
        let base: Vec<f64> = (0..32).map(|i| i as f64 * 0.25).collect();
        let idx = I8v::from_array(std::array::from_fn(|i| (i * 3) as i32));
        let v = F64::gather(&base, idx);
        assert_eq!(v.extract(4), 3.0);
        let sum = v.reduce(Mask::<8>::all(), 0.0, |a, b| a + b);
        assert_eq!(sum, (0..8).map(|i| (i * 3) as f64 * 0.25).sum::<f64>());
        let mut out = vec![0.0f64; 32];
        (v + F64::splat(1.0)).mask_scatter(Mask::<8>::from_bits(0b11), &mut out, idx);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[3], 1.75);
        assert_eq!(out[6], 0.0);
    }

    #[test]
    fn i64_arithmetic_wraps() {
        type I64 = SimdVec<i64, 8>;
        let v = I64::splat(i64::MAX) + I64::splat(1);
        assert_eq!(v.extract(0), i64::MIN);
        assert_eq!((I64::splat(10) * I64::splat(-3)).extract(7), -30);
    }

    #[test]
    fn f64_division() {
        type F64 = SimdVec<f64, 8>;
        assert_eq!((F64::splat(1.0) / F64::splat(4.0)).extract(2), 0.25);
    }

    #[test]
    fn bitwise_ops_are_lane_wise() {
        let a = I::splat(0b1100);
        let b = I::splat(0b1010);
        assert_eq!((a & b).extract(0), 0b1000);
        assert_eq!((a | b).extract(5), 0b1110);
        assert_eq!((a ^ b).extract(15), 0b0110);
    }

    #[test]
    fn shifts_match_scalar_semantics() {
        let v = I::splat(-8);
        // Logical right shift zero-fills even for negative lanes.
        assert_eq!(v.shr(1).extract(0), ((-8i32 as u32) >> 1) as i32);
        assert_eq!(I::splat(3).shl(4).extract(0), 48);
        type U = SimdVec<u32, 16>;
        assert_eq!(U::splat(0x8000_0000).shr(31).extract(0), 1);
    }

    #[test]
    fn casts_reinterpret_bits() {
        let v = I::splat(-1);
        assert_eq!(v.cast_u32().extract(0), u32::MAX);
        assert_eq!(v.cast_u32().cast_i32(), v);
    }

    #[test]
    fn compress_store_writes_contiguous_prefix() {
        let v = I::iota();
        let mut out = [0i32; 16];
        let n = v.compress_store(Mask::from_bits(0xF0), &mut out);
        assert_eq!(n, 4);
        assert_eq!(&out[..4], &[4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "compress_store needs")]
    fn compress_store_rejects_short_output() {
        let mut out = [0i32; 2];
        let _ = I::iota().compress_store(Mask::from_bits(0b111), &mut out);
    }
}
