//! The sealed trait implemented by types that can occupy SIMD lanes.

use std::fmt::Debug;

mod private {
    pub trait Sealed {}
    impl Sealed for i32 {}
    impl Sealed for u32 {}
    impl Sealed for f32 {}
    impl Sealed for i64 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
}

/// A scalar type that can be an element of a [`SimdVec`](crate::SimdVec).
///
/// This trait is sealed: the AVX-512 model covers 32-bit lanes (`i32`,
/// `u32`, `f32` — the element types the CGO'18 evaluation uses, sixteen per
/// vector) and 64-bit lanes (`i64`, `u64`, `f64` — eight per vector, the
/// `vpconflictq`/`vgatherdpd` side of the ISA); it cannot be implemented
/// outside the crate.
pub trait SimdElement:
    Copy + Default + PartialEq + PartialOrd + Debug + Send + Sync + private::Sealed + 'static
{
    /// Lane-wise minimum; uses IEEE semantics of `f32::min` for floats.
    fn lane_min(self, other: Self) -> Self;
    /// Lane-wise maximum; uses IEEE semantics of `f32::max` for floats.
    fn lane_max(self, other: Self) -> Self;
}

impl SimdElement for i32 {
    #[inline(always)]
    fn lane_min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn lane_max(self, other: Self) -> Self {
        self.max(other)
    }
}

impl SimdElement for u32 {
    #[inline(always)]
    fn lane_min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn lane_max(self, other: Self) -> Self {
        self.max(other)
    }
}

impl SimdElement for f32 {
    #[inline(always)]
    fn lane_min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn lane_max(self, other: Self) -> Self {
        self.max(other)
    }
}

impl SimdElement for i64 {
    #[inline(always)]
    fn lane_min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn lane_max(self, other: Self) -> Self {
        self.max(other)
    }
}

impl SimdElement for u64 {
    #[inline(always)]
    fn lane_min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn lane_max(self, other: Self) -> Self {
        self.max(other)
    }
}

impl SimdElement for f64 {
    #[inline(always)]
    fn lane_min(self, other: Self) -> Self {
        self.min(other)
    }
    #[inline(always)]
    fn lane_max(self, other: Self) -> Self {
        self.max(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_min_max() {
        assert_eq!(3i32.lane_min(-4), -4);
        assert_eq!(3u32.lane_max(4), 4);
    }

    #[test]
    fn float_min_max_ignores_nan_like_vminps() {
        // f32::min/max return the non-NaN operand, matching the behaviour we
        // rely on when seeding reductions with identity values.
        assert_eq!(f32::NAN.lane_min(2.0), 2.0);
        assert_eq!(2.0f32.lane_max(f32::NAN), 2.0);
    }
}
