//! Property tests pinning the AVX-512 model's semantics against scalar
//! reference implementations.

use proptest::prelude::*;

use invector_simd::{conflict_detect, F32x16, I32x16, Mask16, SimdVec};

fn any_mask() -> impl Strategy<Value = Mask16> {
    (0u32..=0xFFFF).prop_map(Mask16::from_bits)
}

proptest! {
    #[test]
    fn gather_reads_what_scalar_indexing_reads(
        base in prop::collection::vec(-100.0f32..100.0, 1..64),
        seed in any::<u64>(),
    ) {
        let n = base.len() as i32;
        let idx: [i32; 16] = std::array::from_fn(|i| {
            ((seed.wrapping_mul(i as u64 + 1).wrapping_mul(2654435761)) % n as u64) as i32
        });
        let v = F32x16::gather(&base, I32x16::from_array(idx));
        for lane in 0..16 {
            prop_assert_eq!(v.extract(lane), base[idx[lane] as usize]);
        }
    }

    #[test]
    fn scatter_last_writer_wins(
        idx in prop::array::uniform16(0..8i32),
        vals in prop::array::uniform16(-100..100i32),
    ) {
        let mut base = [0i32; 8];
        SimdVec::from_array(vals).scatter(&mut base, I32x16::from_array(idx));
        // Scalar model: ascending lane order, later lanes overwrite.
        let mut expect = [0i32; 8];
        for lane in 0..16 {
            expect[idx[lane] as usize] = vals[lane];
        }
        prop_assert_eq!(base, expect);
    }

    #[test]
    fn mask_scatter_touches_only_selected_slots(
        idx in prop::array::uniform16(0..8i32),
        mask in any_mask(),
    ) {
        let mut base = [-1i32; 8];
        SimdVec::splat(7).mask_scatter(mask, &mut base, I32x16::from_array(idx));
        let touched: std::collections::HashSet<i32> =
            mask.iter_set().map(|lane| idx[lane]).collect();
        for (slot, &v) in base.iter().enumerate() {
            if touched.contains(&(slot as i32)) {
                prop_assert_eq!(v, 7);
            } else {
                prop_assert_eq!(v, -1);
            }
        }
    }

    #[test]
    fn compress_then_expand_restores_selected_lanes(
        vals in prop::array::uniform16(-1000..1000i32),
        mask in any_mask(),
    ) {
        let v = SimdVec::from_array(vals);
        let round = v.compress(mask).expand(mask, SimdVec::splat(0));
        for (lane, &val) in vals.iter().enumerate() {
            let expect = if mask.test(lane) { val } else { 0 };
            prop_assert_eq!(round.extract(lane), expect);
        }
    }

    #[test]
    fn compress_store_equals_scalar_filter(
        vals in prop::array::uniform16(-1000..1000i32),
        mask in any_mask(),
    ) {
        let mut out = [0i32; 16];
        let n = SimdVec::from_array(vals).compress_store(mask, &mut out);
        let expect: Vec<i32> = mask.iter_set().map(|lane| vals[lane]).collect();
        prop_assert_eq!(&out[..n], &expect[..]);
    }

    #[test]
    fn conflict_detect_is_permutation_sensitive_but_value_consistent(
        idx in prop::array::uniform16(0..6i32),
    ) {
        // Total number of conflict bits equals sum over values of C(k, 2)
        // where k is the value's multiplicity — independent of lane order.
        let c = conflict_detect(I32x16::from_array(idx));
        let total_bits: u32 = c.to_array().iter().map(|b| b.count_ones()).sum();
        let mut counts = std::collections::HashMap::new();
        for &v in &idx {
            *counts.entry(v).or_insert(0u32) += 1;
        }
        let expect: u32 = counts.values().map(|&k| k * (k - 1) / 2).sum();
        prop_assert_eq!(total_bits, expect);
    }

    #[test]
    fn mask_ops_agree_with_u32_bit_ops(a in 0u32..=0xFFFF, b in 0u32..=0xFFFF) {
        let (ma, mb) = (Mask16::from_bits(a), Mask16::from_bits(b));
        prop_assert_eq!((ma & mb).bits(), a & b);
        prop_assert_eq!((ma | mb).bits(), a | b);
        prop_assert_eq!((ma ^ mb).bits(), a ^ b);
        prop_assert_eq!((!ma).bits(), !a & 0xFFFF);
        prop_assert_eq!(ma.and_not(mb).bits(), a & !b);
        prop_assert_eq!(ma.count_ones(), a.count_ones());
        prop_assert_eq!(ma.lowest_set().bits(), a & a.wrapping_neg());
    }

    #[test]
    fn blend_merges_by_mask(
        a in prop::array::uniform16(-100..100i32),
        b in prop::array::uniform16(-100..100i32),
        mask in any_mask(),
    ) {
        let v = SimdVec::from_array(a).blend(mask, SimdVec::from_array(b));
        for lane in 0..16 {
            prop_assert_eq!(v.extract(lane), if mask.test(lane) { a[lane] } else { b[lane] });
        }
    }

    #[test]
    fn reduce_is_order_insensitive_for_integers(
        vals in prop::array::uniform16(-100..100i32),
        mask in any_mask(),
    ) {
        let v = SimdVec::from_array(vals);
        let sum = v.reduce(mask, 0, |x, y| x.wrapping_add(y));
        let expect: i32 = mask.iter_set().map(|lane| vals[lane]).sum();
        prop_assert_eq!(sum, expect);
    }

    #[test]
    fn load_partial_mask_matches_available_data(
        data in prop::collection::vec(-50..50i32, 0..40),
    ) {
        let (v, m) = SimdVec::<i32, 16>::load_partial(&data, -99);
        prop_assert_eq!(m.count_ones() as usize, data.len().min(16));
        for lane in 0..16 {
            if lane < data.len().min(16) {
                prop_assert!(m.test(lane));
                prop_assert_eq!(v.extract(lane), data[lane]);
            } else {
                prop_assert!(!m.test(lane));
                prop_assert_eq!(v.extract(lane), -99);
            }
        }
    }
}
