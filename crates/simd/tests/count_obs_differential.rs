//! Differential check between the two instruction-count views: the
//! caller's thread-local `count::read` delta and the cross-thread
//! `count::global_total` — which the metric registry scrapes through the
//! `invector_simd_instructions_total` collector — must agree on same-thread
//! work, sum across spawned threads, and diverge by exactly the re-charged
//! amount for engine-attributed work.
//!
//! This is the sole test in the file on purpose: the global total spans
//! every thread in the process, so nothing else may run concurrently for
//! its deltas to be attributable.

#![cfg(all(feature = "count", feature = "obs"))]

use invector_simd::{count, F32x16};

fn burn(rounds: usize) -> u64 {
    count::with(|| {
        let mut v = F32x16::splat(1.0);
        for _ in 0..rounds {
            v += F32x16::splat(0.5);
        }
        v
    })
    .1
}

#[test]
fn thread_view_and_global_total_tell_one_story() {
    // Same-thread work: the caller's delta IS the global delta.
    count::reset();
    let before_global = count::global_total();
    let local_delta = burn(100);
    assert!(local_delta > 0, "vector ops must charge instructions");
    assert_eq!(
        count::global_total().wrapping_sub(before_global),
        local_delta,
        "same-thread work must move both views identically"
    );

    // Spawned-thread work: invisible to this thread's view, but the global
    // total absorbs every worker's delta.
    let before_global = count::global_total();
    let before_local = count::read();
    let spawned: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4).map(|_| s.spawn(|| burn(50))).collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    assert!(spawned > 0);
    assert_eq!(count::read(), before_local, "other threads' work must not leak into this view");
    assert_eq!(
        count::global_total().wrapping_sub(before_global),
        spawned,
        "the global total must absorb exactly the workers' deltas"
    );

    // The registry's collector scrapes the same number.
    let text = invector_obs::prometheus(invector_obs::Registry::global());
    let line = text
        .lines()
        .find(|l| l.starts_with("invector_simd_instructions_total "))
        .expect("the instruction collector must be registered");
    let scraped: u64 = line.rsplit(' ').next().unwrap().parse().expect("sample value");
    assert_eq!(scraped, count::global_total(), "scrape and direct read must agree");

    // Re-charged work (the engine re-attributing worker instructions to
    // the caller) counts for the caller's view but not the global total.
    let before_global = count::global_total();
    let before_local = count::read();
    count::bump_recharged(64);
    assert_eq!(count::read().wrapping_sub(before_local), 64);
    assert_eq!(
        count::global_total(),
        before_global,
        "re-charges must cancel out of the global total"
    );
}
