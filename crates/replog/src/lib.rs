//! `invector-replog`: an append-only, checksummed record log plus a
//! snapshot store — the durability substrate of the serving layer.
//!
//! The crate is deliberately transport- and schema-agnostic: records are
//! opaque byte payloads. `invector-serve` owns the payload encodings (it
//! reuses its wire-protocol codecs), this crate owns the on-disk framing,
//! corruption detection, torn-tail repair, and checkpoint atomicity.
//!
//! # On-disk formats
//!
//! Both the log and every checkpoint file are sequences of CRC-framed
//! records (all integers little-endian):
//!
//! ```text
//! record := len:u32 crc:u32 payload        crc = crc32(payload)
//! ```
//!
//! The log (`wal.log`) is append-only; a crash can leave a torn final
//! record, so [`recover`] accepts the longest valid prefix and truncates
//! the file at the first bad length or CRC. Checkpoint files
//! (`checkpoint-<id>.snap`) and the manifest (`MANIFEST`) are written to a
//! temporary name, fsynced, then renamed, so they are either absent or
//! complete — any framing error inside them is a hard error, never a
//! silent truncation.

#![warn(missing_docs)]

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Framing overhead per record (`len:u32 crc:u32`).
pub const RECORD_HEADER_LEN: usize = 8;

/// Upper bound on one record payload. Protects [`recover`] from a corrupt
/// length prefix asking for a multi-gigabyte allocation; a length beyond
/// this is treated as a torn tail, exactly like a bad CRC.
pub const MAX_RECORD_LEN: usize = 256 << 20;

// --- CRC-32 (IEEE 802.3, reflected) ----------------------------------------

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // Slicing tables: tables[n][b] is the CRC contribution of byte `b`
    // positioned n bytes deeper in the stream, letting `update` fold eight
    // input bytes per iteration instead of one.
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[n - 1][i];
            tables[n][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        n += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// Streaming CRC-32 (IEEE polynomial, the zlib/`cksum -o 3` variant) —
/// table-driven and dependency-free. Used both for record framing and by
/// the serve layer for table/snapshot checksums, so one implementation
/// defines "checksum" across the durability subsystem.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    ///
    /// Uses slicing-by-8: each iteration folds eight bytes through eight
    /// precomputed tables, which matters because the serve layer checksums
    /// whole tables (megabytes) on the epoch tick path.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ c;
            let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
            c = CRC32_TABLES[7][(lo & 0xFF) as usize]
                ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC32_TABLES[4][(lo >> 24) as usize]
                ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
                ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC32_TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            c = CRC32_TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// CRC-32 of one contiguous buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// --- fsync policy -----------------------------------------------------------

/// When the log writer forces appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every appended record: an admitted batch survives any
    /// crash, at per-record syscall cost.
    Always,
    /// `fsync` once per epoch (the serve layer calls [`Wal::sync`] at the
    /// end of each tick that appended): a crash can lose at most the
    /// in-flight epoch, which recovery treats as a torn tail.
    #[default]
    Epoch,
    /// Never `fsync`; leave flushing to the OS page cache. Fastest, and
    /// still crash-consistent (the CRC framing truncates whatever the OS
    /// had not written), but the durable prefix lags arbitrarily.
    Os,
}

impl SyncPolicy {
    /// The policy's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Epoch => "epoch",
            SyncPolicy::Os => "os",
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "epoch" => Ok(SyncPolicy::Epoch),
            "os" => Ok(SyncPolicy::Os),
            other => Err(format!("unknown sync policy '{other}' (always | epoch | os)")),
        }
    }
}

// --- record framing ---------------------------------------------------------

/// Appends one framed record to `out`.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Walks framed records in `bytes`, pushing each valid payload. Returns
/// the byte offset of the first invalid record (== `bytes.len()` when the
/// whole buffer parsed) plus the reason parsing stopped early.
fn walk_records(bytes: &[u8], records: &mut Vec<Vec<u8>>) -> (usize, Option<String>) {
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + RECORD_HEADER_LEN) else {
            return (pos, Some(format!("partial {}-byte header", bytes.len() - pos)));
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_LEN {
            return (pos, Some(format!("record length {len} exceeds {MAX_RECORD_LEN}")));
        }
        let start = pos + RECORD_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len) else {
            return (pos, Some(format!("partial record: wanted {len} payload bytes")));
        };
        if crc32(payload) != crc {
            return (pos, Some("crc mismatch".into()));
        }
        records.push(payload.to_vec());
        pos = start + len;
    }
    (pos, None)
}

// --- the log ----------------------------------------------------------------

/// Outcome of [`recover`]: the valid record prefix of a log file.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every intact record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (what the file was truncated to
    /// when a torn tail was found).
    pub valid_bytes: u64,
    /// Why parsing stopped before end-of-file, if it did. A torn tail is
    /// expected after a crash (an append raced the kill) and is repaired,
    /// not fatal.
    pub torn: Option<String>,
}

/// Reads a log file, accepting the longest valid record prefix.
///
/// A missing file recovers as empty. On a torn or corrupt tail (partial
/// header, oversized length, short payload, CRC mismatch) the file is
/// truncated to the valid prefix so a subsequent [`Wal::open`] appends
/// from a clean boundary.
///
/// # Errors
///
/// Propagates I/O failures (not corruption — corruption truncates).
pub fn recover(path: &Path) -> std::io::Result<Recovered> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Recovered::default()),
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let (valid, torn) = walk_records(&bytes, &mut records);
    if torn.is_some() {
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(valid as u64)?;
        f.sync_all()?;
    }
    Ok(Recovered { records, valid_bytes: valid as u64, torn })
}

/// The append-only log writer.
///
/// One record per [`append`](Wal::append); durability timing is the
/// caller's via [`sync`](Wal::sync) (see [`SyncPolicy`]). The writer
/// assumes the file ends at a record boundary — run [`recover`] first
/// after a crash.
#[derive(Debug)]
pub struct Wal {
    file: File,
    buf: Vec<u8>,
    bytes: u64,
    records: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates open/seek failures.
    pub fn open(path: &Path) -> std::io::Result<Wal> {
        let mut file = OpenOptions::new().create(true).append(true).open(path)?;
        let bytes = file.seek(SeekFrom::End(0))?;
        Ok(Wal { file, buf: Vec::new(), bytes, records: 0 })
    }

    /// Appends one framed record and writes it through to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write failures; on error the on-disk tail may be torn,
    /// which a later [`recover`] repairs.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        self.buf.clear();
        frame_into(&mut self.buf, payload);
        self.file.write_all(&self.buf)?;
        self.bytes += self.buf.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Forces everything appended so far to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates `fsync` failures.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }

    /// Truncates the log to empty (the checkpoint path: the snapshot now
    /// covers every logged record) and syncs the truncation.
    ///
    /// # Errors
    ///
    /// Propagates truncate/`fsync` failures.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.bytes = 0;
        Ok(())
    }

    /// Current log size in bytes (framing included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended through this writer (not counting pre-existing
    /// records recovered from disk).
    pub fn records_appended(&self) -> u64 {
        self.records
    }
}

// --- the snapshot store -----------------------------------------------------

/// Checkpoint files plus the manifest, under one directory.
///
/// The store holds at most one *current* checkpoint: `write_checkpoint`
/// publishes atomically (temp + fsync + rename, manifest last), then
/// best-effort deletes older checkpoint files. The manifest payload is
/// caller-defined; by convention it names the checkpoint id and the
/// per-table checksums recovery verifies against.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if absent) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<SnapshotStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The conventional log path next to the checkpoints.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join("MANIFEST")
    }

    fn checkpoint_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("checkpoint-{id}.snap"))
    }

    /// Reads the manifest payload, or `None` when no checkpoint has ever
    /// been published.
    ///
    /// # Errors
    ///
    /// A present-but-corrupt manifest is an error (`InvalidData`), never a
    /// silent "no checkpoint": the manifest is written atomically, so
    /// corruption means the store cannot be trusted.
    pub fn manifest(&self) -> std::io::Result<Option<Vec<u8>>> {
        match self.read_strict(&self.manifest_path()) {
            Ok(mut records) if records.len() == 1 => Ok(Some(records.pop().expect("one record"))),
            Ok(records) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("manifest holds {} records, expected exactly 1", records.len()),
            )),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Reads every record of checkpoint `id`.
    ///
    /// # Errors
    ///
    /// `NotFound` for an unpublished id; `InvalidData` for framing or CRC
    /// damage (checkpoints are atomic — damage is fatal, not truncatable).
    pub fn read_checkpoint(&self, id: u64) -> std::io::Result<Vec<Vec<u8>>> {
        self.read_strict(&self.checkpoint_path(id))
    }

    fn read_strict(&self, path: &Path) -> std::io::Result<Vec<Vec<u8>>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let (_, torn) = walk_records(&bytes, &mut records);
        if let Some(reason) = torn {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {reason}", path.display()),
            ));
        }
        Ok(records)
    }

    /// Publishes checkpoint `id` atomically: the checkpoint file first
    /// (temp + fsync + rename), then the manifest the same way, then a
    /// best-effort sweep of older checkpoint files. A crash between the
    /// two renames leaves the previous manifest pointing at the previous
    /// (still present) checkpoint — never a manifest naming a missing or
    /// partial file.
    ///
    /// # Errors
    ///
    /// Propagates write/rename/`fsync` failures.
    pub fn write_checkpoint<'a>(
        &self,
        id: u64,
        records: impl IntoIterator<Item = &'a [u8]>,
        manifest: &[u8],
    ) -> std::io::Result<()> {
        let mut body = Vec::new();
        for r in records {
            frame_into(&mut body, r);
        }
        self.publish(&self.checkpoint_path(id), &body)?;
        let mut framed = Vec::with_capacity(manifest.len() + RECORD_HEADER_LEN);
        frame_into(&mut framed, manifest);
        self.publish(&self.manifest_path(), &framed)?;
        // Older checkpoints are garbage now; failure to unlink only wastes
        // disk, so ignore errors.
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if let Some(stale) = name
                    .strip_prefix("checkpoint-")
                    .and_then(|s| s.strip_suffix(".snap").and_then(|s| s.parse::<u64>().ok()))
                {
                    if stale != id {
                        let _ = std::fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(())
    }

    /// Temp-write, fsync, rename — the all-or-nothing publish step.
    fn publish(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself where the platform allows directory
        // fsync; not supported everywhere, so best effort.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("invector-replog-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        let mut streaming = Crc32::new();
        streaming.update(b"1234");
        streaming.update(b"56789");
        assert_eq!(streaming.finish(), 0xCBF4_3926);
    }

    #[test]
    fn sync_policy_parses_and_displays() {
        assert_eq!("always".parse::<SyncPolicy>().unwrap(), SyncPolicy::Always);
        assert_eq!("epoch".parse::<SyncPolicy>().unwrap(), SyncPolicy::Epoch);
        assert_eq!("os".parse::<SyncPolicy>().unwrap(), SyncPolicy::Os);
        assert!("everysooften".parse::<SyncPolicy>().is_err());
        assert_eq!(SyncPolicy::Epoch.to_string(), "epoch");
    }

    #[test]
    fn log_round_trips_records_in_order() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("wal.log");
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1, 2, 3], vec![0xFF; 100]];
        {
            let mut wal = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
            assert_eq!(wal.records_appended(), 3);
        }
        let rec = recover(&path).unwrap();
        assert_eq!(rec.records, payloads);
        assert!(rec.torn.is_none());
        // Reopening appends after the existing records.
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"tail").unwrap();
        drop(wal);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[3], b"tail");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_log_recovers_empty() {
        let dir = temp_dir("missing");
        let rec = recover(&dir.join("nope.log")).unwrap();
        assert!(rec.records.is_empty());
        assert!(rec.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_truncates_for_the_next_checkpoint_interval() {
        let dir = temp_dir("reset");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(b"before").unwrap();
        wal.reset().unwrap();
        wal.append(b"after").unwrap();
        drop(wal);
        let rec = recover(&path).unwrap();
        assert_eq!(rec.records, vec![b"after".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_length_prefix_is_a_torn_tail_not_an_allocation() {
        let dir = temp_dir("oversize");
        let path = dir.join("wal.log");
        let mut bytes = Vec::new();
        frame_into(&mut bytes, b"good");
        let valid = bytes.len();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let rec = recover(&path).unwrap();
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert_eq!(rec.valid_bytes, valid as u64);
        assert!(rec.torn.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_store_publishes_and_reads_back() {
        let dir = temp_dir("store");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.manifest().unwrap().is_none(), "fresh store has no manifest");
        store
            .write_checkpoint(1, [b"table0".as_slice(), b"table1".as_slice()], b"manifest-1")
            .unwrap();
        assert_eq!(store.manifest().unwrap().unwrap(), b"manifest-1");
        assert_eq!(store.read_checkpoint(1).unwrap(), vec![b"table0".to_vec(), b"table1".to_vec()]);
        // Publishing checkpoint 2 supersedes and sweeps checkpoint 1.
        store.write_checkpoint(2, [b"t0v2".as_slice()], b"manifest-2").unwrap();
        assert_eq!(store.manifest().unwrap().unwrap(), b"manifest-2");
        assert!(store.read_checkpoint(1).is_err(), "old checkpoint swept");
        assert_eq!(store.read_checkpoint(2).unwrap(), vec![b"t0v2".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_a_fresh_start() {
        let dir = temp_dir("badmanifest");
        let store = SnapshotStore::open(&dir).unwrap();
        store.write_checkpoint(1, [b"x".as_slice()], b"m").unwrap();
        // Flip one byte of the manifest payload on disk.
        let path = dir.join("MANIFEST");
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.manifest().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn any_tail_damage_truncates_to_the_longest_valid_prefix(
            payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..12),
            cut_frac in 0.0f64..1.0,
            flip in any::<bool>(),
        ) {
            let dir = temp_dir("torn");
            let path = dir.join("wal.log");
            let mut bytes = Vec::new();
            let mut boundaries = vec![0usize];
            for p in &payloads {
                frame_into(&mut bytes, p);
                boundaries.push(bytes.len());
            }
            // Damage point anywhere in the file (cut or bit-flip past it).
            let at = ((bytes.len() as f64) * cut_frac) as usize;
            if flip && at < bytes.len() {
                bytes[at] ^= 0x40;
            } else {
                bytes.truncate(at);
            }
            std::fs::write(&path, &bytes).unwrap();

            let rec = recover(&path).unwrap();
            // The recovered prefix is exactly the records wholly before the
            // damage point.
            let intact = boundaries.iter().filter(|&&b| b <= at).count() - 1;
            prop_assert!(rec.records.len() >= intact.min(payloads.len()));
            for (got, want) in rec.records.iter().zip(payloads.iter()) {
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(rec.valid_bytes as usize, boundaries[rec.records.len()]);
            // Idempotent: recovering the repaired file finds no damage and
            // the same records.
            let again = recover(&path).unwrap();
            prop_assert!(again.torn.is_none());
            prop_assert_eq!(again.records.len(), rec.records.len());
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
