//! Conflict-free grouping (the inspector/executor "grouping" phase).
//!
//! Grouping reorders edges so that every aligned window of 16 consecutive
//! edges has **distinct destinations** — after which the window can be
//! processed as straight-line SIMD with an unconditional scatter, no
//! conflict handling at all. This is the `tiling_and_grouping` approach of
//! Chen et al. that the paper compares against: its compute phase is the
//! fastest of all variants, but the grouping itself is a heavyweight
//! preprocessing step whose cost the paper shows can dwarf the computation.
//!
//! Windows that cannot be filled (not enough distinct keys remain) are
//! padded; the per-window validity masks say which lanes are real.

use std::time::{Duration, Instant};

/// A grouped (conflict-free) edge ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grouping {
    /// Edge positions, padded to a multiple of [`WINDOW`]; padding slots
    /// hold `u32::MAX`.
    pub slots: Vec<u32>,
    /// One validity bitmask per 16-edge window.
    pub window_masks: Vec<u16>,
    /// Wall time spent computing the grouping.
    pub elapsed: Duration,
}

/// The SIMD window width the grouping guarantees distinctness within.
pub const WINDOW: usize = 16;

impl Grouping {
    /// Number of 16-edge windows.
    pub fn num_windows(&self) -> usize {
        self.window_masks.len()
    }

    /// Total slots including padding.
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Fraction of slots holding real edges (grouping efficiency).
    pub fn occupancy(&self) -> f64 {
        if self.slots.is_empty() {
            return 1.0;
        }
        let real: u32 = self.window_masks.iter().map(|m| m.count_ones()).sum();
        real as f64 / self.slots.len() as f64
    }

    /// The window at index `w`: 16 slots and its validity mask.
    ///
    /// # Panics
    ///
    /// Panics if `w >= num_windows()`.
    pub fn window(&self, w: usize) -> (&[u32], u16) {
        (&self.slots[w * WINDOW..(w + 1) * WINDOW], self.window_masks[w])
    }
}

/// Groups the edges `positions` (indices into the `keys` array) so that each
/// 16-slot window has distinct `keys[position]` values.
///
/// Uses run-splitting round-robin: positions are bucketed by key, then
/// rounds pull one edge per distinct remaining key, each round padded to a
/// window boundary. Within a round all keys are distinct by construction,
/// so every aligned window is conflict-free.
///
/// # Panics
///
/// Panics if a position is out of bounds for `keys`.
///
/// # Example
///
/// ```
/// use invector_graph::group::group_by_key;
///
/// let keys = [5, 5, 5, 7];
/// let g = group_by_key(&(0..4u32).collect::<Vec<_>>(), &keys);
/// // Key 5 appears three times -> three windows needed.
/// assert_eq!(g.num_windows(), 3);
/// assert!(g.occupancy() < 0.1);
/// ```
pub fn group_by_key(positions: &[u32], keys: &[i32]) -> Grouping {
    let start = Instant::now();
    // Bucket positions by key using sort (keys may be sparse).
    let mut order: Vec<u32> = positions.to_vec();
    order.sort_by_key(|&p| keys[p as usize]);
    // Runs of equal keys.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, len) into `order`
    let mut i = 0;
    while i < order.len() {
        let k = keys[order[i] as usize];
        let mut j = i + 1;
        while j < order.len() && keys[order[j] as usize] == k {
            j += 1;
        }
        runs.push((i, j - i));
        i = j;
    }
    let mut slots = Vec::with_capacity(order.len().next_multiple_of(WINDOW));
    let mut window_masks = Vec::new();
    let mut depth = 0usize;
    let mut active: Vec<usize> = (0..runs.len()).collect();
    while !active.is_empty() {
        // One round: a single edge from every run that still has one.
        let round_start = slots.len();
        let mut a = 0;
        while a < active.len() {
            let r = active[a];
            let (run_start, run_len) = runs[r];
            slots.push(order[run_start + depth]);
            if depth + 1 >= run_len {
                active.swap_remove(a);
            } else {
                a += 1;
            }
        }
        depth += 1;
        // Pad the round to a window boundary and emit masks.
        let round_len = slots.len() - round_start;
        let padded = round_len.next_multiple_of(WINDOW);
        slots.resize(round_start + padded, u32::MAX);
        for w in 0..padded / WINDOW {
            let valid = round_len.saturating_sub(w * WINDOW).min(WINDOW);
            window_masks.push(if valid == WINDOW { u16::MAX } else { (1u16 << valid) - 1 });
        }
    }
    Grouping { slots, window_masks, elapsed: start.elapsed() }
}

/// Groups edges so that each window has distinct values of **both** key
/// arrays (used by Moldyn, where a window updates both interaction
/// endpoints).
///
/// Greedy with a carry queue: each window scans deferred-then-fresh
/// positions, accepting a position only if neither of its keys is already
/// present in the window.
///
/// # Panics
///
/// Panics if a position is out of bounds for either key array.
pub fn group_by_two_keys(positions: &[u32], keys_a: &[i32], keys_b: &[i32]) -> Grouping {
    let start = Instant::now();
    let mut pending: std::collections::VecDeque<u32> = positions.iter().copied().collect();
    let mut slots = Vec::with_capacity(positions.len().next_multiple_of(WINDOW));
    let mut window_masks = Vec::new();
    let mut deferred: Vec<u32> = Vec::new();
    while !pending.is_empty() {
        let mut used_a = std::collections::HashSet::with_capacity(WINDOW);
        let mut used_b = std::collections::HashSet::with_capacity(WINDOW);
        let mut filled = 0usize;
        deferred.clear();
        while filled < WINDOW {
            let Some(p) = pending.pop_front() else { break };
            let (ka, kb) = (keys_a[p as usize], keys_b[p as usize]);
            if used_a.contains(&ka)
                || used_b.contains(&kb)
                || used_a.contains(&kb)
                || used_b.contains(&ka)
            {
                deferred.push(p);
            } else {
                used_a.insert(ka);
                used_b.insert(kb);
                slots.push(p);
                filled += 1;
            }
        }
        // Deferred positions go to the front so rounds stay roughly FIFO.
        for &p in deferred.iter().rev() {
            pending.push_front(p);
        }
        slots.resize(slots.len() + (WINDOW - filled), u32::MAX);
        window_masks.push(if filled == WINDOW { u16::MAX } else { (1u16 << filled) - 1 });
    }
    Grouping { slots, window_masks, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn check_single_key_invariants(g: &Grouping, positions: &[u32], keys: &[i32]) {
        // Every real position appears exactly once.
        let mut real: Vec<u32> = g.slots.iter().copied().filter(|&p| p != u32::MAX).collect();
        real.sort_unstable();
        let mut expect = positions.to_vec();
        expect.sort_unstable();
        assert_eq!(real, expect);
        // Window masks match padding and windows are conflict-free.
        for w in 0..g.num_windows() {
            let (slots, mask) = g.window(w);
            let mut seen = std::collections::HashSet::new();
            for (lane, &p) in slots.iter().enumerate() {
                let valid = mask & (1 << lane) != 0;
                assert_eq!(valid, p != u32::MAX, "window {w} lane {lane}");
                if valid {
                    assert!(seen.insert(keys[p as usize]), "duplicate key in window {w}");
                }
            }
        }
    }

    #[test]
    fn grouping_uniform_keys_is_dense() {
        let keys: Vec<i32> = (0..160).map(|i| i % 40).collect();
        let positions: Vec<u32> = (0..160).collect();
        let g = group_by_key(&positions, &keys);
        check_single_key_invariants(&g, &positions, &keys);
        // 40 distinct keys x 4 occurrences: rounds of 40 -> padding to 48.
        assert!(g.occupancy() > 0.8, "occupancy {}", g.occupancy());
    }

    #[test]
    fn grouping_single_hot_key_degenerates() {
        let keys = vec![3i32; 64];
        let positions: Vec<u32> = (0..64).collect();
        let g = group_by_key(&positions, &keys);
        check_single_key_invariants(&g, &positions, &keys);
        assert_eq!(g.num_windows(), 64, "one edge per window");
        assert_eq!(g.occupancy(), 1.0 / 16.0);
    }

    #[test]
    fn grouping_random_keys() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(0..400);
            let keys: Vec<i32> = (0..n).map(|_| rng.gen_range(0..30)).collect();
            let positions: Vec<u32> = (0..n as u32).collect();
            let g = group_by_key(&positions, &keys);
            check_single_key_invariants(&g, &positions, &keys);
        }
    }

    #[test]
    fn grouping_subset_of_positions() {
        let keys: Vec<i32> = (0..100).map(|i| i % 5).collect();
        let positions: Vec<u32> = (0..100).filter(|p| p % 3 == 0).collect();
        let g = group_by_key(&positions, &keys);
        check_single_key_invariants(&g, &positions, &keys);
    }

    #[test]
    fn empty_grouping() {
        let g = group_by_key(&[], &[]);
        assert_eq!(g.num_windows(), 0);
        assert_eq!(g.occupancy(), 1.0);
    }

    #[test]
    fn two_key_grouping_keeps_both_keys_distinct() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        for _ in 0..20 {
            let n = rng.gen_range(0..300);
            let ka: Vec<i32> = (0..n).map(|_| rng.gen_range(0..25)).collect();
            let kb: Vec<i32> = (0..n).map(|_| rng.gen_range(25..50)).collect();
            let positions: Vec<u32> = (0..n as u32).collect();
            let g = group_by_two_keys(&positions, &ka, &kb);
            // All real positions exactly once.
            let mut real: Vec<u32> = g.slots.iter().copied().filter(|&p| p != u32::MAX).collect();
            real.sort_unstable();
            assert_eq!(real, positions);
            for w in 0..g.num_windows() {
                let (slots, mask) = g.window(w);
                let mut seen = std::collections::HashSet::new();
                for (lane, &p) in slots.iter().enumerate() {
                    if mask & (1 << lane) != 0 {
                        assert!(seen.insert(ka[p as usize]), "dup endpoint A in window {w}");
                        assert!(seen.insert(kb[p as usize]), "dup endpoint B in window {w}");
                    }
                }
            }
        }
    }

    #[test]
    fn two_key_grouping_handles_shared_vertex_across_keys() {
        // Same id on both sides: (0->1) and (1->2) cannot share a window
        // because vertex 1 is written by edge 0's B-side and edge 1's A-side.
        let ka = vec![0, 1];
        let kb = vec![1, 2];
        let g = group_by_two_keys(&[0, 1], &ka, &kb);
        assert_eq!(g.num_windows(), 2);
    }
}
