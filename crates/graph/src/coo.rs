//! Edge-list (COO / coordinate) graph representation.
//!
//! The paper's applications iterate over edges stored as two indirection
//! arrays `n1` (source) and `n2` (sink) — the "Sparse Matrix View" of §2.2.
//! [`EdgeList`] is exactly that layout, plus optional per-edge weights.

/// A directed graph stored as parallel edge arrays (the paper's `n1`/`n2`).
///
/// Vertex ids are `i32` so they can be loaded directly into SIMD index
/// vectors. All edges reference vertices `< num_vertices`.
///
/// # Example
///
/// ```
/// use invector_graph::EdgeList;
///
/// let g = EdgeList::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.src()[2], 3);
/// assert_eq!(g.dst()[2], 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeList {
    num_vertices: usize,
    src: Vec<i32>,
    dst: Vec<i32>,
    weight: Vec<f32>,
}

impl EdgeList {
    /// Builds an unweighted edge list (all weights `1.0`).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of `0..num_vertices`.
    pub fn from_edges(num_vertices: usize, edges: &[(i32, i32)]) -> Self {
        let weights = vec![1.0; edges.len()];
        Self::from_weighted_edges(
            num_vertices,
            &edges.iter().zip(&weights).map(|(&(s, d), &w)| (s, d, w)).collect::<Vec<_>>(),
        )
    }

    /// Builds a weighted edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of `0..num_vertices`.
    pub fn from_weighted_edges(num_vertices: usize, edges: &[(i32, i32, f32)]) -> Self {
        let mut src = Vec::with_capacity(edges.len());
        let mut dst = Vec::with_capacity(edges.len());
        let mut weight = Vec::with_capacity(edges.len());
        for &(s, d, w) in edges {
            assert!(
                (0..num_vertices as i64).contains(&(s as i64))
                    && (0..num_vertices as i64).contains(&(d as i64)),
                "edge ({s}, {d}) out of range for {num_vertices} vertices"
            );
            src.push(s);
            dst.push(d);
            weight.push(w);
        }
        EdgeList { num_vertices, src, dst, weight }
    }

    /// Builds directly from parallel arrays without copying.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or out-of-range endpoints.
    pub fn from_arrays(
        num_vertices: usize,
        src: Vec<i32>,
        dst: Vec<i32>,
        weight: Vec<f32>,
    ) -> Self {
        assert_eq!(src.len(), dst.len(), "src/dst length mismatch");
        assert_eq!(src.len(), weight.len(), "src/weight length mismatch");
        for (&s, &d) in src.iter().zip(&dst) {
            assert!(
                s >= 0 && (s as usize) < num_vertices && d >= 0 && (d as usize) < num_vertices,
                "edge ({s}, {d}) out of range for {num_vertices} vertices"
            );
        }
        EdgeList { num_vertices, src, dst, weight }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges (the sparse matrix NNZ).
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Source endpoints (`n1` in the paper).
    pub fn src(&self) -> &[i32] {
        &self.src
    }

    /// Sink endpoints (`n2` in the paper).
    pub fn dst(&self) -> &[i32] {
        &self.dst
    }

    /// Per-edge weights.
    pub fn weight(&self) -> &[f32] {
        &self.weight
    }

    /// Out-degree of every vertex (the `nneighbor` array of PageRank).
    pub fn out_degrees(&self) -> Vec<i32> {
        let mut deg = vec![0i32; self.num_vertices];
        for &s in &self.src {
            deg[s as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<i32> {
        let mut deg = vec![0i32; self.num_vertices];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Returns a copy with every edge also present in the reverse direction
    /// (used by WCC, which needs undirected connectivity).
    pub fn symmetrized(&self) -> EdgeList {
        let mut src = Vec::with_capacity(self.src.len() * 2);
        let mut dst = Vec::with_capacity(self.src.len() * 2);
        let mut weight = Vec::with_capacity(self.src.len() * 2);
        for i in 0..self.src.len() {
            src.push(self.src[i]);
            dst.push(self.dst[i]);
            weight.push(self.weight[i]);
            src.push(self.dst[i]);
            dst.push(self.src[i]);
            weight.push(self.weight[i]);
        }
        EdgeList { num_vertices: self.num_vertices, src, dst, weight }
    }

    /// Returns a copy with edges reordered by `perm` (`perm[k]` is the old
    /// position of the edge placed at `k`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_edges`.
    pub fn permuted(&self, perm: &[u32]) -> EdgeList {
        assert_eq!(perm.len(), self.num_edges(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(
                !std::mem::replace(&mut seen[p as usize], true),
                "duplicate index {p} in permutation"
            );
        }
        EdgeList {
            num_vertices: self.num_vertices,
            src: perm.iter().map(|&p| self.src[p as usize]).collect(),
            dst: perm.iter().map(|&p| self.dst[p as usize]).collect(),
            weight: perm.iter().map(|&p| self.weight[p as usize]).collect(),
        }
    }

    /// Estimated memory footprint in bytes (for Table 1-style reporting).
    pub fn footprint_bytes(&self) -> usize {
        self.src.len() * (4 + 4 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> EdgeList {
        EdgeList::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degrees(), vec![2, 1, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 1, 2]);
    }

    #[test]
    fn weighted_construction() {
        let g = EdgeList::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 0.5)]);
        assert_eq!(g.weight(), &[2.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        let _ = EdgeList::from_edges(2, &[(0, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_negative_vertex() {
        let _ = EdgeList::from_edges(2, &[(-1, 0)]);
    }

    #[test]
    fn symmetrized_doubles_edges() {
        let g = diamond().symmetrized();
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.out_degrees(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn permuted_reorders_all_arrays() {
        let g = EdgeList::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)]);
        let p = g.permuted(&[2, 0, 1]);
        assert_eq!(p.src(), &[2, 0, 1]);
        assert_eq!(p.dst(), &[0, 1, 2]);
        assert_eq!(p.weight(), &[3.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate index")]
    fn permuted_rejects_non_permutation() {
        let _ = diamond().permuted(&[0, 0, 1, 2]);
    }

    #[test]
    fn from_arrays_validates() {
        let g = EdgeList::from_arrays(2, vec![0, 1], vec![1, 0], vec![1.0, 1.0]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_arrays_rejects_ragged_input() {
        let _ = EdgeList::from_arrays(2, vec![0], vec![1, 0], vec![1.0, 1.0]);
    }
}
