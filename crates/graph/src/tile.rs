//! Cache tiling of edge lists (the inspector/executor "tiling" phase).
//!
//! Tiling partitions the sparse matrix into 2-D blocks of `block_vertices ×
//! block_vertices` and reorders the edges block-by-block, so the vertex data
//! touched while processing one tile fits in cache. The paper applies tiling
//! to the serial, grouped, masked and in-vector PageRank/Moldyn variants
//! alike and reports its (small) cost separately from grouping.

use std::time::{Duration, Instant};

use crate::coo::EdgeList;

/// Result of tiling an edge list: a permutation of edge positions grouped
/// into cache-sized tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiling {
    /// Edge permutation: `perm[k]` is the original position of the edge at
    /// tiled position `k`.
    pub perm: Vec<u32>,
    /// Tile boundaries into `perm` (length `num_tiles + 1`).
    pub tile_offsets: Vec<u32>,
    /// The block edge length used (vertices per block side).
    pub block_vertices: usize,
    /// Wall time spent computing the tiling.
    pub elapsed: Duration,
}

impl Tiling {
    /// Number of (non-empty or empty) tiles.
    pub fn num_tiles(&self) -> usize {
        self.tile_offsets.len() - 1
    }

    /// Edge positions of tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_tiles()`.
    pub fn tile(&self, t: usize) -> &[u32] {
        let lo = self.tile_offsets[t] as usize;
        let hi = self.tile_offsets[t + 1] as usize;
        &self.perm[lo..hi]
    }
}

/// Default block side: 8192 vertices × 8 bytes of hot data per vertex stays
/// within a typical L2.
pub const DEFAULT_BLOCK_VERTICES: usize = 8192;

/// Tiles `graph` into `block_vertices × block_vertices` blocks ordered
/// row-major by (destination block, source block), using a counting sort —
/// O(V/B² + E), the "tiny tiling overhead" the paper measures.
///
/// # Panics
///
/// Panics if `block_vertices == 0`.
///
/// # Example
///
/// ```
/// use invector_graph::{tile::tile_edges, EdgeList};
///
/// let g = EdgeList::from_edges(100, &[(0, 99), (1, 0), (99, 0), (2, 99)]);
/// let t = tile_edges(&g, 50);
/// // Block (dst 0..50, src 0..50) comes first: edges 1 and 2.
/// assert_eq!(t.tile(0), &[1]);
/// assert_eq!(t.num_tiles(), 4);
/// ```
pub fn tile_edges(graph: &EdgeList, block_vertices: usize) -> Tiling {
    assert!(block_vertices > 0, "block_vertices must be positive");
    let start = Instant::now();
    let nb = graph.num_vertices().div_ceil(block_vertices).max(1);
    let num_tiles = nb * nb;
    let tile_of = |pos: usize| -> usize {
        let s = graph.src()[pos] as usize / block_vertices;
        let d = graph.dst()[pos] as usize / block_vertices;
        d * nb + s
    };
    // Counting sort of edge positions by tile id.
    let mut counts = vec![0u32; num_tiles + 1];
    for pos in 0..graph.num_edges() {
        counts[tile_of(pos) + 1] += 1;
    }
    for t in 0..num_tiles {
        counts[t + 1] += counts[t];
    }
    let tile_offsets = counts.clone();
    let mut perm = vec![0u32; graph.num_edges()];
    let mut cursor = counts;
    for pos in 0..graph.num_edges() {
        let t = tile_of(pos);
        perm[cursor[t] as usize] = pos as u32;
        cursor[t] += 1;
    }
    Tiling { perm, tile_offsets, block_vertices, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn tiling_is_a_permutation() {
        let g = gen::uniform(500, 3000, 1);
        let t = tile_edges(&g, 100);
        let mut seen = t.perm.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..3000).collect::<Vec<u32>>());
    }

    #[test]
    fn tiles_partition_the_edges() {
        let g = gen::rmat(256, 2000, gen::RmatParams::SOCIAL, 2);
        let t = tile_edges(&g, 64);
        let total: usize = (0..t.num_tiles()).map(|i| t.tile(i).len()).sum();
        assert_eq!(total, 2000);
    }

    #[test]
    fn edges_within_a_tile_stay_within_their_blocks() {
        let g = gen::uniform(1000, 5000, 3);
        let b = 128;
        let t = tile_edges(&g, b);
        let nb = 1000usize.div_ceil(b);
        for tid in 0..t.num_tiles() {
            let (dblock, sblock) = (tid / nb, tid % nb);
            for &pos in t.tile(tid) {
                let s = g.src()[pos as usize] as usize;
                let d = g.dst()[pos as usize] as usize;
                assert_eq!(s / b, sblock, "tile {tid}");
                assert_eq!(d / b, dblock, "tile {tid}");
            }
        }
    }

    #[test]
    fn tile_order_is_destination_major() {
        let g = EdgeList::from_edges(4, &[(3, 3), (0, 0), (3, 0), (0, 3)]);
        let t = tile_edges(&g, 2);
        // Row-major by destination block: (d0,s0), (d0,s1), (d1,s0), (d1,s1).
        let all: Vec<&[u32]> = (0..4).map(|i| t.tile(i)).collect();
        assert_eq!(all[0], &[1]); // (0,0)
        assert_eq!(all[1], &[2]); // src 3, dst 0
        assert_eq!(all[2], &[3]); // src 0, dst 3
        assert_eq!(all[3], &[0]); // (3,3)
    }

    #[test]
    fn block_larger_than_graph_gives_single_tile() {
        let g = gen::uniform(100, 500, 9);
        let t = tile_edges(&g, 1000);
        assert_eq!(t.num_tiles(), 1);
        assert_eq!(t.tile(0).len(), 500);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_block_rejected() {
        let g = gen::uniform(10, 10, 0);
        let _ = tile_edges(&g, 0);
    }

    #[test]
    fn permuted_graph_improves_locality_metric() {
        // Mean absolute dst delta between consecutive edges should shrink.
        let g = gen::uniform(4000, 40_000, 4);
        let t = tile_edges(&g, 256);
        let delta = |dst: &[i32]| -> f64 {
            dst.windows(2).map(|w| (w[1] - w[0]).abs() as f64).sum::<f64>() / dst.len() as f64
        };
        let tiled = g.permuted(&t.perm);
        assert!(delta(tiled.dst()) < delta(g.dst()) / 2.0);
    }
}
