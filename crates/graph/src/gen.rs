//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on three SNAP graphs. Those exact datasets cannot be
//! redistributed here, so this module provides seeded generators producing
//! graphs of the same size and degree-skew class: an R-MAT generator for the
//! power-law social networks (higgs-twitter, soc-Pokec) and a uniform
//! generator for the near-uniform co-purchase graph (amazon0312). The
//! performance effects the paper measures — conflict density inside SIMD
//! windows and frontier shape — are functions of exactly these properties.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::coo::EdgeList;

/// Parameters of the recursive-matrix (R-MAT) generator.
///
/// Each edge picks a quadrant of the adjacency matrix per bit level with
/// probabilities `(a, b, c, d)`; skewed parameters (`a ≫ d`) yield the
/// heavy-tailed degree distributions of social graphs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The classic Graph500-style skew.
    pub const SOCIAL: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19 };
    /// Milder skew.
    pub const MILD: RmatParams = RmatParams { a: 0.45, b: 0.22, c: 0.22 };

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a power-law graph with `num_edges` edges over `num_vertices`
/// vertices (rounded up to a power of two internally, then clamped), with
/// uniform random edge weights in `[1, 10)`.
///
/// # Panics
///
/// Panics if `num_vertices == 0` or the quadrant probabilities are invalid.
///
/// # Example
///
/// ```
/// use invector_graph::gen::{rmat, RmatParams};
///
/// let g = rmat(1 << 10, 5_000, RmatParams::SOCIAL, 42);
/// assert_eq!(g.num_edges(), 5_000);
/// assert!(g.num_vertices() <= 1 << 10);
/// ```
pub fn rmat(num_vertices: usize, num_edges: usize, params: RmatParams, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    assert!(
        params.a > 0.0 && params.b >= 0.0 && params.c >= 0.0 && params.d() >= 0.0,
        "invalid R-MAT quadrant probabilities"
    );
    let levels = (num_vertices as f64).log2().ceil() as u32;
    let side = 1usize << levels;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut src = Vec::with_capacity(num_edges);
    let mut dst = Vec::with_capacity(num_edges);
    let mut weight = Vec::with_capacity(num_edges);
    let ab = params.a + params.b;
    let abc = ab + params.c;
    while src.len() < num_edges {
        let (mut row, mut col) = (0usize, 0usize);
        for level in (0..levels).rev() {
            let r: f64 = rng.gen();
            let (dr, dc) = if r < params.a {
                (0, 0)
            } else if r < ab {
                (0, 1)
            } else if r < abc {
                (1, 0)
            } else {
                (1, 1)
            };
            row |= dr << level;
            col |= dc << level;
        }
        debug_assert!(row < side && col < side);
        if row >= num_vertices || col >= num_vertices {
            continue; // rejected: outside the clamped vertex range
        }
        src.push(row as i32);
        dst.push(col as i32);
        weight.push(rng.gen_range(1.0f32..10.0));
    }
    EdgeList::from_arrays(num_vertices, src, dst, weight)
}

/// Generates a uniform (Erdős–Rényi style) multigraph: both endpoints drawn
/// uniformly, weights uniform in `[1, 10)`. Models low-skew graphs such as
/// co-purchase networks.
///
/// # Panics
///
/// Panics if `num_vertices == 0`.
pub fn uniform(num_vertices: usize, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "graph must have at least one vertex");
    let mut rng = SmallRng::seed_from_u64(seed);
    let nv = num_vertices as i32;
    let src: Vec<i32> = (0..num_edges).map(|_| rng.gen_range(0..nv)).collect();
    let dst: Vec<i32> = (0..num_edges).map(|_| rng.gen_range(0..nv)).collect();
    let weight: Vec<f32> = (0..num_edges).map(|_| rng.gen_range(1.0f32..10.0)).collect();
    EdgeList::from_arrays(num_vertices, src, dst, weight)
}

/// Gini coefficient of the in-degree distribution — a scalar skew measure
/// used by tests and the dataset registry to verify generator classes
/// (power-law graphs should be far more unequal than uniform ones).
pub fn in_degree_gini(graph: &EdgeList) -> f64 {
    let mut degs: Vec<i64> = graph.in_degrees().iter().map(|&d| d as i64).collect();
    degs.sort_unstable();
    let n = degs.len() as f64;
    let total: i64 = degs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, &d) in degs.iter().enumerate() {
        weighted += (2.0 * (i as f64 + 1.0) - n - 1.0) * d as f64;
    }
    weighted / (n * total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_produces_requested_edge_count() {
        let g = rmat(1000, 4000, RmatParams::SOCIAL, 1);
        assert_eq!(g.num_edges(), 4000);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.src().iter().all(|&s| (0..1000).contains(&s)));
        assert!(g.dst().iter().all(|&d| (0..1000).contains(&d)));
    }

    #[test]
    fn rmat_is_deterministic_per_seed() {
        let a = rmat(512, 2000, RmatParams::SOCIAL, 7);
        let b = rmat(512, 2000, RmatParams::SOCIAL, 7);
        let c = rmat(512, 2000, RmatParams::SOCIAL, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform(512, 2000, 7);
        let b = uniform(512, 2000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn social_rmat_is_more_skewed_than_uniform() {
        let nv = 1 << 12;
        let ne = 8 * nv;
        let social = rmat(nv, ne, RmatParams::SOCIAL, 3);
        let flat = uniform(nv, ne, 3);
        let g_social = in_degree_gini(&social);
        let g_flat = in_degree_gini(&flat);
        assert!(
            g_social > g_flat + 0.2,
            "expected strong skew difference: social={g_social:.3} uniform={g_flat:.3}"
        );
    }

    #[test]
    fn mild_rmat_sits_between() {
        let nv = 1 << 12;
        let ne = 8 * nv;
        let mild = in_degree_gini(&rmat(nv, ne, RmatParams::MILD, 3));
        let social = in_degree_gini(&rmat(nv, ne, RmatParams::SOCIAL, 3));
        let flat = in_degree_gini(&uniform(nv, ne, 3));
        assert!(flat < mild && mild < social, "flat={flat:.3} mild={mild:.3} social={social:.3}");
    }

    #[test]
    fn non_power_of_two_vertex_count_is_respected() {
        let g = rmat(1000, 3000, RmatParams::MILD, 9);
        assert!(g.src().iter().chain(g.dst()).all(|&v| v < 1000));
    }

    #[test]
    fn weights_in_expected_range() {
        let g = rmat(256, 1000, RmatParams::SOCIAL, 5);
        assert!(g.weight().iter().all(|&w| (1.0..10.0).contains(&w)));
    }

    #[test]
    fn gini_of_empty_graph_is_zero() {
        let g = EdgeList::from_edges(4, &[]);
        assert_eq!(in_degree_gini(&g), 0.0);
    }
}
