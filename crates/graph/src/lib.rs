//! `invector-graph` — graph substrate for irregular-reduction vectorization.
//!
//! Provides everything the paper's graph experiments need:
//!
//! * [`EdgeList`] (COO) and [`Csr`] representations — the "Sparse Matrix
//!   View" the applications iterate over;
//! * seeded synthetic [generators](gen) and the Table 1 [dataset
//!   registry](datasets) standing in for the SNAP graphs;
//! * [cache tiling](tile) and [conflict-free grouping](group) — the two
//!   inspector/executor phases of the `tiling_and_grouping` baseline;
//! * wave-frontier machinery ([`Frontier`], [`active_edge_positions`]) for
//!   SSSP/SSWP/WCC.
//!
//! # Example
//!
//! ```
//! use invector_graph::{datasets, tile::tile_edges, Csr};
//!
//! let d = datasets::amazon0312(datasets::TEST_SCALE);
//! let tiling = tile_edges(&d.graph, 1024);
//! assert_eq!(tiling.perm.len(), d.graph.num_edges());
//! let csr = Csr::from_edge_list(&d.graph);
//! assert_eq!(csr.num_edges(), d.graph.num_edges());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coo;
mod csr;
pub mod datasets;
mod frontier;
pub mod gen;
pub mod group;
pub mod io;
pub mod tile;

pub use coo::EdgeList;
pub use csr::Csr;
pub use frontier::{active_edge_positions, Frontier};
