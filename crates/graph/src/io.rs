//! SNAP edge-list text I/O.
//!
//! The paper's graphs come from the SNAP collection, distributed as
//! whitespace-separated `src dst` lines with `#` comments. This module
//! reads and writes that format (with an optional third weight column), so
//! the synthetic stand-ins can be swapped for the real datasets when they
//! are available.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::EdgeList;

/// Errors arising while reading an edge-list file.
#[derive(Debug)]
pub enum ReadEdgesError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a valid edge.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for ReadEdgesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadEdgesError::Io(e) => write!(f, "i/o error: {e}"),
            ReadEdgesError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadEdgesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadEdgesError::Io(e) => Some(e),
            ReadEdgesError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadEdgesError {
    fn from(e: std::io::Error) -> Self {
        ReadEdgesError::Io(e)
    }
}

/// Parses SNAP-format edges from a reader: one `src dst [weight]` triple
/// per line, `#`-prefixed comment lines ignored, vertices numbered from 0.
/// The vertex count is `max endpoint + 1`; missing weights default to 1.0.
///
/// # Errors
///
/// Returns [`ReadEdgesError`] on I/O failure or malformed lines.
pub fn read_edges<R: Read>(reader: R) -> Result<EdgeList, ReadEdgesError> {
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut weight = Vec::new();
    let mut max_vertex: i64 = -1;
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let parse_vertex = |field: Option<&str>, what: &str| -> Result<i32, ReadEdgesError> {
            let text = field.ok_or_else(|| ReadEdgesError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?;
            let v: i32 = text.parse().map_err(|_| ReadEdgesError::Parse {
                line: lineno + 1,
                message: format!("invalid {what} '{text}'"),
            })?;
            if v < 0 {
                return Err(ReadEdgesError::Parse {
                    line: lineno + 1,
                    message: format!("negative {what} {v}"),
                });
            }
            Ok(v)
        };
        let s = parse_vertex(fields.next(), "source")?;
        let d = parse_vertex(fields.next(), "destination")?;
        let w = match fields.next() {
            None => 1.0,
            Some(text) => text.parse().map_err(|_| ReadEdgesError::Parse {
                line: lineno + 1,
                message: format!("invalid weight '{text}'"),
            })?,
        };
        if fields.next().is_some() {
            return Err(ReadEdgesError::Parse {
                line: lineno + 1,
                message: "too many fields".into(),
            });
        }
        max_vertex = max_vertex.max(i64::from(s)).max(i64::from(d));
        src.push(s);
        dst.push(d);
        weight.push(w);
    }
    let nv = (max_vertex + 1).max(0) as usize;
    Ok(EdgeList::from_arrays(nv.max(1), src, dst, weight))
}

/// Reads a SNAP-format edge list from a file. See [`read_edges`].
///
/// # Errors
///
/// Returns [`ReadEdgesError`] on I/O failure or malformed lines.
pub fn read_edges_file(path: impl AsRef<Path>) -> Result<EdgeList, ReadEdgesError> {
    read_edges(std::fs::File::open(path)?)
}

/// Writes `graph` in SNAP format (`src dst weight` per line with a header
/// comment).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_edges<W: Write>(graph: &EdgeList, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# invector edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for j in 0..graph.num_edges() {
        writeln!(w, "{}\t{}\t{}", graph.src()[j], graph.dst()[j], graph.weight()[j])?;
    }
    w.flush()
}

/// Writes `graph` in SNAP format to a file. See [`write_edges`].
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_edges_file(graph: &EdgeList, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_edges(graph, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_snap_format_with_comments() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n2 3\n1 0\n";
        let g = read_edges(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.src(), &[0, 2, 1]);
        assert_eq!(g.dst(), &[1, 3, 0]);
        assert_eq!(g.weight(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn reads_weighted_edges() {
        let g = read_edges("0 1 2.5\n1 0 0.25\n".as_bytes()).unwrap();
        assert_eq!(g.weight(), &[2.5, 0.25]);
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_edges("# nothing\n\n".as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_vertices(), 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(matches!(read_edges("0\n".as_bytes()), Err(ReadEdgesError::Parse { line: 1, .. })));
        assert!(matches!(
            read_edges("0 x\n".as_bytes()),
            Err(ReadEdgesError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edges("ok\n0 1 1.0 extra\n".as_bytes()),
            Err(ReadEdgesError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            read_edges("0 1\n0 -2\n".as_bytes()),
            Err(ReadEdgesError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let err = read_edges("0 bad\n".as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 1") && text.contains("bad"), "{text}");
    }

    #[test]
    fn round_trip_through_a_file() {
        let g = crate::gen::rmat(64, 300, crate::gen::RmatParams::SOCIAL, 5);
        let path =
            std::env::temp_dir().join(format!("invector_io_test_{}.txt", std::process::id()));
        write_edges_file(&g, &path).unwrap();
        let back = read_edges_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.src(), g.src());
        assert_eq!(back.dst(), g.dst());
        // Weights round-trip through decimal text within f32 print precision.
        for (a, b) in back.weight().iter().zip(g.weight()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
        // Vertex count may shrink to max endpoint + 1.
        assert!(back.num_vertices() <= g.num_vertices());
    }

    #[test]
    fn round_trip_in_memory_is_exact_for_unit_weights() {
        let g = EdgeList::from_edges(5, &[(0, 4), (3, 2), (1, 1)]);
        let mut buf = Vec::new();
        write_edges(&g, &mut buf).unwrap();
        let back = read_edges(buf.as_slice()).unwrap();
        assert_eq!(back.src(), g.src());
        assert_eq!(back.dst(), g.dst());
        assert_eq!(back.weight(), g.weight());
    }
}
