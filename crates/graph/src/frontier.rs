//! Wave-frontier machinery for edge-centric graph algorithms.
//!
//! SSSP/SSWP/WCC process only the *active* edges each iteration: the
//! out-edges of vertices whose value changed in the previous iteration
//! (§2.3). [`Frontier`] is the deduplicated active-vertex set and
//! [`active_edge_positions`] expands it into the active-edge list through a
//! CSR index. This expansion cost is shared by every algorithm variant.

use crate::csr::Csr;

/// A deduplicated set of active vertices with O(1) insert and membership.
///
/// # Example
///
/// ```
/// use invector_graph::Frontier;
///
/// let mut f = Frontier::new(10);
/// assert!(f.insert(3));
/// assert!(!f.insert(3)); // duplicate
/// assert_eq!(f.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Frontier {
    vertices: Vec<i32>,
    member: Vec<bool>,
}

impl Frontier {
    /// An empty frontier over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Frontier { vertices: Vec::new(), member: vec![false; num_vertices] }
    }

    /// Adds `v`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is negative or out of range.
    #[inline]
    pub fn insert(&mut self, v: i32) -> bool {
        let slot = &mut self.member[v as usize];
        if *slot {
            false
        } else {
            *slot = true;
            self.vertices.push(v);
            true
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: i32) -> bool {
        self.member[v as usize]
    }

    /// Number of active vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when no vertex is active (the algorithms' termination test).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The active vertices, in insertion order.
    pub fn vertices(&self) -> &[i32] {
        &self.vertices
    }

    /// Empties the frontier (membership flags reset lazily in O(len)).
    pub fn clear(&mut self) {
        for &v in &self.vertices {
            self.member[v as usize] = false;
        }
        self.vertices.clear();
    }
}

/// Expands a frontier into the positions of all active edges (out-edges of
/// active vertices), appending into `out` to allow buffer reuse across
/// iterations.
pub fn active_edge_positions(csr: &Csr, frontier: &Frontier, out: &mut Vec<u32>) {
    out.clear();
    for &v in frontier.vertices() {
        out.extend_from_slice(csr.out_edges(v as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::EdgeList;

    #[test]
    fn insert_deduplicates() {
        let mut f = Frontier::new(5);
        assert!(f.insert(0));
        assert!(f.insert(4));
        assert!(!f.insert(0));
        assert_eq!(f.vertices(), &[0, 4]);
        assert!(f.contains(4));
        assert!(!f.contains(1));
    }

    #[test]
    fn clear_resets_membership() {
        let mut f = Frontier::new(3);
        f.insert(1);
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(1));
        assert!(f.insert(1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_vertex_panics() {
        let mut f = Frontier::new(2);
        f.insert(2);
    }

    #[test]
    fn expansion_collects_out_edges_of_active_vertices() {
        let g = EdgeList::from_edges(4, &[(0, 1), (1, 2), (0, 3), (2, 0)]);
        let csr = Csr::from_edge_list(&g);
        let mut f = Frontier::new(4);
        f.insert(0);
        f.insert(2);
        let mut edges = Vec::new();
        active_edge_positions(&csr, &f, &mut edges);
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 2, 3]);
    }

    #[test]
    fn expansion_reuses_buffer() {
        let g = EdgeList::from_edges(2, &[(0, 1)]);
        let csr = Csr::from_edge_list(&g);
        let mut f = Frontier::new(2);
        f.insert(1); // no out edges
        let mut edges = vec![9, 9, 9];
        active_edge_positions(&csr, &f, &mut edges);
        assert!(edges.is_empty());
    }
}
