//! The dataset registry: synthetic stand-ins for Table 1 of the paper.
//!
//! Each entry records the dimensions of the SNAP graph the paper used and
//! generates a seeded synthetic graph of the same size and skew class,
//! scaled by a user factor so CI and laptops can run the full pipeline.

use crate::coo::EdgeList;
use crate::gen::{self, RmatParams};

/// A named graph dataset: paper dimensions plus the generated stand-in.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name as in Table 1 (e.g. `"higgs-twitter"`).
    pub name: &'static str,
    /// Vertex count of the original SNAP graph.
    pub paper_vertices: usize,
    /// Edge (NNZ) count of the original SNAP graph.
    pub paper_edges: usize,
    /// The generated stand-in graph.
    pub graph: EdgeList,
}

impl Dataset {
    fn generate(
        name: &'static str,
        paper_vertices: usize,
        paper_edges: usize,
        scale: f64,
        kind: Kind,
    ) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
        let nv = ((paper_vertices as f64 * scale) as usize).max(16);
        let ne = ((paper_edges as f64 * scale) as usize).max(16);
        let seed =
            name.bytes().fold(0xD1E5_EED5u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        let graph = match kind {
            Kind::Rmat(params) => gen::rmat(nv, ne, params, seed),
            Kind::Uniform => gen::uniform(nv, ne, seed),
        };
        Dataset { name, paper_vertices, paper_edges, graph }
    }
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Rmat(RmatParams),
    Uniform,
}

/// `higgs-twitter` stand-in: 457K × 457K, 15M NNZ, strongly skewed
/// (follower network). `scale = 1.0` reproduces the paper dimensions.
pub fn higgs_twitter(scale: f64) -> Dataset {
    Dataset::generate("higgs-twitter", 457_000, 15_000_000, scale, Kind::Rmat(RmatParams::SOCIAL))
}

/// `soc-Pokec` stand-in: 1.6M × 1.6M, 31M NNZ, moderately skewed social
/// network.
pub fn soc_pokec(scale: f64) -> Dataset {
    Dataset::generate("soc-Pokec", 1_600_000, 31_000_000, scale, Kind::Rmat(RmatParams::MILD))
}

/// `amazon0312` stand-in: 401K × 401K, 3.2M NNZ, near-uniform co-purchase
/// graph.
pub fn amazon0312(scale: f64) -> Dataset {
    Dataset::generate("amazon0312", 401_000, 3_200_000, scale, Kind::Uniform)
}

/// All three graph datasets of Table 1 at the given scale, in paper order.
pub fn all(scale: f64) -> Vec<Dataset> {
    vec![higgs_twitter(scale), soc_pokec(scale), amazon0312(scale)]
}

/// The registered dataset names, in paper order.
pub const NAMES: [&str; 3] = ["higgs-twitter", "soc-Pokec", "amazon0312"];

/// Generates one dataset by its Table 1 name (matched case-insensitively).
///
/// # Errors
///
/// Returns a message listing the registered names.
pub fn by_name(name: &str, scale: f64) -> Result<Dataset, String> {
    match name.to_ascii_lowercase().as_str() {
        "higgs-twitter" => Ok(higgs_twitter(scale)),
        "soc-pokec" => Ok(soc_pokec(scale)),
        "amazon0312" => Ok(amazon0312(scale)),
        _ => Err(format!("unknown dataset '{name}' (one of: {})", NAMES.join(" | "))),
    }
}

/// A small scale suitable for unit/integration tests (fractions of a second
/// per algorithm run).
pub const TEST_SCALE: f64 = 0.002;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::in_degree_gini;

    #[test]
    fn registry_matches_table1_dimensions() {
        let sets = all(TEST_SCALE);
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].name, "higgs-twitter");
        assert_eq!(sets[0].paper_vertices, 457_000);
        assert_eq!(sets[0].paper_edges, 15_000_000);
        assert_eq!(sets[1].name, "soc-Pokec");
        assert_eq!(sets[2].name, "amazon0312");
        assert_eq!(sets[2].paper_edges, 3_200_000);
    }

    #[test]
    fn scaling_controls_generated_size() {
        let d = higgs_twitter(0.001);
        assert_eq!(d.graph.num_vertices(), 457);
        assert_eq!(d.graph.num_edges(), 15_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = soc_pokec(0.0005);
        let b = soc_pokec(0.0005);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn skew_classes_differ_as_in_paper() {
        let higgs = higgs_twitter(0.01);
        let amazon = amazon0312(0.01);
        assert!(in_degree_gini(&higgs.graph) > in_degree_gini(&amazon.graph) + 0.15);
    }

    #[test]
    fn by_name_resolves_every_registered_dataset() {
        for name in NAMES {
            let d = by_name(name, TEST_SCALE).unwrap();
            assert_eq!(d.name, name);
        }
        // Case-insensitive, matching the CLI's historical behaviour.
        assert_eq!(by_name("SOC-POKEC", TEST_SCALE).unwrap().name, "soc-Pokec");
        let err = by_name("twitter", TEST_SCALE).unwrap_err();
        assert!(err.contains("higgs-twitter"), "{err}");
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = higgs_twitter(0.0);
    }

    #[test]
    fn tiny_scale_clamps_to_nonempty_graph() {
        let d = amazon0312(1e-9);
        assert!(d.graph.num_vertices() >= 16);
        assert!(d.graph.num_edges() >= 16);
    }
}
