//! Compressed sparse row (CSR) adjacency, built from an [`EdgeList`].
//!
//! The wave-frontier algorithms need "out-edges of vertex v" to expand the
//! active-edge list each iteration; CSR provides that in O(degree).

use crate::coo::EdgeList;

/// Out-adjacency of a graph in CSR form. Edge `k` of the underlying
/// [`EdgeList`] appears once; [`Csr::edge_positions`] maps CSR slots back to
/// edge-list positions so per-edge data (weights) stays shared.
///
/// # Example
///
/// ```
/// use invector_graph::{Csr, EdgeList};
///
/// let g = EdgeList::from_edges(3, &[(0, 1), (0, 2), (2, 1)]);
/// let csr = Csr::from_edge_list(&g);
/// assert_eq!(csr.out_edges(0).len(), 2);
/// assert_eq!(csr.out_edges(1).len(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u32>,
    /// Edge-list position of each CSR slot, grouped by source vertex.
    positions: Vec<u32>,
}

impl Csr {
    /// Builds the out-adjacency index of `graph` with a counting sort
    /// (O(V + E), deterministic, preserves edge order within a vertex).
    pub fn from_edge_list(graph: &EdgeList) -> Self {
        let nv = graph.num_vertices();
        let mut offsets = vec![0u32; nv + 1];
        for &s in graph.src() {
            offsets[s as usize + 1] += 1;
        }
        for v in 0..nv {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut positions = vec![0u32; graph.num_edges()];
        for (pos, &s) in graph.src().iter().enumerate() {
            let slot = &mut cursor[s as usize];
            positions[*slot as usize] = pos as u32;
            *slot += 1;
        }
        Csr { offsets, positions }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.positions.len()
    }

    /// Edge-list positions of the out-edges of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn out_edges(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.positions[lo..hi]
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn out_degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// All edge positions grouped by source (the flattened CSR payload).
    pub fn edge_positions(&self) -> &[u32] {
        &self.positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_groups_out_edges_by_source() {
        let g = EdgeList::from_edges(4, &[(2, 0), (0, 1), (2, 3), (0, 2), (3, 3)]);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 5);
        // Positions preserve edge order per vertex.
        assert_eq!(csr.out_edges(0), &[1, 3]);
        assert_eq!(csr.out_edges(1), &[] as &[u32]);
        assert_eq!(csr.out_edges(2), &[0, 2]);
        assert_eq!(csr.out_edges(3), &[4]);
    }

    #[test]
    fn degrees_match_edge_list() {
        let g = EdgeList::from_edges(3, &[(1, 0), (1, 2), (1, 1)]);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.out_degree(0), 0);
        assert_eq!(csr.out_degree(1), 3);
        let degs = g.out_degrees();
        for (v, &d) in degs.iter().enumerate() {
            assert_eq!(csr.out_degree(v), d as usize);
        }
    }

    #[test]
    fn every_edge_position_appears_exactly_once() {
        let g = EdgeList::from_edges(5, &[(0, 1), (4, 2), (2, 2), (4, 0), (1, 3), (0, 0)]);
        let csr = Csr::from_edge_list(&g);
        let mut seen: Vec<u32> = csr.edge_positions().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::from_edges(3, &[]);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.num_edges(), 0);
        for v in 0..3 {
            assert!(csr.out_edges(v).is_empty());
        }
    }
}
