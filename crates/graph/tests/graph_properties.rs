//! Property tests for the graph substrate.

use proptest::prelude::*;

use invector_graph::group::{group_by_key, WINDOW};
use invector_graph::tile::tile_edges;
use invector_graph::{active_edge_positions, Csr, EdgeList, Frontier};

/// Strategy: a small random graph as (num_vertices, edge pairs).
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(i32, i32)>)> {
    (2usize..40).prop_flat_map(|nv| {
        let edges = prop::collection::vec((0..nv as i32, 0..nv as i32), 0..200);
        (Just(nv), edges)
    })
}

proptest! {
    #[test]
    fn csr_preserves_every_edge_exactly_once((nv, edges) in graph_strategy()) {
        let g = EdgeList::from_edges(nv, &edges);
        let csr = Csr::from_edge_list(&g);
        let mut seen = vec![false; g.num_edges()];
        for v in 0..nv {
            for &pos in csr.out_edges(v) {
                prop_assert_eq!(g.src()[pos as usize], v as i32, "edge listed under wrong source");
                prop_assert!(!std::mem::replace(&mut seen[pos as usize], true), "edge duplicated");
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "edge missing from CSR");
    }

    #[test]
    fn tiling_is_a_permutation_and_respects_blocks(
        (nv, edges) in graph_strategy(),
        block in 1usize..20,
    ) {
        let g = EdgeList::from_edges(nv, &edges);
        let t = tile_edges(&g, block);
        let mut sorted = t.perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.num_edges() as u32).collect::<Vec<_>>());
        // Tiles are contiguous, ordered, and block-homogeneous.
        let nb = nv.div_ceil(block);
        prop_assert_eq!(t.num_tiles(), nb * nb);
        for tid in 0..t.num_tiles() {
            for &pos in t.tile(tid) {
                let s = g.src()[pos as usize] as usize / block;
                let d = g.dst()[pos as usize] as usize / block;
                prop_assert_eq!(d * nb + s, tid);
            }
        }
    }

    #[test]
    fn grouping_slots_count_matches_mask_population((nv, edges) in graph_strategy()) {
        let g = EdgeList::from_edges(nv, &edges);
        let positions: Vec<u32> = (0..g.num_edges() as u32).collect();
        let grouping = group_by_key(&positions, g.dst());
        let real_slots: u32 = grouping.window_masks.iter().map(|m| m.count_ones()).sum();
        prop_assert_eq!(real_slots as usize, g.num_edges());
        prop_assert_eq!(grouping.num_slots(), grouping.num_windows() * WINDOW);
        // Occupancy is a valid fraction.
        let occ = grouping.occupancy();
        prop_assert!((0.0..=1.0).contains(&occ));
    }

    #[test]
    fn frontier_expansion_is_exactly_the_out_edges_of_members(
        (nv, edges) in graph_strategy(),
        members in prop::collection::vec(0usize..40, 0..20),
    ) {
        let g = EdgeList::from_edges(nv, &edges);
        let csr = Csr::from_edge_list(&g);
        let mut f = Frontier::new(nv);
        for &m in &members {
            if m < nv {
                f.insert(m as i32);
            }
        }
        let mut got = Vec::new();
        active_edge_positions(&csr, &f, &mut got);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..g.num_edges())
            .filter(|&j| f.contains(g.src()[j]))
            .map(|j| j as u32)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn symmetrization_makes_degree_sequences_equal((nv, edges) in graph_strategy()) {
        let g = EdgeList::from_edges(nv, &edges).symmetrized();
        prop_assert_eq!(g.out_degrees(), g.in_degrees());
    }
}
