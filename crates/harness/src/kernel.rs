//! The harness contract: [`Kernel`] describes an application, [`Workload`]
//! is a prepared instance, [`RunRecord`] is one run's outcome.

use std::time::Duration;

use invector_core::stats::{DepthHistogram, Utilization};
use invector_core::Backend;
use invector_kernels::{ExecPolicy, TilingMode, Timings, Variant};

use crate::spec::RunSpec;

/// One registered application: static metadata plus a factory for prepared
/// workloads. Implementations live in [`crate::apps`]; the harness driver,
/// the CLI, and the bench bins all consume applications only through this
/// trait.
pub trait Kernel: Sync {
    /// Registry name (lowercase, stable): `pagerank`, `sssp`, `agg`, ...
    fn name(&self) -> &'static str;

    /// One-line description for `list` output.
    fn summary(&self) -> &'static str;

    /// Dataset names this kernel accepts (empty for non-graph kernels,
    /// whose inputs are synthesized from the spec alone).
    fn datasets(&self) -> &'static [&'static str] {
        &[]
    }

    /// The legal variants, in presentation order. Always starts with the
    /// serial baseline the harness validates against.
    fn variants(&self) -> &'static [Variant];

    /// Whether the kernel's experiments charge a tiling inspector or run
    /// untiled wave-frontier style — selects the label column.
    fn tiling(&self) -> TilingMode;

    /// Agreement tolerance against the serial reference: `0.0` demands
    /// bitwise equality (exact min/max reductions), anything else is the
    /// mixed absolute/relative bound of [`RunRecord::agrees_with`]
    /// (float-sum reassociation).
    fn tolerance(&self) -> f64;

    /// Whether `ExecPolicy::threads > 1` changes execution (single-sweep
    /// kernels without an engine path return `false`).
    fn supports_threads(&self) -> bool {
        true
    }

    /// Builds a workload instance (generates the graph / mesh / lattice /
    /// key stream) sized by `spec`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown datasets or unsatisfiable sizes.
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String>;
}

/// A prepared input, ready to run any legal variant any number of times.
pub trait Workload {
    /// Human-readable input description (`higgs-twitter: 914 vertices,
    /// 30000 edges`).
    fn describe(&self) -> String;

    /// Runs one variant under the policy and returns the outcome.
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord;
}

/// The harness-level outcome of running one application variant: the
/// kernel's typed values erased to `f64` plus the statistics every kernel
/// reports.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Registry name of the application.
    pub app: &'static str,
    /// The variant that ran.
    pub variant: Variant,
    /// The paper's series label under the kernel's tiling mode.
    pub label: &'static str,
    /// Final values (ranks, distances, labels, states, or flattened
    /// aggregation rows), widened to `f64`. `i32` and `f32` widen exactly,
    /// so bitwise agreement on the widened values is bitwise agreement on
    /// the originals.
    pub values: Vec<f64>,
    /// Iterations executed (1 for single-sweep kernels).
    pub iterations: u32,
    /// Phase timing breakdown.
    pub timings: Timings,
    /// Modeled instruction count (0 without the `count` feature).
    pub instructions: u64,
    /// SIMD lane utilization (masked variant).
    pub utilization: Option<Utilization>,
    /// Conflict-depth histogram (in-vector variant).
    pub depth: Option<DepthHistogram>,
    /// Worker threads used.
    pub threads: usize,
    /// The backend the run resolved to.
    pub backend: Backend,
    /// Associative updates the run processed (edge relaxations, scatter
    /// adds, stream rows), for throughput reporting. `0` when the kernel
    /// cannot attribute a meaningful count.
    pub updates: u64,
}

impl RunRecord {
    /// Order-sensitive digest of the values, for display and cross-run
    /// comparison: a finite sum over the finite entries plus the count of
    /// non-finite ones (unreached `∞` distances hash by position).
    pub fn checksum(&self) -> f64 {
        let mut sum = 0.0f64;
        for (i, &v) in self.values.iter().enumerate() {
            if v.is_finite() {
                sum += v * (1.0 + (i % 16) as f64);
            } else {
                sum += i as f64;
            }
        }
        sum
    }

    /// Checks this run's values against a reference run.
    ///
    /// `tolerance == 0.0` demands bitwise equality. Otherwise each pair
    /// must satisfy `|a - b| <= tolerance · (|a| + |b| + 1.0)` (relative in
    /// the large, absolute `tolerance` near zero); equal values — including
    /// equal infinities — always pass.
    ///
    /// # Errors
    ///
    /// Returns a message locating the first disagreement.
    pub fn agrees_with(&self, reference: &RunRecord, tolerance: f64) -> Result<(), String> {
        if self.values.len() != reference.values.len() {
            return Err(format!(
                "{} values vs {} in reference",
                self.values.len(),
                reference.values.len()
            ));
        }
        for (i, (&a, &b)) in self.values.iter().zip(&reference.values).enumerate() {
            let ok = if tolerance == 0.0 {
                a.to_bits() == b.to_bits()
            } else {
                a == b || (a - b).abs() <= tolerance * (a.abs() + b.abs() + 1.0)
            };
            if !ok {
                return Err(format!("value {i}: {a} vs reference {b} (tolerance {tolerance})"));
            }
        }
        Ok(())
    }

    /// Wall time across all recorded phases.
    pub fn elapsed(&self) -> Duration {
        self.timings.total()
    }

    /// Publishes this record's statistics into the global metric registry
    /// ([`invector_obs::Registry::global`]), so a scrape or snapshot after
    /// a harness run carries update/instruction totals, the conflict-depth
    /// distribution, and lane utilization alongside the serving and engine
    /// series. A no-op unless runtime observability is on (the CLI's
    /// `--obs` flag) — batch runs pay nothing by default.
    pub fn publish_obs(&self) {
        if !invector_obs::enabled() {
            return;
        }
        let registry = invector_obs::Registry::global();
        registry.counter("invector_harness_runs_total", "application variant runs published").inc();
        registry
            .counter(
                &format!("invector_harness_runs_{}_total", self.backend.name()),
                "application variant runs published, by resolved backend ISA",
            )
            .inc();
        registry
            .counter(
                "invector_harness_updates_total",
                "associative updates processed by published runs",
            )
            .add(self.updates);
        registry
            .counter(
                "invector_harness_instructions_total",
                "modeled SIMD instructions across published runs (0 without the count feature)",
            )
            .add(self.instructions);
        registry
            .counter(
                "invector_harness_iterations_total",
                "kernel iterations executed by published runs",
            )
            .add(u64::from(self.iterations));
        if let Some(u) = self.utilization {
            registry
                .gauge(
                    "invector_harness_utilization_ratio",
                    "SIMD lane utilization of the latest published masked-variant run",
                )
                .set(u.ratio());
        }
        if let Some(depth) = &self.depth {
            let bounds: Vec<f64> = (0..=16).map(f64::from).collect();
            let h = registry.histogram(
                "invector_harness_conflict_depth",
                "conflict depth per vector across published in-vector runs",
                &bounds,
            );
            for d in 0..=16u32 {
                h.observe_n(f64::from(d), depth.bucket(d));
            }
        }
    }

    /// Throughput in million updates per second, when the kernel reported
    /// an update count and the run took measurable time.
    pub fn mupdates_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed().as_secs_f64();
        if self.updates == 0 || secs <= 0.0 {
            return None;
        }
        Some(self.updates as f64 / secs / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(values: Vec<f64>) -> RunRecord {
        RunRecord {
            app: "test",
            variant: Variant::Serial,
            label: "nontiling_serial",
            values,
            iterations: 1,
            timings: Timings::default(),
            instructions: 0,
            utilization: None,
            depth: None,
            threads: 1,
            backend: Backend::Portable,
            updates: 0,
        }
    }

    #[test]
    fn bitwise_mode_rejects_any_drift() {
        let a = record(vec![1.0, f64::INFINITY]);
        assert!(a.agrees_with(&record(vec![1.0, f64::INFINITY]), 0.0).is_ok());
        assert!(a.agrees_with(&record(vec![1.0 + 1e-15, f64::INFINITY]), 0.0).is_err());
        assert!(a.agrees_with(&record(vec![1.0]), 0.0).is_err());
    }

    #[test]
    fn tolerant_mode_accepts_reassociation_noise_and_infinities() {
        let a = record(vec![100.0, 0.0, f64::INFINITY]);
        assert!(a.agrees_with(&record(vec![100.01, 1e-4, f64::INFINITY]), 1e-3).is_ok());
        assert!(a.agrees_with(&record(vec![101.0, 0.0, f64::INFINITY]), 1e-3).is_err());
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(record(vec![1.0, 2.0]).checksum(), record(vec![2.0, 1.0]).checksum());
    }
}
