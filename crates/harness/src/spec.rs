//! Workload sizing: one [`RunSpec`] parameterizes every application.

use invector_agg::Distribution;

/// Sizing knobs for [`Kernel::prepare`](crate::Kernel::prepare). One spec
/// covers every application; each kernel reads the fields that apply to it
/// and ignores the rest (a graph kernel never looks at `mesh`).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Graph apps: dataset name from the Table 1 registry
    /// ([`invector_graph::datasets::NAMES`]); `None` picks the kernel's
    /// first registered dataset.
    pub dataset: Option<String>,
    /// Graph apps: dataset scale factor in `(0, 1]` relative to the paper's
    /// dimensions.
    pub scale: f64,
    /// Wave-frontier apps: source vertex.
    pub source: i32,
    /// Iteration budget: PageRank's cap, the wave drivers' cap, and the
    /// step count of the Euler / Moldyn time loops.
    pub iters: u32,
    /// Euler: mesh side (the solver runs on a `mesh × mesh` triangulated
    /// grid).
    pub mesh: usize,
    /// Moldyn: FCC lattice cells per side (`4·cells³` molecules).
    pub lattice: usize,
    /// Aggregation: input rows.
    pub rows: usize,
    /// Aggregation: distinct group-by keys.
    pub cardinality: usize,
    /// Aggregation: key distribution (Figure 13's input classes).
    pub dist: Distribution,
}

impl RunSpec {
    /// The smoke-test size: every registered cell finishes in fractions of
    /// a second, small enough for CI and the golden-checksum suite.
    pub fn tiny() -> RunSpec {
        RunSpec {
            dataset: None,
            scale: invector_graph::datasets::TEST_SCALE,
            source: 0,
            iters: 40,
            mesh: 8,
            lattice: 2,
            rows: 2_000,
            cardinality: 64,
            dist: Distribution::Zipf,
        }
    }

    /// A small-but-representative default for interactive `run` calls:
    /// ~1% of the paper's dataset dimensions.
    pub fn small() -> RunSpec {
        RunSpec {
            dataset: None,
            scale: 0.01,
            source: 0,
            iters: 100,
            mesh: 16,
            lattice: 3,
            rows: 50_000,
            cardinality: 256,
            dist: Distribution::Zipf,
        }
    }

    /// Parses a scale selection: the named presets `tiny` / `small`, or a
    /// numeric factor in `(0, 1]` applied on top of the `small` preset.
    ///
    /// # Errors
    ///
    /// Returns a message on unknown names or out-of-range factors.
    pub fn parse(s: &str) -> Result<RunSpec, String> {
        match s {
            "tiny" => Ok(RunSpec::tiny()),
            "small" => Ok(RunSpec::small()),
            _ => {
                let scale: f64 = s.parse().map_err(|_| {
                    format!("unknown scale '{s}' (tiny | small | a factor in (0, 1])")
                })?;
                if !(scale > 0.0 && scale <= 1.0) {
                    return Err(format!("scale factor must be in (0, 1], got {scale}"));
                }
                Ok(RunSpec { scale, ..RunSpec::small() })
            }
        }
    }
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse_and_scale_factor_overrides() {
        assert_eq!(RunSpec::parse("tiny").unwrap(), RunSpec::tiny());
        assert_eq!(RunSpec::parse("small").unwrap(), RunSpec::small());
        let custom = RunSpec::parse("0.05").unwrap();
        assert_eq!(custom.scale, 0.05);
        assert!(RunSpec::parse("2.0").is_err());
        assert!(RunSpec::parse("huge").unwrap_err().contains("tiny"));
    }
}
