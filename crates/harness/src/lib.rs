//! Application registry and run harness: the one pipeline from application
//! selection through variant dispatch to the SIMD backend.
//!
//! Every paper application implements the [`Kernel`] trait — static
//! metadata (name, datasets, legal variants, tiling mode, agreement
//! tolerance) plus a factory producing a prepared [`Workload`]. The static
//! [`registry`] enumerates them; the CLI, the bench bins, and the
//! [`driver::run_all`] smoke matrix all consume applications only through
//! this layer, so variant parsing, policy plumbing, and reference
//! validation exist exactly once.
//!
//! ```
//! use invector_harness::{registry, RunSpec};
//! use invector_kernels::ExecPolicy;
//!
//! let app = registry::lookup("sssp").unwrap();
//! let workload = app.prepare(&RunSpec::tiny()).unwrap();
//! let record = workload.run(app.variants()[0], &ExecPolicy::default());
//! assert!(!record.values.is_empty());
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod driver;
mod kernel;
pub mod registry;
mod spec;

pub use driver::{backend_matrix, run_all, run_all_apps, run_all_matrix, CellReport, SmokeReport};
pub use kernel::{Kernel, RunRecord, Workload};
pub use spec::RunSpec;
