//! The static application registry: every paper application, discoverable
//! by name from the CLI, the benches, and the smoke driver.

use crate::apps::{
    AggApp, BfsApp, EulerApp, MoldynApp, PageRankApp, ServeApp, ServeRecoverApp, SpmvApp, SsspApp,
    SswpApp, StreamGraphApp, StreamWindowApp, WccApp,
};
use crate::kernel::Kernel;

/// Every registered application, in the paper's presentation order
/// (Figures 8–13, then the extra wave kernels, the serving layer, and the
/// streaming stream-table workloads).
static REGISTRY: [&dyn Kernel; 13] = [
    &PageRankApp,
    &SpmvApp,
    &SsspApp,
    &SswpApp,
    &BfsApp,
    &WccApp,
    &EulerApp,
    &MoldynApp,
    &AggApp,
    &ServeApp,
    &ServeRecoverApp,
    &StreamGraphApp,
    &StreamWindowApp,
];

/// All registered applications.
pub fn all() -> &'static [&'static dyn Kernel] {
    &REGISTRY
}

/// Finds an application by exact (case-insensitive) name.
pub fn find(name: &str) -> Option<&'static dyn Kernel> {
    REGISTRY.iter().copied().find(|k| k.name().eq_ignore_ascii_case(name))
}

/// Finds an application by name, or explains the failure — including the
/// nearest registered name when the input looks like a typo.
///
/// # Errors
///
/// Returns a message listing the registered names, with a "did you mean"
/// suggestion when one is within edit distance 2.
pub fn lookup(name: &str) -> Result<&'static dyn Kernel, String> {
    if let Some(k) = find(name) {
        return Ok(k);
    }
    let names: Vec<&str> = REGISTRY.iter().map(|k| k.name()).collect();
    let nearest = names
        .iter()
        .map(|n| (edit_distance(&name.to_ascii_lowercase(), n), *n))
        .min()
        .filter(|&(d, _)| d <= 2);
    let mut msg = format!("unknown application '{}' (one of: {})", name, names.join(" | "));
    if let Some((_, suggestion)) = nearest {
        msg.push_str(&format!("; did you mean '{suggestion}'?"));
    }
    Err(msg)
}

/// Levenshtein distance, for nearest-name suggestions. Inputs are registry
/// names and user typos — always tiny, so the quadratic table is fine.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for app in all() {
            assert!(seen.insert(app.name()), "duplicate app name {}", app.name());
            assert!(find(app.name()).is_some());
            assert!(find(&app.name().to_uppercase()).is_some());
            assert!(!app.variants().is_empty());
            assert_eq!(app.variants()[0], invector_kernels::Variant::Serial);
        }
        assert_eq!(all().len(), 13);
    }

    #[test]
    fn lookup_suggests_the_nearest_name_for_typos() {
        let err = lookup("pagernak").err().expect("typo must not resolve");
        assert!(err.contains("did you mean 'pagerank'"), "{err}");
        let err = lookup("zzzzzz").err().expect("garbage must not resolve");
        assert!(!err.contains("did you mean"), "{err}");
        assert!(err.contains("moldyn"), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("sssp", "sswp"), 1);
        assert_eq!(edit_distance("", "bfs"), 3);
        assert_eq!(edit_distance("agg", "agg"), 0);
    }
}
