//! The registered applications, each adapting one kernel crate onto the
//! [`Kernel`] / [`Workload`] contract.

use std::time::Instant;

use invector_agg::{self as agg, Method};
use invector_graph::datasets::{self, Dataset};
use invector_kernels::euler::{self, COMPONENTS};
use invector_kernels::{
    bfs_with_policy, pagerank, spmv_with_policy, sssp_with_policy, sswp_with_policy,
    wcc_with_policy, ExecPolicy, PageRankConfig, RunResult, TilingMode, Timings, Variant,
};
use invector_moldyn::input::{fcc_lattice, Molecules};
use invector_moldyn::sim::simulate_with_policy;

use crate::kernel::{Kernel, RunRecord, Workload};
use crate::spec::RunSpec;

/// Deterministic seed for synthesized inputs (moldyn lattice jitter, the
/// aggregation key stream) — fixed so golden checksums are reproducible.
const INPUT_SEED: u64 = 0x1b_f2_9d;

/// Explicit-Euler step size; small enough that the tiny/small meshes stay
/// numerically tame over the spec's iteration budget.
const EULER_DT: f32 = 1e-3;

/// Resolves the dataset a graph workload should run: the spec's request, or
/// the kernel's first registered dataset.
fn resolve_dataset(spec: &RunSpec, names: &'static [&'static str]) -> Result<Dataset, String> {
    let name = spec.dataset.as_deref().unwrap_or(names[0]);
    if !names.iter().any(|n| n.eq_ignore_ascii_case(name)) {
        return Err(format!("dataset '{}' not registered (one of: {})", name, names.join(" | ")));
    }
    datasets::by_name(name, spec.scale)
}

/// Clamps the spec's source vertex into the graph's vertex range.
fn resolve_source(spec: &RunSpec, dataset: &Dataset) -> Result<i32, String> {
    let n = dataset.graph.num_vertices();
    if n == 0 {
        return Err(format!("{} generated an empty graph at this scale", dataset.name));
    }
    Ok(spec.source.clamp(0, n as i32 - 1))
}

fn describe_graph(dataset: &Dataset) -> String {
    format!(
        "{}: {} vertices, {} edges",
        dataset.name,
        dataset.graph.num_vertices(),
        dataset.graph.num_edges()
    )
}

/// Widens a kernel [`RunResult`] into the harness record. `f32` and `i32`
/// both widen to `f64` exactly, so bitwise agreement is preserved.
fn from_run_result<T: Copy + Into<f64>>(
    app: &'static str,
    variant: Variant,
    mode: TilingMode,
    policy: &ExecPolicy,
    updates: u64,
    r: RunResult<T>,
) -> RunRecord {
    RunRecord {
        app,
        variant,
        label: variant.label(mode),
        values: r.values.iter().map(|&v| v.into()).collect(),
        iterations: r.iterations,
        timings: r.timings,
        instructions: r.instructions,
        utilization: r.utilization,
        depth: r.depth,
        threads: r.threads,
        backend: policy.backend.resolve(),
        updates,
    }
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

/// PageRank power iteration over the Table 1 graphs (Figure 8).
pub struct PageRankApp;

struct PageRankWorkload {
    dataset: Dataset,
    max_iters: u32,
}

impl Kernel for PageRankApp {
    fn name(&self) -> &'static str {
        "pagerank"
    }
    fn summary(&self) -> &'static str {
        "PageRank power iteration; per-vertex rank scatter-add (Fig. 8)"
    }
    fn datasets(&self) -> &'static [&'static str] {
        &datasets::NAMES
    }
    fn variants(&self) -> &'static [Variant] {
        &Variant::ALL
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Tiled
    }
    fn tolerance(&self) -> f64 {
        5e-3
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        let dataset = resolve_dataset(spec, self.datasets())?;
        Ok(Box::new(PageRankWorkload { dataset, max_iters: spec.iters }))
    }
}

impl Workload for PageRankWorkload {
    fn describe(&self) -> String {
        describe_graph(&self.dataset)
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let config = PageRankConfig {
            max_iters: self.max_iters,
            exec: *policy,
            ..PageRankConfig::default()
        };
        let r = pagerank(&self.dataset.graph, variant, &config);
        let updates = self.dataset.graph.num_edges() as u64 * u64::from(r.iterations);
        from_run_result("pagerank", variant, TilingMode::Tiled, policy, updates, r)
    }
}

// ---------------------------------------------------------------------------
// SpMV
// ---------------------------------------------------------------------------

/// Sparse matrix–vector product in scatter-add (push) form.
pub struct SpmvApp;

struct SpmvWorkload {
    dataset: Dataset,
    x: Vec<f32>,
}

impl Kernel for SpmvApp {
    fn name(&self) -> &'static str {
        "spmv"
    }
    fn summary(&self) -> &'static str {
        "Sparse matrix-vector product, push-style scatter-add (Fig. 9)"
    }
    fn datasets(&self) -> &'static [&'static str] {
        &datasets::NAMES
    }
    fn variants(&self) -> &'static [Variant] {
        &Variant::ALL
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Tiled
    }
    fn tolerance(&self) -> f64 {
        1e-3
    }
    fn supports_threads(&self) -> bool {
        // One sweep over a static edge set; no engine path.
        false
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        let dataset = resolve_dataset(spec, self.datasets())?;
        let x = (0..dataset.graph.num_vertices()).map(|i| (i as f32 * 0.37).sin()).collect();
        Ok(Box::new(SpmvWorkload { dataset, x }))
    }
}

impl Workload for SpmvWorkload {
    fn describe(&self) -> String {
        describe_graph(&self.dataset)
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let r = spmv_with_policy(&self.dataset.graph, &self.x, variant, policy);
        let updates = self.dataset.graph.num_edges() as u64;
        from_run_result("spmv", variant, TilingMode::Tiled, policy, updates, r)
    }
}

// ---------------------------------------------------------------------------
// Wave-frontier kernels: SSSP / SSWP / BFS / WCC
// ---------------------------------------------------------------------------

/// Shapes one wavefront kernel into an app; the four differ only in the
/// relaxation rule behind the shared driver, so one adapter covers them.
macro_rules! wave_app {
    ($app:ident, $workload:ident, $name:literal, $summary:literal, $needs_source:expr,
     $run:expr) => {
        #[doc = $summary]
        pub struct $app;

        struct $workload {
            dataset: Dataset,
            source: i32,
            max_iters: u32,
        }

        impl Kernel for $app {
            fn name(&self) -> &'static str {
                $name
            }
            fn summary(&self) -> &'static str {
                $summary
            }
            fn datasets(&self) -> &'static [&'static str] {
                &datasets::NAMES
            }
            fn variants(&self) -> &'static [Variant] {
                &Variant::ALL
            }
            fn tiling(&self) -> TilingMode {
                TilingMode::Frontier
            }
            fn tolerance(&self) -> f64 {
                // Min/max reductions are exact: demand bitwise agreement.
                0.0
            }
            fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
                let dataset = resolve_dataset(spec, self.datasets())?;
                let source = if $needs_source { resolve_source(spec, &dataset)? } else { 0 };
                Ok(Box::new($workload { dataset, source, max_iters: spec.iters }))
            }
        }

        impl Workload for $workload {
            fn describe(&self) -> String {
                if $needs_source {
                    format!("{} (source {})", describe_graph(&self.dataset), self.source)
                } else {
                    describe_graph(&self.dataset)
                }
            }
            fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
                #[allow(clippy::redundant_closure_call)]
                let r = ($run)(self, variant, policy);
                // Wavefront sweeps only touch the active frontier's edges,
                // which the kernels don't count — no meaningful total.
                from_run_result($name, variant, TilingMode::Frontier, policy, 0, r)
            }
        }
    };
}

wave_app!(
    SsspApp,
    SsspWorkload,
    "sssp",
    "Single-source shortest paths, Bellman-Ford wavefront (Fig. 10)",
    true,
    |w: &SsspWorkload, variant, policy| sssp_with_policy(
        &w.dataset.graph,
        w.source,
        variant,
        w.max_iters,
        policy
    )
);

wave_app!(
    SswpApp,
    SswpWorkload,
    "sswp",
    "Single-source widest paths, max-min wavefront relaxation",
    true,
    |w: &SswpWorkload, variant, policy| sswp_with_policy(
        &w.dataset.graph,
        w.source,
        variant,
        w.max_iters,
        policy
    )
);

wave_app!(
    BfsApp,
    BfsWorkload,
    "bfs",
    "Breadth-first search hop counts via min-relaxation wavefront",
    true,
    |w: &BfsWorkload, variant, policy| bfs_with_policy(
        &w.dataset.graph,
        w.source,
        variant,
        w.max_iters,
        policy
    )
);

wave_app!(
    WccApp,
    WccWorkload,
    "wcc",
    "Weakly connected components by min-label propagation",
    false,
    |w: &WccWorkload, variant, policy| wcc_with_policy(
        &w.dataset.graph,
        variant,
        w.max_iters,
        policy
    )
);

// ---------------------------------------------------------------------------
// Euler
// ---------------------------------------------------------------------------

/// Explicit-Euler flux accumulation on an unstructured triangle mesh.
pub struct EulerApp;

struct EulerWorkload {
    mesh: invector_graph::EdgeList,
    state: euler::NodeState,
    side: usize,
    iterations: u32,
}

impl Kernel for EulerApp {
    fn name(&self) -> &'static str {
        "euler"
    }
    fn summary(&self) -> &'static str {
        "Explicit Euler flux sweep over a triangle mesh (Fig. 11)"
    }
    fn variants(&self) -> &'static [Variant] {
        &Variant::ALL
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Tiled
    }
    fn tolerance(&self) -> f64 {
        2e-3
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.mesh < 2 {
            return Err(format!("mesh side must be at least 2, got {}", spec.mesh));
        }
        let mesh = euler::triangle_mesh(spec.mesh);
        let state = euler::initial_state(mesh.num_vertices());
        Ok(Box::new(EulerWorkload { mesh, state, side: spec.mesh, iterations: spec.iters }))
    }
}

impl Workload for EulerWorkload {
    fn describe(&self) -> String {
        format!(
            "{0}x{0} triangle mesh: {1} nodes, {2} directed edges",
            self.side,
            self.mesh.num_vertices(),
            self.mesh.num_edges()
        )
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let instr_before = invector_simd::count::read();
        let start = Instant::now();
        let (state, threads) = euler::euler_run_with_policy(
            &self.mesh,
            &self.state,
            variant,
            self.iterations,
            EULER_DT,
            policy,
        );
        let timings = Timings { compute: start.elapsed(), ..Timings::default() };
        let mut values = Vec::with_capacity(COMPONENTS * state.len());
        for field in &state.fields {
            values.extend(field.iter().map(|&v| f64::from(v)));
        }
        RunRecord {
            app: "euler",
            variant,
            label: variant.label(TilingMode::Tiled),
            values,
            iterations: self.iterations,
            timings,
            instructions: invector_simd::count::read().wrapping_sub(instr_before),
            utilization: None,
            depth: None,
            threads,
            backend: policy.backend.resolve(),
            updates: self.mesh.num_edges() as u64 * u64::from(self.iterations),
        }
    }
}

// ---------------------------------------------------------------------------
// Moldyn
// ---------------------------------------------------------------------------

/// Lennard-Jones molecular dynamics with neighbor-list force accumulation.
pub struct MoldynApp;

struct MoldynWorkload {
    initial: Molecules,
    cells: usize,
    iterations: u32,
}

impl Kernel for MoldynApp {
    fn name(&self) -> &'static str {
        "moldyn"
    }
    fn summary(&self) -> &'static str {
        "Lennard-Jones molecular dynamics, neighbor-list forces (Fig. 12)"
    }
    fn variants(&self) -> &'static [Variant] {
        &Variant::ALL
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Tiled
    }
    fn tolerance(&self) -> f64 {
        1e-2
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.lattice == 0 {
            return Err("lattice must have at least one cell".into());
        }
        Ok(Box::new(MoldynWorkload {
            initial: fcc_lattice(spec.lattice, INPUT_SEED),
            cells: spec.lattice,
            iterations: spec.iters,
        }))
    }
}

impl Workload for MoldynWorkload {
    fn describe(&self) -> String {
        format!(
            "{0}x{0}x{0} FCC lattice: {1} molecules, box {2:.2}",
            self.cells,
            self.initial.len(),
            self.initial.box_size
        )
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let r = simulate_with_policy(&self.initial, variant, self.iterations, policy);
        let m = &r.molecules;
        let mut values = Vec::with_capacity(6 * m.len());
        for series in [&m.px, &m.py, &m.pz, &m.vx, &m.vy, &m.vz] {
            values.extend(series.iter().map(|&v| f64::from(v)));
        }
        RunRecord {
            app: "moldyn",
            variant,
            label: variant.label(TilingMode::Tiled),
            values,
            iterations: r.iterations,
            timings: r.timings,
            instructions: r.instructions,
            utilization: r.utilization,
            depth: r.depth,
            threads: r.threads,
            backend: policy.backend.resolve(),
            // The neighbor list is rebuilt as molecules move; force-pair
            // counts aren't surfaced, so no meaningful total.
            updates: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Hash-based group-by aggregation over skewed key streams.
pub struct AggApp;

struct AggWorkload {
    input: agg::Input,
    dist: agg::Distribution,
}

/// Variants map onto the aggregation methods of Figure 13: the bucketized
/// table is the representative layout for both vectorized strategies.
fn agg_method(variant: Variant) -> Method {
    match variant {
        Variant::Masked => Method::BucketMask,
        Variant::Invec => Method::BucketInvec,
        _ => Method::LinearSerial,
    }
}

impl Kernel for AggApp {
    fn name(&self) -> &'static str {
        "agg"
    }
    fn summary(&self) -> &'static str {
        "Hash group-by aggregation over skewed key streams (Fig. 13)"
    }
    fn variants(&self) -> &'static [Variant] {
        const VARIANTS: [Variant; 3] = [Variant::Serial, Variant::Masked, Variant::Invec];
        &VARIANTS
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Frontier
    }
    fn tolerance(&self) -> f64 {
        1e-3
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.rows == 0 || spec.cardinality == 0 {
            return Err("aggregation needs rows >= 1 and cardinality >= 1".into());
        }
        let input = agg::dist::generate(spec.dist, spec.rows, spec.cardinality, INPUT_SEED);
        Ok(Box::new(AggWorkload { input, dist: spec.dist }))
    }
}

impl Workload for AggWorkload {
    fn describe(&self) -> String {
        format!(
            "{} rows, {} keys, {} distribution",
            self.input.len(),
            self.input.cardinality,
            self.dist.label()
        )
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let outcome = agg::aggregate_with_policy(
            agg_method(variant),
            &self.input.keys,
            &self.input.vals,
            self.input.cardinality,
            policy,
        );
        let mut values = Vec::with_capacity(4 * outcome.rows.len());
        for row in &outcome.rows {
            values.extend([
                f64::from(row.key),
                f64::from(row.count),
                f64::from(row.sum),
                f64::from(row.sumsq),
            ]);
        }
        RunRecord {
            app: "agg",
            variant,
            label: variant.label(TilingMode::Frontier),
            values,
            iterations: 1,
            timings: Timings { compute: outcome.elapsed, ..Timings::default() },
            instructions: outcome.instructions,
            utilization: None,
            depth: None,
            threads: policy.threads.max(1),
            backend: policy.backend.resolve(),
            updates: self.input.len() as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Serving
// ---------------------------------------------------------------------------

/// Epoch batch quantum for the serving workload. Fixed (not spec-derived)
/// because it is part of the determinism configuration: both registered
/// tables use exact operators, so snapshots are bitwise-stable under any
/// quantum, but keeping it constant makes recorded timings comparable.
const SERVE_QUANTUM: usize = 256;

/// Client batch size for the serving workload's submissions.
const SERVE_CHUNK: usize = 512;

/// The serving layer: streams associative updates through `invector-serve`
/// micro-batches instead of one ahead-of-time array pass.
pub struct ServeApp;

struct ServeWorkload {
    input: agg::Input,
    dist: agg::Distribution,
}

impl Kernel for ServeApp {
    fn name(&self) -> &'static str {
        "serve"
    }
    fn summary(&self) -> &'static str {
        "Update-stream serving: sharded ingest + epoch micro-batches (invector-serve)"
    }
    fn variants(&self) -> &'static [Variant] {
        const VARIANTS: [Variant; 2] = [Variant::Serial, Variant::Invec];
        &VARIANTS
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Frontier
    }
    fn tolerance(&self) -> f64 {
        // Integer adds and float mins are exact: the served snapshot must
        // match the serial fold bitwise.
        0.0
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.rows == 0 || spec.cardinality == 0 {
            return Err("serving needs rows >= 1 and cardinality >= 1".into());
        }
        let input = agg::dist::generate(spec.dist, spec.rows, spec.cardinality, INPUT_SEED);
        Ok(Box::new(ServeWorkload { input, dist: spec.dist }))
    }
}

impl ServeWorkload {
    /// The logical update streams: each input row becomes one count
    /// increment and one min relaxation, keyed by the row's group.
    fn streams(&self) -> (Vec<invector_serve::Update>, Vec<invector_serve::Update>) {
        let counts = self
            .input
            .keys
            .iter()
            .enumerate()
            .map(|(seq, &k)| invector_serve::Update::i32(seq as u64, k as u32, 1))
            .collect();
        let mins = self
            .input
            .keys
            .iter()
            .zip(&self.input.vals)
            .enumerate()
            .map(|(seq, (&k, &v))| invector_serve::Update::f32(seq as u64, k as u32, v))
            .collect();
        (counts, mins)
    }

    /// Serial reference: fold both streams directly, no service involved.
    fn run_serial(&self) -> Vec<f64> {
        let card = self.input.cardinality;
        let mut counts = vec![0i32; card];
        let mut mins = vec![f32::INFINITY; card];
        for (&k, &v) in self.input.keys.iter().zip(&self.input.vals) {
            counts[k as usize] += 1;
            if v < mins[k as usize] {
                mins[k as usize] = v;
            }
        }
        let mut values: Vec<f64> = counts.into_iter().map(f64::from).collect();
        values.extend(mins.into_iter().map(f64::from));
        values
    }

    /// Served path: stand up an in-process core, stream the updates
    /// through batched submissions, drain, and snapshot.
    fn run_served(&self, policy: &ExecPolicy) -> Result<Vec<f64>, String> {
        use invector_serve::{
            LocalClient, OpKind, ServeClient, ServeConfig, ServerCore, TableSpec,
        };
        let card = self.input.cardinality;
        let mut config = ServeConfig::new(vec![
            TableSpec::i32("counts", OpKind::Add, card),
            TableSpec::f32("mins", OpKind::Min, card),
        ]);
        config.quantum = SERVE_QUANTUM;
        config.threads = policy.threads.max(1);
        config.backend = policy.backend;
        let core = ServerCore::new(config)?;
        let mut client = LocalClient::new(core);
        let (counts, mins) = self.streams();
        for (table, stream) in [(0u16, &counts), (1u16, &mins)] {
            for chunk in stream.chunks(SERVE_CHUNK) {
                client.submit_all(table, chunk)?;
            }
        }
        client.flush()?;
        let mut values = client.snapshot(0)?.data.to_f64();
        values.extend(client.snapshot(1)?.data.to_f64());
        Ok(values)
    }
}

impl Workload for ServeWorkload {
    fn describe(&self) -> String {
        format!(
            "{} rows -> 2x{} update stream, {} keys, {} distribution",
            self.input.len(),
            self.input.len(),
            self.input.cardinality,
            self.dist.label()
        )
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let instr_before = invector_simd::count::read();
        let start = Instant::now();
        let values = match variant {
            Variant::Serial => self.run_serial(),
            _ => self.run_served(policy).unwrap_or_else(|e| panic!("serving workload failed: {e}")),
        };
        let timings = Timings { compute: start.elapsed(), ..Timings::default() };
        RunRecord {
            app: "serve",
            variant,
            label: variant.label(TilingMode::Frontier),
            values,
            iterations: 1,
            timings,
            instructions: invector_simd::count::read().wrapping_sub(instr_before),
            utilization: None,
            depth: None,
            threads: policy.threads.max(1),
            backend: policy.backend.resolve(),
            updates: 2 * self.input.len() as u64,
        }
    }
}

/// Crash-recovery drill over the serving layer: the vector variant streams
/// the same updates as `serve`, but drops the core mid-stream with the WAL
/// as the only survivor, reopens over the log, and finishes ingest on the
/// recovered core. The final snapshot must still match the serial fold
/// bitwise — recovery is replay, not approximation.
pub struct ServeRecoverApp;

struct ServeRecoverWorkload {
    inner: ServeWorkload,
}

impl Kernel for ServeRecoverApp {
    fn name(&self) -> &'static str {
        "serve-recover"
    }
    fn summary(&self) -> &'static str {
        "Crash recovery: WAL-backed serve core dropped mid-stream, replayed, resumed (invector-replog)"
    }
    fn variants(&self) -> &'static [Variant] {
        const VARIANTS: [Variant; 2] = [Variant::Serial, Variant::Invec];
        &VARIANTS
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Frontier
    }
    fn tolerance(&self) -> f64 {
        // Recovery replays the identical admitted slices through the
        // identical epoch path, so the snapshot must be bitwise-exact.
        0.0
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.rows == 0 || spec.cardinality == 0 {
            return Err("recovery drill needs rows >= 1 and cardinality >= 1".into());
        }
        let input = agg::dist::generate(spec.dist, spec.rows, spec.cardinality, INPUT_SEED);
        Ok(Box::new(ServeRecoverWorkload { inner: ServeWorkload { input, dist: spec.dist } }))
    }
}

impl ServeRecoverWorkload {
    /// A fresh scratch directory for one recovery run. Each call gets its
    /// own path so repeated runs (bench iterations) never replay a stale log.
    fn scratch_dir() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "invector-harness-recover-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).ok();
        dir
    }

    /// Durable served path with a simulated crash: ingest the first half of
    /// each stream, flush, drop the core (the WAL is all that survives),
    /// recover a fresh core over the same directory, finish the streams on
    /// it, and snapshot.
    fn run_recovered(&self, policy: &ExecPolicy) -> Result<Vec<f64>, String> {
        use invector_serve::{
            LocalClient, OpKind, ServeClient, ServeConfig, ServerCore, SyncPolicy, TableSpec,
            WalOptions,
        };
        let card = self.inner.input.cardinality;
        let dir = Self::scratch_dir();
        let config = || {
            let mut config = ServeConfig::new(vec![
                TableSpec::i32("counts", OpKind::Add, card),
                TableSpec::f32("mins", OpKind::Min, card),
            ]);
            config.quantum = SERVE_QUANTUM;
            config.threads = policy.threads.max(1);
            config.backend = policy.backend;
            let mut wal = WalOptions::new(&dir);
            wal.sync = SyncPolicy::Os;
            // A short cadence so larger scales exercise checkpoint +
            // log-tail recovery, not just raw replay.
            wal.checkpoint_epochs = 16;
            config.wal = Some(wal);
            config
        };
        let (counts, mins) = self.inner.streams();
        let result = (|| {
            // Phase one: ingest the first half of both streams, then crash.
            let core = ServerCore::new(config())?;
            let mut client = LocalClient::new(core);
            for (table, stream) in [(0u16, &counts), (1u16, &mins)] {
                for chunk in stream[..stream.len() / 2].chunks(SERVE_CHUNK) {
                    client.submit_all(table, chunk)?;
                }
            }
            client.flush()?;
            drop(client);

            // Phase two: recover over the log and finish the streams.
            let core = ServerCore::new(config())?;
            let mut client = LocalClient::new(core);
            for (table, stream) in [(0u16, &counts), (1u16, &mins)] {
                for chunk in stream[stream.len() / 2..].chunks(SERVE_CHUNK) {
                    client.submit_all(table, chunk)?;
                }
            }
            client.flush()?;
            let mut values = client.snapshot(0)?.data.to_f64();
            values.extend(client.snapshot(1)?.data.to_f64());
            Ok(values)
        })();
        std::fs::remove_dir_all(&dir).ok();
        result
    }
}

impl Workload for ServeRecoverWorkload {
    fn describe(&self) -> String {
        format!("{} (crash + WAL replay at midpoint)", self.inner.describe())
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let instr_before = invector_simd::count::read();
        let start = Instant::now();
        let values = match variant {
            Variant::Serial => self.inner.run_serial(),
            _ => self
                .run_recovered(policy)
                .unwrap_or_else(|e| panic!("recovery workload failed: {e}")),
        };
        let timings = Timings { compute: start.elapsed(), ..Timings::default() };
        RunRecord {
            app: "serve-recover",
            variant,
            label: variant.label(TilingMode::Frontier),
            values,
            iterations: 1,
            timings,
            instructions: invector_simd::count::read().wrapping_sub(instr_before),
            utilization: None,
            depth: None,
            threads: policy.threads.max(1),
            backend: policy.backend.resolve(),
            updates: 2 * self.inner.input.len() as u64,
        }
    }
}

// ---------------------------------------------------------------------------
// Streaming (streamkit-backed stream tables)
// ---------------------------------------------------------------------------

/// Deterministic xorshift64* stream for synthesizing edge churn and window
/// events — fixed recurrence so both variants replay the identical stream.
struct EventRng(u64);

impl EventRng {
    fn new(seed: u64) -> EventRng {
        EventRng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Incremental graph analytics over the serving layer: an evolving edge
/// stream drives streamkit's delta PageRank and WCC engines inside
/// `invector-serve` stream tables; the vector variant's served snapshots
/// must match a from-scratch serial recompute over the final edge set
/// bitwise.
pub struct StreamGraphApp;

struct StreamGraphWorkload {
    vertices: u32,
    iters: u32,
    /// Edge events in `(src, dst | DELETE_BIT?)` engine encoding.
    events: Vec<(u32, u32)>,
}

impl Kernel for StreamGraphApp {
    fn name(&self) -> &'static str {
        "stream-graph"
    }
    fn summary(&self) -> &'static str {
        "Incremental graph analytics: delta PageRank + WCC over an evolving edge stream (invector-streamkit)"
    }
    fn variants(&self) -> &'static [Variant] {
        const VARIANTS: [Variant; 2] = [Variant::Serial, Variant::Invec];
        &VARIANTS
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Frontier
    }
    fn tolerance(&self) -> f64 {
        // The incremental engines are bitwise-exact against from-scratch
        // recomputation; ranks travel as f32 bit patterns in i32 slots.
        0.0
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.rows == 0 || spec.cardinality < 2 {
            return Err("graph streaming needs rows >= 1 and cardinality >= 2".into());
        }
        let vertices = (spec.cardinality as u32).min(invector_streamkit::MAX_VERTICES);
        let iters = spec.iters.clamp(1, invector_streamkit::MAX_ITERS);
        // Churn with a shifting hot set: most events touch a small window of
        // vertices that drifts through the id space, so deletes regularly
        // hit edges that exist and the dirty frontier stays localized — the
        // regime the delta engines are built for.
        let mut rng = EventRng::new(INPUT_SEED);
        let events = (0..spec.rows)
            .map(|i| {
                let hot = ((i * 7 / spec.rows.max(1)) as u32 * vertices / 7) % vertices;
                let span = (vertices / 4).max(2);
                let src = (hot + rng.next() as u32 % span) % vertices;
                let dst = (hot + rng.next() as u32 % span) % vertices;
                let insert = rng.next() % 100 < 70;
                invector_streamkit::edge_event(src, dst, insert)
            })
            .collect();
        Ok(Box::new(StreamGraphWorkload { vertices, iters, events }))
    }
}

impl StreamGraphWorkload {
    /// From-scratch serial recompute over the final edge set, in the same
    /// slot encoding the served tables use (f32 rank bits, i32 labels).
    fn run_serial(&self) -> Vec<f64> {
        let n = self.vertices as usize;
        let mut edges = std::collections::BTreeSet::new();
        for &(src, bits) in &self.events {
            let dst = bits & !invector_streamkit::DELETE_BIT;
            if bits & invector_streamkit::DELETE_BIT != 0 {
                edges.remove(&(src, dst));
            } else {
                edges.insert((src, dst));
            }
        }
        let mut inn = vec![Vec::new(); n];
        let mut outdeg = vec![0u32; n];
        let mut und = vec![std::collections::BTreeSet::new(); n];
        for &(u, v) in &edges {
            inn[v as usize].push(u);
            outdeg[u as usize] += 1;
            und[u as usize].insert(v);
            und[v as usize].insert(u);
        }
        let und: Vec<Vec<u32>> = und.into_iter().map(|s| s.into_iter().collect()).collect();
        let layers =
            invector_streamkit::reference::pagerank_layers(n, self.iters as usize, &inn, &outdeg);
        let labels = invector_streamkit::reference::wcc_labels(n, &und);
        let mut values: Vec<f64> =
            layers[self.iters as usize].iter().map(|r| f64::from(r.to_bits() as i32)).collect();
        values.extend(labels.into_iter().map(f64::from));
        values
    }

    /// Served path: both graph tables on one core, edge ops streamed
    /// through the `EdgeOps` verb in admission-sized chunks.
    fn run_served(&self, policy: &ExecPolicy) -> Result<Vec<f64>, String> {
        use invector_serve::{
            EdgeOp, LocalClient, ServeClient, ServeConfig, ServerCore, SubmitOutcome, TableSpec,
        };
        let config = {
            let mut config = ServeConfig::new(vec![
                TableSpec::pagerank("ranks", self.vertices, self.iters),
                TableSpec::wcc("components", self.vertices),
            ]);
            config.quantum = SERVE_QUANTUM;
            config.threads = policy.threads.max(1);
            config.backend = policy.backend;
            config
        };
        let core = ServerCore::new(config)?;
        let mut client = LocalClient::new(core);
        for table in [0u16, 1u16] {
            let ops: Vec<EdgeOp> = self
                .events
                .iter()
                .enumerate()
                .map(|(seq, &(src, bits))| {
                    let dst = bits & !invector_streamkit::DELETE_BIT;
                    if bits & invector_streamkit::DELETE_BIT != 0 {
                        EdgeOp::delete(seq as u64, src, dst)
                    } else {
                        EdgeOp::insert(seq as u64, src, dst)
                    }
                })
                .collect();
            for chunk in ops.chunks(SERVE_CHUNK) {
                let mut rest = chunk;
                while !rest.is_empty() {
                    match client.edge_ops(table, rest)? {
                        SubmitOutcome::Accepted { .. } => break,
                        SubmitOutcome::Rejected { accepted, retry_after_ms, .. } => {
                            rest = &rest[accepted as usize..];
                            client.backoff(retry_after_ms);
                        }
                        SubmitOutcome::Failed(m) => return Err(m),
                    }
                }
            }
        }
        client.flush()?;
        let n = self.vertices as usize;
        let mut values = client.snapshot(0)?.data.to_f64();
        values.truncate(n);
        let mut labels = client.snapshot(1)?.data.to_f64();
        labels.truncate(n);
        values.extend(labels);
        Ok(values)
    }
}

impl Workload for StreamGraphWorkload {
    fn describe(&self) -> String {
        format!(
            "{} edge events over {} vertices (delta pagerank x{} + wcc)",
            self.events.len(),
            self.vertices,
            self.iters
        )
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let instr_before = invector_simd::count::read();
        let start = Instant::now();
        let values = match variant {
            Variant::Serial => self.run_serial(),
            _ => self
                .run_served(policy)
                .unwrap_or_else(|e| panic!("graph streaming workload failed: {e}")),
        };
        let timings = Timings { compute: start.elapsed(), ..Timings::default() };
        RunRecord {
            app: "stream-graph",
            variant,
            label: variant.label(TilingMode::Frontier),
            values,
            iterations: 1,
            timings,
            instructions: invector_simd::count::read().wrapping_sub(instr_before),
            utilization: None,
            depth: None,
            threads: policy.threads.max(1),
            backend: policy.backend.resolve(),
            updates: 2 * self.events.len() as u64,
        }
    }
}

/// Sliding-window aggregation with retraction over the serving layer:
/// three window stream tables (count-based add and min, watermark-based
/// max) ingest the same synthesized stream; every served slot image —
/// aggregates, bucket rings, and retraction payloads — must match the
/// plain-loop window simulator bitwise.
pub struct StreamWindowApp;

struct WindowTenant {
    name: &'static str,
    op: invector_serve::OpKind,
    buckets: u32,
    width: u32,
    timed: bool,
    events: Vec<(u32, u32)>,
}

struct StreamWindowWorkload {
    keys: u32,
    tenants: Vec<WindowTenant>,
}

impl Kernel for StreamWindowApp {
    fn name(&self) -> &'static str {
        "stream-window"
    }
    fn summary(&self) -> &'static str {
        "Windowed aggregation: bucketed add/min/max with retraction on expiry (invector-streamkit)"
    }
    fn variants(&self) -> &'static [Variant] {
        const VARIANTS: [Variant; 2] = [Variant::Serial, Variant::Invec];
        &VARIANTS
    }
    fn tiling(&self) -> TilingMode {
        TilingMode::Frontier
    }
    fn tolerance(&self) -> f64 {
        // Window state is integer slots end to end; the engine and the
        // simulator must agree on every one of them.
        0.0
    }
    fn prepare(&self, spec: &RunSpec) -> Result<Box<dyn Workload>, String> {
        if spec.rows == 0 || spec.cardinality == 0 {
            return Err("window streaming needs rows >= 1 and cardinality >= 1".into());
        }
        let keys = (spec.cardinality as u32).min(invector_streamkit::MAX_KEYS);
        let mut rng = EventRng::new(INPUT_SEED ^ 0x77);
        let data: Vec<(u32, i32)> =
            (0..spec.rows).map(|_| (rng.next() as u32 % keys, rng.next() as i32)).collect();
        let counted: Vec<(u32, u32)> =
            data.iter().map(|&(k, v)| invector_streamkit::window_data(k, v)).collect();
        // The timed tenant sees the same data with a watermark advance
        // spliced in every 97 events.
        let mut timed = Vec::with_capacity(data.len() + data.len() / 97 + 1);
        let mut watermark = 0u32;
        for (i, &(k, v)) in data.iter().enumerate() {
            if i % 97 == 96 {
                watermark += 1 + (rng.next() as u32 % 3);
                timed.push(invector_streamkit::window_advance(keys, watermark));
            }
            timed.push(invector_streamkit::window_data(k, v));
        }
        use invector_serve::OpKind;
        let tenants = vec![
            WindowTenant {
                name: "sums",
                op: OpKind::Add,
                buckets: 8,
                width: 64,
                timed: false,
                events: counted.clone(),
            },
            WindowTenant {
                name: "mins",
                op: OpKind::Min,
                buckets: 4,
                width: 32,
                timed: false,
                events: counted,
            },
            WindowTenant {
                name: "maxs",
                op: OpKind::Max,
                buckets: 6,
                width: 4,
                timed: true,
                events: timed,
            },
        ];
        Ok(Box::new(StreamWindowWorkload { keys, tenants }))
    }
}

impl StreamWindowWorkload {
    fn agg_op(op: invector_serve::OpKind) -> invector_streamkit::AggOp {
        match op {
            invector_serve::OpKind::Add => invector_streamkit::AggOp::Add,
            invector_serve::OpKind::Min => invector_streamkit::AggOp::Min,
            invector_serve::OpKind::Max => invector_streamkit::AggOp::Max,
        }
    }

    /// Serial reference: the plain-loop simulator, one per tenant, full
    /// slot images concatenated.
    fn run_serial(&self) -> Vec<f64> {
        let mut values = Vec::new();
        for t in &self.tenants {
            let mut sim = invector_streamkit::reference::WindowSim::new(
                self.keys as usize,
                t.buckets as usize,
                u64::from(t.width),
                t.timed,
                Self::agg_op(t.op),
            );
            sim.apply(&t.events);
            values.extend(sim.slots.iter().map(|&s| f64::from(s)));
        }
        values
    }

    /// Served path: one core, one window table per tenant, events as
    /// ordinary updates.
    fn run_served(&self, policy: &ExecPolicy) -> Result<Vec<f64>, String> {
        use invector_serve::{
            LocalClient, ServeClient, ServeConfig, ServerCore, TableSpec, Update,
        };
        let config = {
            let mut config = ServeConfig::new(
                self.tenants
                    .iter()
                    .map(|t| {
                        TableSpec::window(t.name, t.op, self.keys, t.buckets, t.width, t.timed)
                    })
                    .collect(),
            );
            config.quantum = SERVE_QUANTUM;
            config.threads = policy.threads.max(1);
            config.backend = policy.backend;
            config
        };
        let core = ServerCore::new(config)?;
        let mut client = LocalClient::new(core);
        for (table, t) in self.tenants.iter().enumerate() {
            let updates: Vec<Update> = t
                .events
                .iter()
                .enumerate()
                .map(|(seq, &(idx, bits))| Update { seq: seq as u64, idx, bits })
                .collect();
            for chunk in updates.chunks(SERVE_CHUNK) {
                client.submit_all(table as u16, chunk)?;
            }
        }
        client.flush()?;
        let mut values = Vec::new();
        for table in 0..self.tenants.len() {
            values.extend(client.snapshot(table as u16)?.data.to_f64());
        }
        Ok(values)
    }
}

impl Workload for StreamWindowWorkload {
    fn describe(&self) -> String {
        format!(
            "{} data events over {} keys -> {} window tenants (add/min/max, count + watermark)",
            self.tenants[0].events.len(),
            self.keys,
            self.tenants.len()
        )
    }
    fn run(&self, variant: Variant, policy: &ExecPolicy) -> RunRecord {
        let instr_before = invector_simd::count::read();
        let start = Instant::now();
        let values = match variant {
            Variant::Serial => self.run_serial(),
            _ => self
                .run_served(policy)
                .unwrap_or_else(|e| panic!("window streaming workload failed: {e}")),
        };
        let timings = Timings { compute: start.elapsed(), ..Timings::default() };
        RunRecord {
            app: "stream-window",
            variant,
            label: variant.label(TilingMode::Frontier),
            values,
            iterations: 1,
            timings,
            instructions: invector_simd::count::read().wrapping_sub(instr_before),
            utilization: None,
            depth: None,
            threads: policy.threads.max(1),
            backend: policy.backend.resolve(),
            updates: self.tenants.iter().map(|t| t.events.len() as u64).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_app_prepares_at_tiny_scale_and_runs_its_serial_baseline() {
        let spec = RunSpec::tiny();
        for app in crate::registry::all() {
            let workload = app.prepare(&spec).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(!workload.describe().is_empty());
            let policy = ExecPolicy::default().backend(invector_core::BackendChoice::Portable);
            let r = workload.run(app.variants()[0], &policy);
            assert_eq!(r.app, app.name());
            assert!(!r.values.is_empty(), "{} produced no values", app.name());
            assert!(r.values.iter().all(|v| !v.is_nan()), "{} produced NaN", app.name());
        }
    }

    #[test]
    fn served_snapshot_matches_the_serial_fold_bitwise() {
        let spec = RunSpec::tiny();
        let workload = ServeApp.prepare(&spec).expect("prepare");
        let policy = ExecPolicy::default().backend(invector_core::BackendChoice::Portable);
        let serial = workload.run(Variant::Serial, &policy);
        let served = workload.run(Variant::Invec, &policy);
        serial
            .agrees_with(&served, ServeApp.tolerance())
            .expect("serving layer diverged from the serial fold");
        assert!(served.updates > 0 && served.mupdates_per_sec().is_some());
    }

    #[test]
    fn recovered_snapshot_matches_the_serial_fold_bitwise() {
        let spec = RunSpec::tiny();
        let workload = ServeRecoverApp.prepare(&spec).expect("prepare");
        let policy = ExecPolicy::default().backend(invector_core::BackendChoice::Portable);
        let serial = workload.run(Variant::Serial, &policy);
        let recovered = workload.run(Variant::Invec, &policy);
        serial
            .agrees_with(&recovered, ServeRecoverApp.tolerance())
            .expect("crash recovery diverged from the serial fold");
    }

    #[test]
    fn streamed_graph_snapshots_match_the_from_scratch_recompute_bitwise() {
        let spec = RunSpec::tiny();
        let workload = StreamGraphApp.prepare(&spec).expect("prepare");
        let policy = ExecPolicy::default().backend(invector_core::BackendChoice::Portable);
        let serial = workload.run(Variant::Serial, &policy);
        let served = workload.run(Variant::Invec, &policy);
        serial
            .agrees_with(&served, StreamGraphApp.tolerance())
            .expect("incremental graph engines diverged from the from-scratch recompute");
        assert!(served.updates > 0 && served.mupdates_per_sec().is_some());
    }

    #[test]
    fn streamed_window_slot_images_match_the_simulator_bitwise() {
        let spec = RunSpec::tiny();
        let workload = StreamWindowApp.prepare(&spec).expect("prepare");
        let policy = ExecPolicy::default().backend(invector_core::BackendChoice::Portable);
        let serial = workload.run(Variant::Serial, &policy);
        let served = workload.run(Variant::Invec, &policy);
        serial
            .agrees_with(&served, StreamWindowApp.tolerance())
            .expect("window engine diverged from the serial simulator");
        assert!(served.updates > 0 && served.mupdates_per_sec().is_some());
    }

    #[test]
    fn unknown_dataset_is_rejected_with_the_registered_names() {
        let spec = RunSpec { dataset: Some("not-a-graph".into()), ..RunSpec::tiny() };
        let err = PageRankApp.prepare(&spec).err().expect("unknown dataset must not prepare");
        assert!(err.contains("higgs-twitter"), "{err}");
    }
}
