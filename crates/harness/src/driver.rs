//! The generic smoke driver: runs every registered cell
//! (application × variant × backend) at a given spec and cross-checks each
//! run's values against the application's serial portable reference.

use std::time::Duration;

use invector_core::tune::PolicyHandle;
use invector_core::{Backend, BackendChoice};
use invector_kernels::{ExecPolicy, Variant};

use crate::kernel::Kernel;
use crate::registry;
use crate::spec::RunSpec;

/// One executed cell of the smoke matrix.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Application name.
    pub app: &'static str,
    /// Input description from [`Workload::describe`](crate::Workload::describe).
    pub input: String,
    /// Variant that ran.
    pub variant: Variant,
    /// Backend the run resolved to.
    pub backend: Backend,
    /// Worker threads requested.
    pub threads: usize,
    /// Order-sensitive value digest ([`RunRecord::checksum`](crate::RunRecord::checksum)).
    pub checksum: f64,
    /// Wall time of the run.
    pub elapsed: Duration,
    /// Throughput in million updates per second, when the application
    /// reports update counts ([`RunRecord::mupdates_per_sec`](crate::RunRecord::mupdates_per_sec)).
    pub mupdates: Option<f64>,
    /// `None` when the cell's values agree with the serial portable
    /// reference within the application's tolerance; otherwise the
    /// disagreement (or preparation failure) message.
    pub error: Option<String>,
}

/// Outcome of [`run_all`]: every cell, in registry order.
#[derive(Debug, Clone, Default)]
pub struct SmokeReport {
    /// All executed cells.
    pub cells: Vec<CellReport>,
}

impl SmokeReport {
    /// Cells whose values disagreed with the reference (or failed to run).
    pub fn failures(&self) -> impl Iterator<Item = &CellReport> {
        self.cells.iter().filter(|c| c.error.is_some())
    }

    /// `true` when every cell agreed with its reference.
    pub fn all_passed(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Total wall time across every cell.
    pub fn total_elapsed(&self) -> Duration {
        self.cells.iter().map(|c| c.elapsed).sum()
    }

    /// Best observed throughput per application, in cell order, for the
    /// summary table. Applications that report no update counts (so every
    /// cell's `mupdates` is `None`) are omitted — printing a dash for them
    /// would bury the serve-backed rows this summary exists to surface.
    pub fn app_throughput(&self) -> Vec<(&'static str, f64)> {
        let mut best: Vec<(&'static str, f64)> = Vec::new();
        for cell in &self.cells {
            let Some(m) = cell.mupdates else { continue };
            match best.iter_mut().find(|(app, _)| *app == cell.app) {
                Some((_, peak)) => *peak = peak.max(m),
                None => best.push((cell.app, m)),
            }
        }
        best
    }
}

/// The backend requests the smoke matrix covers on this host: always the
/// portable model, plus every native ISA the CPU can execute (AVX-512,
/// AVX2, NEON), each forced explicitly so the matrix exercises the
/// narrower backends even when a wider one would win auto-resolution.
pub fn backend_matrix() -> Vec<BackendChoice> {
    let mut choices = vec![BackendChoice::Portable];
    for (backend, choice) in [
        (Backend::Avx512, BackendChoice::Avx512),
        (Backend::Avx2, BackendChoice::Avx2),
        (Backend::Neon, BackendChoice::Neon),
    ] {
        if backend.available() {
            choices.push(choice);
        }
    }
    choices
}

/// Runs the full registry at `spec` over [`backend_matrix`] — see
/// [`run_all_matrix`].
pub fn run_all(spec: &RunSpec, threads: usize) -> SmokeReport {
    run_all_matrix(spec, threads, &backend_matrix())
}

/// Runs the full registry at `spec`: for every application, a serial
/// portable reference, then every legal variant on every backend request
/// in `choices` at one thread, then — when `threads > 1` and the
/// application has an engine path — the scalar and in-vector variants on
/// the engine. Every cell's values are checked against the reference
/// within the application's tolerance.
pub fn run_all_matrix(spec: &RunSpec, threads: usize, choices: &[BackendChoice]) -> SmokeReport {
    run_all_apps(registry::all(), spec, threads, choices)
}

/// [`run_all_matrix`] restricted to an explicit application subset — the
/// `run-all --app <name>` path, which lets CI smoke a single registry
/// entry (e.g. the streamkit apps) without paying for the full matrix.
pub fn run_all_apps(
    apps: &[&'static dyn Kernel],
    spec: &RunSpec,
    threads: usize,
    choices: &[BackendChoice],
) -> SmokeReport {
    let mut cells = Vec::new();
    for app in apps {
        let workload = match app.prepare(spec) {
            Ok(w) => w,
            Err(e) => {
                cells.push(CellReport {
                    app: app.name(),
                    input: String::new(),
                    variant: app.variants()[0],
                    backend: Backend::Portable,
                    threads: 1,
                    checksum: f64::NAN,
                    elapsed: Duration::ZERO,
                    mupdates: None,
                    error: Some(format!("prepare failed: {e}")),
                });
                continue;
            }
        };
        let input = workload.describe();
        let reference = workload
            .run(app.variants()[0], &ExecPolicy::default().backend(BackendChoice::Portable));

        // Each cell's policy sits behind the same swappable handle the
        // serving layer routes through; the smoke matrix just never
        // installs a replacement.
        let mut policies = Vec::new();
        for &choice in choices {
            for &variant in app.variants() {
                policies
                    .push((variant, PolicyHandle::fixed(ExecPolicy::default().backend(choice))));
            }
        }
        if threads > 1 && app.supports_threads() {
            for &variant in app.variants() {
                if matches!(variant, Variant::Serial | Variant::Invec) {
                    policies
                        .push((variant, PolicyHandle::fixed(ExecPolicy::with_threads(threads))));
                }
            }
        }

        for (variant, handle) in policies {
            let r = workload.run(variant, &handle.exec());
            r.publish_obs();
            cells.push(CellReport {
                app: app.name(),
                input: input.clone(),
                variant,
                backend: r.backend,
                threads: r.threads,
                checksum: r.checksum(),
                elapsed: r.elapsed(),
                mupdates: r.mupdates_per_sec(),
                error: r.agrees_with(&reference, app.tolerance()).err(),
            });
        }
    }
    SmokeReport { cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_matrix_always_includes_portable_first() {
        let m = backend_matrix();
        assert_eq!(m[0], BackendChoice::Portable);
        assert!(m.len() <= 1 + Backend::ALL.len());
        // Every entry past the head must resolve to a distinct native ISA.
        for choice in &m[1..] {
            assert!(choice.resolve().is_native());
        }
    }
}
