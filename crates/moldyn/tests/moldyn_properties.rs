//! Property tests for the molecular-dynamics substrate.

use proptest::prelude::*;

use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::group_by_two_keys;
use invector_moldyn::force::{forces_grouped, forces_invec, forces_masked, forces_serial, Forces};
use invector_moldyn::neighbor::{build_pairs, PairList};
use invector_moldyn::Molecules;

/// Random molecule clouds in a box, min-separated by construction rejection.
fn molecules_strategy() -> impl Strategy<Value = Molecules> {
    prop::collection::vec((0u32..100, 0u32..100, 0u32..100), 2..60).prop_map(|cells| {
        // Snap to a grid with jitter so molecules never coincide exactly.
        let n = cells.len();
        let mut m = Molecules {
            px: Vec::with_capacity(n),
            py: Vec::with_capacity(n),
            pz: Vec::with_capacity(n),
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
            box_size: 20.0,
        };
        let mut seen = std::collections::HashSet::new();
        for (x, y, z) in cells {
            if seen.insert((x % 20, y % 20, z % 20)) {
                m.px.push((x % 20) as f32 + 0.3);
                m.py.push((y % 20) as f32 + 0.3);
                m.pz.push((z % 20) as f32 + 0.3);
            }
        }
        let n = m.px.len();
        m.vx.truncate(n);
        m.vy.truncate(n);
        m.vz.truncate(n);
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn neighbor_list_matches_brute_force(m in molecules_strategy(), cutoff_x10 in 5u32..40) {
        let cutoff = cutoff_x10 as f32 / 10.0;
        let pairs = build_pairs(&m, cutoff);
        let got: std::collections::BTreeSet<(i32, i32)> =
            pairs.i.iter().zip(&pairs.j).map(|(&a, &b)| (a, b)).collect();
        prop_assert_eq!(got.len(), pairs.len(), "duplicates emitted");
        let mut expect = std::collections::BTreeSet::new();
        for a in 0..m.len() {
            for b in a + 1..m.len() {
                let d2 = (m.px[a] - m.px[b]).powi(2)
                    + (m.py[a] - m.py[b]).powi(2)
                    + (m.pz[a] - m.pz[b]).powi(2);
                if d2 <= cutoff * cutoff {
                    expect.insert((a as i32, b as i32));
                }
            }
        }
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn newtons_third_law_holds_for_all_kernels(m in molecules_strategy()) {
        if m.len() < 2 {
            return Ok(());
        }
        let cutoff = 3.0;
        let pairs = build_pairs(&m, cutoff);
        let n = m.len();

        let mut serial = Forces::zeroed(n);
        forces_serial(&m, &pairs, cutoff, &mut serial);
        let net: f32 = serial.fx.iter().sum();
        // Forces come in equal-and-opposite pairs: the net must be tiny
        // relative to the largest component.
        let max = serial.fx.iter().fold(0.0f32, |a, &b| a.max(b.abs())).max(1.0);
        prop_assert!(net.abs() <= 1e-2 * max * n as f32, "net {net} max {max}");

        // All kernels agree with the serial forces.
        let close = |a: &Forces, b: &Forces| -> bool {
            a.fx.iter().zip(&b.fx).chain(a.fy.iter().zip(&b.fy)).chain(a.fz.iter().zip(&b.fz))
                .all(|(x, y)| (x - y).abs() <= 1e-2 * (x.abs() + y.abs() + 1.0))
        };
        let mut invec = Forces::zeroed(n);
        let mut depth = DepthHistogram::new();
        forces_invec(invector_core::backend::current(), &m, &pairs, cutoff, &mut invec, &mut depth);
        prop_assert!(close(&invec, &serial), "invec diverged");

        let mut masked = Forces::zeroed(n);
        let mut scratch = vec![0i32; n];
        let mut util = Utilization::default();
        forces_masked(&m, &pairs, cutoff, &mut masked, &mut scratch, &mut util);
        prop_assert!(close(&masked, &serial), "masked diverged");

        let positions: Vec<u32> = (0..pairs.len() as u32).collect();
        let grouping = group_by_two_keys(&positions, &pairs.i, &pairs.j);
        let mut grouped = Forces::zeroed(n);
        forces_grouped(&m, &pairs, &grouping, cutoff, &mut grouped);
        prop_assert!(close(&grouped, &serial), "grouped diverged");
    }

    #[test]
    fn force_kernels_tolerate_stale_pairs(m in molecules_strategy()) {
        // Pairs built with a larger cutoff than the force cutoff: out-of-
        // range pairs (as after drift between rebuilds) contribute nothing.
        if m.len() < 2 {
            return Ok(());
        }
        let pairs = build_pairs(&m, 5.0);
        let n = m.len();
        let mut wide = Forces::zeroed(n);
        forces_serial(&m, &pairs, 3.0, &mut wide);
        let tight_pairs = build_pairs(&m, 3.0);
        let mut tight = Forces::zeroed(n);
        forces_serial(&m, &tight_pairs, 3.0, &mut tight);
        for (a, b) in wide.fx.iter().zip(&tight.fx) {
            prop_assert!((a - b).abs() <= 1e-3 * (a.abs() + b.abs() + 1.0));
        }
    }

    #[test]
    fn empty_and_singleton_systems_are_stable(k in 0usize..2) {
        let m = Molecules {
            px: vec![1.0; k],
            py: vec![1.0; k],
            pz: vec![1.0; k],
            vx: vec![0.0; k],
            vy: vec![0.0; k],
            vz: vec![0.0; k],
            box_size: 5.0,
        };
        let pairs = build_pairs(&m, 3.0);
        prop_assert_eq!(pairs.len(), 0);
        let mut f = Forces::zeroed(k);
        forces_serial(&m, &PairList::default(), 3.0, &mut f);
        prop_assert!(f.fx.iter().all(|&x| x == 0.0));
    }
}
