//! Energy diagnostics for the Moldyn simulation.
//!
//! The original Moldyn code reports kinetic and potential energy per
//! iteration; beyond matching the paper's application, the total energy is
//! the standard physical validation of a force kernel — a correct
//! integrator conserves it (up to the explicit-Euler drift of the small
//! time step).

use crate::input::Molecules;
use crate::neighbor::PairList;

/// Energy snapshot of a molecular system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Energy {
    /// Kinetic energy `Σ ½·v²` (unit mass).
    pub kinetic: f64,
    /// Lennard-Jones potential energy over the pair list (ε = σ = 1).
    pub potential: f64,
}

impl Energy {
    /// Total mechanical energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.potential
    }
}

/// Computes the kinetic energy of the system.
pub fn kinetic_energy(m: &Molecules) -> f64 {
    let mut ke = 0.0f64;
    for k in 0..m.len() {
        let v2 = f64::from(m.vx[k]) * f64::from(m.vx[k])
            + f64::from(m.vy[k]) * f64::from(m.vy[k])
            + f64::from(m.vz[k]) * f64::from(m.vz[k]);
        ke += 0.5 * v2;
    }
    ke
}

/// Computes the Lennard-Jones potential energy `Σ 4(r⁻¹² − r⁻⁶)` over the
/// in-cutoff pairs.
pub fn potential_energy(m: &Molecules, pairs: &PairList, cutoff: f32) -> f64 {
    let cutoff2 = f64::from(cutoff) * f64::from(cutoff);
    let mut pe = 0.0f64;
    for (&a, &b) in pairs.i.iter().zip(&pairs.j) {
        let (a, b) = (a as usize, b as usize);
        let dx = f64::from(m.px[a]) - f64::from(m.px[b]);
        let dy = f64::from(m.py[a]) - f64::from(m.py[b]);
        let dz = f64::from(m.pz[a]) - f64::from(m.pz[b]);
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 <= cutoff2 && r2 > 0.0 {
            let sr6 = 1.0 / (r2 * r2 * r2);
            pe += 4.0 * (sr6 * sr6 - sr6);
        }
    }
    pe
}

/// Computes the full energy snapshot.
pub fn energy(m: &Molecules, pairs: &PairList, cutoff: f32) -> Energy {
    Energy { kinetic: kinetic_energy(m), potential: potential_energy(m, pairs, cutoff) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{fcc_lattice, CUTOFF};
    use crate::neighbor::build_pairs;
    use crate::sim::simulate;
    use invector_kernels::Variant;

    #[test]
    fn kinetic_energy_of_resting_system_is_zero() {
        let mut m = fcc_lattice(2, 1);
        m.vx.fill(0.0);
        m.vy.fill(0.0);
        m.vz.fill(0.0);
        assert_eq!(kinetic_energy(&m), 0.0);
    }

    #[test]
    fn lj_potential_minimum_at_r_min() {
        // Two molecules at r = 2^(1/6): U = -1 exactly.
        let r = 2.0f32.powf(1.0 / 6.0);
        let m = Molecules {
            px: vec![0.0, r],
            py: vec![0.0; 2],
            pz: vec![0.0; 2],
            vx: vec![0.0; 2],
            vy: vec![0.0; 2],
            vz: vec![0.0; 2],
            box_size: 10.0,
        };
        let pairs = PairList { i: vec![0], j: vec![1] };
        let pe = potential_energy(&m, &pairs, CUTOFF);
        assert!((pe + 1.0).abs() < 1e-5, "U(r_min) = {pe}");
    }

    #[test]
    fn out_of_cutoff_pairs_contribute_nothing() {
        let m = Molecules {
            px: vec![0.0, 10.0],
            py: vec![0.0; 2],
            pz: vec![0.0; 2],
            vx: vec![0.0; 2],
            vy: vec![0.0; 2],
            vz: vec![0.0; 2],
            box_size: 20.0,
        };
        let pairs = PairList { i: vec![0], j: vec![1] };
        assert_eq!(potential_energy(&m, &pairs, CUTOFF), 0.0);
    }

    #[test]
    fn energy_is_approximately_conserved_over_a_short_run() {
        let initial = fcc_lattice(3, 77);
        let pairs = build_pairs(&initial, CUTOFF);
        let e0 = energy(&initial, &pairs, CUTOFF);

        let result = simulate(&initial, Variant::Invec, 20);
        let pairs_end = build_pairs(&result.molecules, CUTOFF);
        let e1 = energy(&result.molecules, &pairs_end, CUTOFF);

        // Explicit Euler with dt = 1e-3 over 20 steps: small relative drift.
        let scale = e0.kinetic.abs() + e0.potential.abs() + 1.0;
        let drift = (e1.total() - e0.total()).abs() / scale;
        assert!(drift < 0.05, "energy drift {drift} (e0 {e0:?}, e1 {e1:?})");
    }

    #[test]
    fn energy_identical_across_variants() {
        let initial = fcc_lattice(2, 78);
        let mut totals = Vec::new();
        for variant in [Variant::Serial, Variant::Invec, Variant::Masked, Variant::Grouped] {
            let r = simulate(&initial, variant, 10);
            let pairs = build_pairs(&r.molecules, CUTOFF);
            totals.push(energy(&r.molecules, &pairs, CUTOFF).total());
        }
        for t in &totals[1..] {
            assert!((t - totals[0]).abs() < 1e-2 * (totals[0].abs() + 1.0), "{t} vs {}", totals[0]);
        }
    }
}
