//! The Moldyn simulation driver (Figure 12's experimental setup).
//!
//! Each iteration updates coordinates, evaluates pair forces, and updates
//! velocities. The neighbor list is rebuilt every
//! [`REBUILD_INTERVAL`] iterations; the paper charges that rebuild
//! (plus tiling, which our cell-list construction already performs by
//! emitting pairs in cell order) to all variants, and the grouped variant
//! additionally re-groups after every rebuild.

use std::time::Instant;

use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::{group_by_two_keys, Grouping};
use invector_kernels::{ExecPolicy, Timings, Variant};

use crate::force::{
    forces_grouped, forces_invec, forces_masked, forces_parallel, forces_serial, Forces,
};
use crate::input::{Molecules, CUTOFF};
use crate::neighbor::{build_pairs, PairList};

/// Iterations between neighbor-list rebuilds (the paper's setting).
pub const REBUILD_INTERVAL: u32 = 20;

/// Integration time step (reduced units).
pub const DT: f32 = 0.001;

/// Simulation outcome: final state plus the Figure 12 timing breakdown.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Final molecule state.
    pub molecules: Molecules,
    /// Iterations executed.
    pub iterations: u32,
    /// Phase breakdown (`tiling` = neighbor-list rebuilds, `grouping` =
    /// conflict-free grouping, `compute` = forces + integration).
    pub timings: Timings,
    /// Interaction pairs in the final neighbor list.
    pub num_pairs: usize,
    /// Modeled instruction count of the force evaluations (SIMD
    /// instructions for vectorized variants, the scalar cost model for the
    /// serial baselines).
    pub instructions: u64,
    /// Masked-variant SIMD utilization.
    pub utilization: Option<Utilization>,
    /// In-vector conflict-depth histogram.
    pub depth: Option<DepthHistogram>,
    /// Worker threads used by the force phase (1 = serial driver).
    pub threads: usize,
}

/// Runs `iterations` Moldyn steps with the chosen strategy, starting from
/// `initial`.
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn simulate(initial: &Molecules, variant: Variant, iterations: u32) -> SimResult {
    simulate_with_policy(initial, variant, iterations, &ExecPolicy::default())
}

/// [`simulate`] with an explicit [`ExecPolicy`]: when `policy.threads > 1`
/// the force phase fans out over the persistent thread pool
/// ([`forces_parallel`]), with the per-worker strategy still chosen by
/// `variant`. Grouped and masked variants keep their serial drivers (their
/// conflict-resolution state is whole-array), so thread counts apply to the
/// serial and in-vector paths.
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn simulate_with_policy(
    initial: &Molecules,
    variant: Variant,
    iterations: u32,
    policy: &ExecPolicy,
) -> SimResult {
    assert!(!initial.is_empty(), "simulation needs molecules");
    let mut m = initial.clone();
    let n = m.len();
    let mut forces = Forces::zeroed(n);
    let mut scratch = vec![0i32; n];
    let mut timings = Timings::default();
    let mut utilization = Utilization::default();
    let mut depth = DepthHistogram::new();
    let mut pairs = PairList::default();
    let mut grouping: Option<Grouping> = None;
    let mut threads_used = 1usize;
    let parallel = policy.threads > 1
        && matches!(variant, Variant::Serial | Variant::SerialTiled | Variant::Invec);
    // Resolved once per run: native AVX-512 when the policy allows and the
    // CPU supports it, else the portable model.
    let backend = policy.backend.resolve();
    let instr_before = invector_simd::count::read();

    for iter in 0..iterations {
        // Neighbor list rebuild (the "tiling" bar of Figure 12): cell-list
        // construction already emits pairs in cache-friendly cell order.
        if iter % REBUILD_INTERVAL == 0 {
            let t = Instant::now();
            pairs = build_pairs(&m, CUTOFF);
            timings.tiling += t.elapsed();
            if variant == Variant::Grouped {
                let t = Instant::now();
                let positions: Vec<u32> = (0..pairs.len() as u32).collect();
                grouping = Some(group_by_two_keys(&positions, &pairs.i, &pairs.j));
                timings.grouping += t.elapsed();
            }
        }

        let t = Instant::now();
        // Coordinate update (regular SIMD: aligned loads/stores, no
        // conflicts — the easy part of the simulation).
        axpy(&mut m.px, &m.vx, DT);
        axpy(&mut m.py, &m.vy, DT);
        axpy(&mut m.pz, &m.vz, DT);
        // Force evaluation.
        forces.clear();
        if parallel {
            let (d, used) = forces_parallel(&m, &pairs, CUTOFF, &mut forces, variant, policy);
            if let Some(d) = d {
                depth.merge(&d);
            }
            threads_used = threads_used.max(used);
        } else {
            match variant {
                Variant::Serial | Variant::SerialTiled => {
                    forces_serial(&m, &pairs, CUTOFF, &mut forces);
                }
                Variant::Invec => {
                    forces_invec(backend, &m, &pairs, CUTOFF, &mut forces, &mut depth);
                }
                Variant::Masked => {
                    forces_masked(&m, &pairs, CUTOFF, &mut forces, &mut scratch, &mut utilization);
                }
                Variant::Grouped => forces_grouped(
                    &m,
                    &pairs,
                    grouping.as_ref().expect("grouping built at rebuild"),
                    CUTOFF,
                    &mut forces,
                ),
            }
        }
        // Velocity update (regular SIMD).
        axpy(&mut m.vx, &forces.fx, DT);
        axpy(&mut m.vy, &forces.fy, DT);
        axpy(&mut m.vz, &forces.fz, DT);
        timings.compute += t.elapsed();
    }

    SimResult {
        molecules: m,
        iterations,
        timings,
        num_pairs: pairs.len(),
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: (variant == Variant::Masked).then_some(utilization),
        depth: (variant == Variant::Invec).then_some(depth),
        threads: threads_used,
    }
}

/// Vectorized `out[k] += scale * addend[k]` with a scalar tail — the
/// regular (conflict-free) SIMD pattern of the integration phases.
fn axpy(out: &mut [f32], addend: &[f32], scale: f32) {
    use invector_simd::F32x16;
    debug_assert_eq!(out.len(), addend.len());
    let vscale = F32x16::splat(scale);
    let mut k = 0;
    while k + 16 <= out.len() {
        let a = F32x16::load(&out[k..]);
        let b = F32x16::load(&addend[k..]);
        (a + b * vscale).store(&mut out[k..]);
        k += 16;
    }
    for k in k..out.len() {
        out[k] += addend[k] * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::fcc_lattice;

    #[test]
    fn axpy_matches_scalar_including_tail() {
        let mut a: Vec<f32> = (0..37).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..37).map(|i| (i * 2) as f32).collect();
        let mut expect = a.clone();
        for (x, y) in expect.iter_mut().zip(&b) {
            *x += y * 0.5;
        }
        axpy(&mut a, &b, 0.5);
        assert_eq!(a, expect);
    }

    fn max_velocity_delta(a: &Molecules, b: &Molecules) -> f32 {
        a.vx.iter()
            .zip(&b.vx)
            .chain(a.vy.iter().zip(&b.vy))
            .chain(a.vz.iter().zip(&b.vz))
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn all_variants_track_the_serial_trajectory() {
        let initial = fcc_lattice(3, 13);
        let reference = simulate(&initial, Variant::Serial, 20);
        for variant in [Variant::Invec, Variant::Masked, Variant::Grouped] {
            let r = simulate(&initial, variant, 20);
            let dv = max_velocity_delta(&r.molecules, &reference.molecules);
            assert!(dv < 1e-2, "{variant}: max velocity delta {dv}");
            assert_eq!(r.num_pairs, reference.num_pairs, "{variant}");
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let initial = fcc_lattice(2, 14);
        let a = simulate(&initial, Variant::Invec, 10);
        let b = simulate(&initial, Variant::Invec, 10);
        assert_eq!(a.molecules, b.molecules);
    }

    #[test]
    fn neighbor_rebuild_counts_as_tiling_time() {
        let initial = fcc_lattice(2, 15);
        let r = simulate(&initial, Variant::Serial, 5);
        assert!(r.timings.tiling > std::time::Duration::ZERO);
        assert_eq!(r.timings.grouping, std::time::Duration::ZERO);
        let g = simulate(&initial, Variant::Grouped, 5);
        assert!(g.timings.grouping > std::time::Duration::ZERO);
    }

    #[test]
    fn lattice_stays_bound_over_short_run() {
        // The FCC lattice is near equilibrium: 20 small-dt steps should not
        // blow molecules far out of the box.
        let initial = fcc_lattice(3, 16);
        let r = simulate(&initial, Variant::Invec, 20);
        let bound = initial.box_size * 1.5;
        assert!(r.molecules.px.iter().all(|&x| (-bound..2.0 * bound).contains(&x)));
    }

    #[test]
    fn parallel_forces_track_the_serial_trajectory() {
        let initial = fcc_lattice(3, 21);
        let reference = simulate(&initial, Variant::Serial, 20);
        for threads in [2, 3, 8] {
            let policy = ExecPolicy::with_threads(threads);
            for variant in [Variant::Serial, Variant::Invec] {
                let r = simulate_with_policy(&initial, variant, 20, &policy);
                let dv = max_velocity_delta(&r.molecules, &reference.molecules);
                assert!(dv < 1e-2, "{variant} x{threads}: max velocity delta {dv}");
                assert!(r.threads > 1, "{variant} x{threads}: pool unused");
                assert_eq!(r.num_pairs, reference.num_pairs);
            }
        }
    }

    #[test]
    fn parallel_simulation_is_deterministic_and_reports_depth() {
        let initial = fcc_lattice(3, 22);
        let policy = ExecPolicy::with_threads(4);
        let a = simulate_with_policy(&initial, Variant::Invec, 10, &policy);
        let b = simulate_with_policy(&initial, Variant::Invec, 10, &policy);
        assert_eq!(a.molecules, b.molecules, "task-order fold must be deterministic");
        assert!(a.depth.expect("depth").invocations() > 0);
    }

    #[test]
    fn masked_utilization_and_invec_depth_are_reported() {
        let initial = fcc_lattice(2, 17);
        let mr = simulate(&initial, Variant::Masked, 3);
        assert!(mr.utilization.expect("utilization").slots > 0);
        let ir = simulate(&initial, Variant::Invec, 3);
        assert!(ir.depth.expect("depth").invocations() > 0);
    }
}
