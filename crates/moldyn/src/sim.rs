//! The Moldyn simulation driver (Figure 12's experimental setup).
//!
//! Each iteration updates coordinates, evaluates pair forces, and updates
//! velocities. The neighbor list is rebuilt every
//! [`REBUILD_INTERVAL`] iterations; the paper charges that rebuild
//! (plus tiling, which our cell-list construction already performs by
//! emitting pairs in cell order) to all variants, and the grouped variant
//! additionally re-groups after every rebuild.

use std::time::Instant;

use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::{group_by_two_keys, Grouping};
use invector_kernels::{ExecPolicy, Timings, Variant};

use crate::force::{
    forces_grouped, forces_invec, forces_masked, forces_parallel, forces_serial, Forces,
};
use crate::input::{Molecules, CUTOFF};
use crate::neighbor::{build_pairs, PairList};

/// Iterations between neighbor-list rebuilds (the paper's setting).
pub const REBUILD_INTERVAL: u32 = 20;

/// Integration time step (reduced units).
pub const DT: f32 = 0.001;

/// Simulation outcome: final state plus the Figure 12 timing breakdown.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Final molecule state.
    pub molecules: Molecules,
    /// Iterations executed.
    pub iterations: u32,
    /// Phase breakdown (`tiling` = neighbor-list rebuilds, `grouping` =
    /// conflict-free grouping, `compute` = forces + integration).
    pub timings: Timings,
    /// Interaction pairs in the final neighbor list.
    pub num_pairs: usize,
    /// Modeled instruction count of the force evaluations (SIMD
    /// instructions for vectorized variants, the scalar cost model for the
    /// serial baselines).
    pub instructions: u64,
    /// Masked-variant SIMD utilization.
    pub utilization: Option<Utilization>,
    /// In-vector conflict-depth histogram.
    pub depth: Option<DepthHistogram>,
    /// Worker threads used by the force phase (1 = serial driver).
    pub threads: usize,
}

/// Runs `iterations` Moldyn steps with the chosen strategy, starting from
/// `initial`.
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn simulate(initial: &Molecules, variant: Variant, iterations: u32) -> SimResult {
    simulate_with_policy(initial, variant, iterations, &ExecPolicy::default())
}

/// The force-phase driver, decided **once** before the iteration loop
/// (instead of re-matching the variant/thread combination every step).
#[derive(Debug, Clone, Copy)]
enum ForcePath {
    /// Fan out over the execution engine's thread pool.
    Engine,
    /// Scalar pair loop.
    Scalar,
    /// In-vector reduction SIMD.
    Invec,
    /// Conflict-masking SIMD.
    Masked,
    /// Pre-grouped conflict-free SIMD.
    Grouped,
}

impl ForcePath {
    /// Picks the driver: the engine when the policy asks for threads and
    /// the variant's conflict handling composes with partitioning
    /// ([`Variant::runs_on_engine`] — grouped and masked keep whole-array
    /// inspector state, so they stay on their serial drivers).
    fn choose(variant: Variant, policy: &ExecPolicy) -> ForcePath {
        if policy.threads > 1 && variant.runs_on_engine() {
            return ForcePath::Engine;
        }
        match variant {
            Variant::Serial | Variant::SerialTiled => ForcePath::Scalar,
            Variant::Invec => ForcePath::Invec,
            Variant::Masked => ForcePath::Masked,
            Variant::Grouped => ForcePath::Grouped,
        }
    }
}

/// [`simulate`] with an explicit [`ExecPolicy`]: when `policy.threads > 1`
/// the force phase fans out over the persistent thread pool
/// ([`forces_parallel`]), with the per-worker strategy still chosen by
/// `variant`. Grouped and masked variants keep their serial drivers (their
/// conflict-resolution state is whole-array), so thread counts apply to the
/// serial and in-vector paths.
///
/// # Panics
///
/// Panics if `initial` is empty.
pub fn simulate_with_policy(
    initial: &Molecules,
    variant: Variant,
    iterations: u32,
    policy: &ExecPolicy,
) -> SimResult {
    assert!(!initial.is_empty(), "simulation needs molecules");
    let mut m = initial.clone();
    let n = m.len();
    let mut forces = Forces::zeroed(n);
    let mut scratch = vec![0i32; n];
    let mut timings = Timings::default();
    let mut utilization = Utilization::default();
    let mut depth = DepthHistogram::new();
    let mut pairs = PairList::default();
    let mut grouping: Option<Grouping> = None;
    let mut threads_used = 1usize;
    let path = ForcePath::choose(variant, policy);
    // Resolved once per run: native AVX-512 when the policy allows and the
    // CPU supports it, else the portable model.
    let backend = policy.backend.resolve();
    let instr_before = invector_simd::count::read();

    for iter in 0..iterations {
        // Neighbor list rebuild (the "tiling" bar of Figure 12): cell-list
        // construction already emits pairs in cache-friendly cell order.
        if iter % REBUILD_INTERVAL == 0 {
            let t = Instant::now();
            pairs = build_pairs(&m, CUTOFF);
            timings.tiling += t.elapsed();
            if variant.needs_grouping() {
                let t = Instant::now();
                let positions: Vec<u32> = (0..pairs.len() as u32).collect();
                grouping = Some(group_by_two_keys(&positions, &pairs.i, &pairs.j));
                timings.grouping += t.elapsed();
            }
        }

        let t = Instant::now();
        // Coordinate update (regular SIMD: aligned loads/stores, no
        // conflicts — the easy part of the simulation).
        axpy(&mut m.px, &m.vx, DT);
        axpy(&mut m.py, &m.vy, DT);
        axpy(&mut m.pz, &m.vz, DT);
        // Force evaluation.
        forces.clear();
        match path {
            ForcePath::Engine => {
                let (d, used) = forces_parallel(&m, &pairs, CUTOFF, &mut forces, variant, policy);
                if let Some(d) = d {
                    depth.merge(&d);
                }
                threads_used = threads_used.max(used);
            }
            ForcePath::Scalar => forces_serial(&m, &pairs, CUTOFF, &mut forces),
            ForcePath::Invec => forces_invec(backend, &m, &pairs, CUTOFF, &mut forces, &mut depth),
            ForcePath::Masked => {
                forces_masked(&m, &pairs, CUTOFF, &mut forces, &mut scratch, &mut utilization);
            }
            ForcePath::Grouped => forces_grouped(
                &m,
                &pairs,
                grouping.as_ref().expect("grouping built at rebuild"),
                CUTOFF,
                &mut forces,
            ),
        }
        // Velocity update (regular SIMD).
        axpy(&mut m.vx, &forces.fx, DT);
        axpy(&mut m.vy, &forces.fy, DT);
        axpy(&mut m.vz, &forces.fz, DT);
        timings.compute += t.elapsed();
    }

    SimResult {
        molecules: m,
        iterations,
        timings,
        num_pairs: pairs.len(),
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        utilization: variant.records_utilization().then_some(utilization),
        depth: variant.records_depth().then_some(depth),
        threads: threads_used,
    }
}

/// Vectorized `out[k] += scale * addend[k]` with a scalar tail — the
/// regular (conflict-free) SIMD pattern of the integration phases.
fn axpy(out: &mut [f32], addend: &[f32], scale: f32) {
    use invector_simd::F32x16;
    debug_assert_eq!(out.len(), addend.len());
    let vscale = F32x16::splat(scale);
    let mut k = 0;
    while k + 16 <= out.len() {
        let a = F32x16::load(&out[k..]);
        let b = F32x16::load(&addend[k..]);
        (a + b * vscale).store(&mut out[k..]);
        k += 16;
    }
    for k in k..out.len() {
        out[k] += addend[k] * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::fcc_lattice;

    #[test]
    fn axpy_matches_scalar_including_tail() {
        let mut a: Vec<f32> = (0..37).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..37).map(|i| (i * 2) as f32).collect();
        let mut expect = a.clone();
        for (x, y) in expect.iter_mut().zip(&b) {
            *x += y * 0.5;
        }
        axpy(&mut a, &b, 0.5);
        assert_eq!(a, expect);
    }

    // Cross-variant / parallel trajectory agreement against the serial
    // reference is covered centrally by `tests/registry_golden.rs`; these
    // tests pin determinism and the per-variant phase/stat bookkeeping.

    #[test]
    fn simulation_is_deterministic_serial_and_parallel() {
        let initial = fcc_lattice(3, 14);
        for threads in [1, 4] {
            let policy = ExecPolicy::with_threads(threads);
            let run = || simulate_with_policy(&initial, Variant::Invec, 10, &policy);
            let (a, b) = (run(), run());
            assert_eq!(a.molecules, b.molecules, "threads {threads}: fold must be deterministic");
            assert!(a.depth.expect("depth").invocations() > 0, "threads {threads}");
            if threads > 1 {
                assert!(a.threads > 1, "pool unused");
            }
        }
    }

    #[test]
    fn phase_and_stat_ownership_follow_variant_predicates() {
        let initial = fcc_lattice(2, 17);
        for variant in Variant::ALL {
            let r = simulate(&initial, variant, 5);
            assert!(r.timings.tiling > std::time::Duration::ZERO, "{variant}");
            assert_eq!(
                r.timings.grouping > std::time::Duration::ZERO,
                variant.needs_grouping(),
                "{variant}"
            );
            assert_eq!(r.utilization.is_some(), variant.records_utilization(), "{variant}");
            assert_eq!(r.depth.is_some(), variant.records_depth(), "{variant}");
        }
    }

    #[test]
    fn lattice_stays_bound_over_short_run() {
        // The FCC lattice is near equilibrium: 20 small-dt steps should not
        // blow molecules far out of the box.
        let initial = fcc_lattice(3, 16);
        let r = simulate(&initial, Variant::Invec, 20);
        let bound = initial.box_size * 1.5;
        assert!(r.molecules.px.iter().all(|&x| (-bound..2.0 * bound).contains(&x)));
    }
}
