//! Cell-list neighbor list construction.
//!
//! Builds the interaction pair list (the "sparse matrix" of the particle
//! simulation) by binning molecules into cells of at least the cutoff
//! radius and scanning the 27-cell neighborhood. Rebuilt every 20
//! iterations in the paper's experimental setup; the paper charges this
//! cost (together with tiling) to all variants alike.

use crate::input::Molecules;

/// An interaction pair list: parallel arrays of endpoints with `i < j`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairList {
    /// First endpoints.
    pub i: Vec<i32>,
    /// Second endpoints.
    pub j: Vec<i32>,
}

impl PairList {
    /// Number of interaction pairs.
    pub fn len(&self) -> usize {
        self.i.len()
    }

    /// `true` if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.i.is_empty()
    }
}

/// Builds the pair list of all molecule pairs within `cutoff` of each other
/// (no periodic images; the simulation box is open). Pairs are emitted with
/// `i < j`, ordered by cell traversal — the locality-friendly order the
/// paper's tiling produces.
///
/// # Panics
///
/// Panics if `cutoff <= 0`.
pub fn build_pairs(m: &Molecules, cutoff: f32) -> PairList {
    assert!(cutoff > 0.0, "cutoff must be positive");
    let n = m.len();
    if n == 0 {
        return PairList::default();
    }
    // Actual coordinate bounds (molecules may have drifted outside the box).
    let (mut lo, mut hi) = ([f32::INFINITY; 3], [f32::NEG_INFINITY; 3]);
    for k in 0..n {
        let p = [m.px[k], m.py[k], m.pz[k]];
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let cells_per_dim: [usize; 3] =
        std::array::from_fn(|d| (((hi[d] - lo[d]) / cutoff).floor() as usize + 1).max(1));
    let cell_of = |k: usize| -> usize {
        let cx = (((m.px[k] - lo[0]) / cutoff) as usize).min(cells_per_dim[0] - 1);
        let cy = (((m.py[k] - lo[1]) / cutoff) as usize).min(cells_per_dim[1] - 1);
        let cz = (((m.pz[k] - lo[2]) / cutoff) as usize).min(cells_per_dim[2] - 1);
        (cx * cells_per_dim[1] + cy) * cells_per_dim[2] + cz
    };
    // Counting-sort molecules into cells.
    let num_cells = cells_per_dim.iter().product::<usize>();
    let mut counts = vec![0u32; num_cells + 1];
    for k in 0..n {
        counts[cell_of(k) + 1] += 1;
    }
    for c in 0..num_cells {
        counts[c + 1] += counts[c];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut members = vec![0u32; n];
    for k in 0..n {
        let c = cell_of(k);
        members[cursor[c] as usize] = k as u32;
        cursor[c] += 1;
    }

    let cutoff2 = cutoff * cutoff;
    let mut pairs = PairList::default();
    let dist2 = |a: usize, b: usize| -> f32 {
        let dx = m.px[a] - m.px[b];
        let dy = m.py[a] - m.py[b];
        let dz = m.pz[a] - m.pz[b];
        dx * dx + dy * dy + dz * dz
    };
    for cx in 0..cells_per_dim[0] {
        for cy in 0..cells_per_dim[1] {
            for cz in 0..cells_per_dim[2] {
                let c = (cx * cells_per_dim[1] + cy) * cells_per_dim[2] + cz;
                let cell = &members[offsets[c] as usize..offsets[c + 1] as usize];
                // Pairs within the cell.
                for (a_idx, &a) in cell.iter().enumerate() {
                    for &b in &cell[a_idx + 1..] {
                        if dist2(a as usize, b as usize) <= cutoff2 {
                            pairs.i.push(a.min(b) as i32);
                            pairs.j.push(a.max(b) as i32);
                        }
                    }
                }
                // Pairs with forward neighbor cells (each cell pair visited once).
                for dx in 0..2usize {
                    for dy in -1i64..2 {
                        for dz in -1i64..2 {
                            if (dx, dy, dz) <= (0, 0, 0) {
                                continue;
                            }
                            let nx = cx as i64 + dx as i64;
                            let ny = cy as i64 + dy;
                            let nz = cz as i64 + dz;
                            if nx < 0
                                || ny < 0
                                || nz < 0
                                || nx >= cells_per_dim[0] as i64
                                || ny >= cells_per_dim[1] as i64
                                || nz >= cells_per_dim[2] as i64
                            {
                                continue;
                            }
                            let nc = ((nx as usize) * cells_per_dim[1] + ny as usize)
                                * cells_per_dim[2]
                                + nz as usize;
                            let other = &members[offsets[nc] as usize..offsets[nc + 1] as usize];
                            for &a in cell {
                                for &b in other {
                                    if dist2(a as usize, b as usize) <= cutoff2 {
                                        pairs.i.push(a.min(b) as i32);
                                        pairs.j.push(a.max(b) as i32);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{fcc_lattice, CUTOFF};

    /// O(n²) reference pair enumeration.
    fn brute_force(m: &Molecules, cutoff: f32) -> std::collections::BTreeSet<(i32, i32)> {
        let mut set = std::collections::BTreeSet::new();
        for a in 0..m.len() {
            for b in a + 1..m.len() {
                let dx = m.px[a] - m.px[b];
                let dy = m.py[a] - m.py[b];
                let dz = m.pz[a] - m.pz[b];
                if dx * dx + dy * dy + dz * dz <= cutoff * cutoff {
                    set.insert((a as i32, b as i32));
                }
            }
        }
        set
    }

    #[test]
    fn matches_brute_force_on_lattice() {
        let m = fcc_lattice(3, 5);
        let pairs = build_pairs(&m, CUTOFF);
        let expect = brute_force(&m, CUTOFF);
        let got: std::collections::BTreeSet<(i32, i32)> =
            pairs.i.iter().zip(&pairs.j).map(|(&a, &b)| (a, b)).collect();
        assert_eq!(got.len(), pairs.len(), "duplicate pairs emitted");
        assert_eq!(got, expect);
    }

    #[test]
    fn matches_brute_force_on_random_positions() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        let n = 200;
        let m = Molecules {
            px: (0..n).map(|_| rng.gen_range(0.0..10.0)).collect(),
            py: (0..n).map(|_| rng.gen_range(0.0..10.0)).collect(),
            pz: (0..n).map(|_| rng.gen_range(0.0..10.0)).collect(),
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
            box_size: 10.0,
        };
        for cutoff in [1.0, 2.5, 4.0] {
            let pairs = build_pairs(&m, cutoff);
            let expect = brute_force(&m, cutoff);
            let got: std::collections::BTreeSet<(i32, i32)> =
                pairs.i.iter().zip(&pairs.j).map(|(&a, &b)| (a, b)).collect();
            assert_eq!(got.len(), pairs.len(), "cutoff {cutoff}: duplicates");
            assert_eq!(got, expect, "cutoff {cutoff}");
        }
    }

    #[test]
    fn pair_density_matches_paper_ballpark() {
        // ~40-100 pairs per molecule at cutoff 3.0 and density ~1.
        let m = fcc_lattice(5, 2);
        let pairs = build_pairs(&m, CUTOFF);
        let per_mol = pairs.len() as f64 / m.len() as f64;
        assert!((20.0..120.0).contains(&per_mol), "pairs per molecule {per_mol}");
    }

    #[test]
    fn pairs_are_canonical() {
        let m = fcc_lattice(3, 4);
        let pairs = build_pairs(&m, CUTOFF);
        assert!(pairs.i.iter().zip(&pairs.j).all(|(&a, &b)| a < b));
    }

    #[test]
    fn empty_input_gives_empty_pairs() {
        let m = Molecules {
            px: vec![],
            py: vec![],
            pz: vec![],
            vx: vec![],
            vy: vec![],
            vz: vec![],
            box_size: 1.0,
        };
        assert!(build_pairs(&m, 1.0).is_empty());
    }
}
