//! `invector-moldyn` — the particle-simulation application of the paper
//! (§4.3, Figure 12).
//!
//! Molecular dynamics is the hardest of the paper's workloads for SIMD: the
//! force loop updates **two** indexed targets per interaction pair (force on
//! `i`, reaction on `j`), in three components each. The crate builds the
//! whole substrate — FCC-lattice [inputs](input), cell-list
//! [neighbor lists](neighbor), Lennard-Jones [force kernels](force) in
//! every implementation strategy — and a [simulation driver](sim) matching
//! the paper's setup (neighbor rebuild every 20 iterations).
//!
//! # Example
//!
//! ```
//! use invector_kernels::Variant;
//! use invector_moldyn::{input::fcc_lattice, sim::simulate};
//!
//! let molecules = fcc_lattice(2, 42); // 32 molecules
//! let result = simulate(&molecules, Variant::Invec, 5);
//! assert_eq!(result.iterations, 5);
//! assert!(result.num_pairs > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod force;
pub mod input;
pub mod neighbor;
pub mod sim;

pub use energy::Energy;
pub use force::Forces;
pub use input::Molecules;
pub use neighbor::PairList;
pub use sim::SimResult;
