//! Lennard-Jones force kernels — one per implementation strategy.
//!
//! The force loop is a *two-target* associative irregular reduction: each
//! interaction pair `(i, j)` adds a 3-D force to molecule `i` and subtracts
//! it from molecule `j`. A SIMD lane therefore writes **two** indexed
//! locations, and conflicts can arise within the `i` vector, within the `j`
//! vector, and across them. The variants resolve this differently:
//!
//! * `grouped` — windows pre-arranged so all 32 endpoint writes are distinct;
//! * `masked` — gather-after-scatter conflict detection (Polychroniou-style,
//!   the technique the paper cites for conflict-masking) covering both axes;
//! * `invec` — two in-vector reductions (one per axis) over the 3 force
//!   components, sharing each axis's merge schedule via
//!   [`invector_core::invec::reduce_alg1_arr`].

use std::ops::Range;

use invector_core::backend::Backend;
use invector_core::exec::parallel_chunks;
use invector_core::invec::reduce_alg1_arr_with;
use invector_core::ops::Sum;
use invector_core::stats::{DepthHistogram, Utilization};
use invector_graph::group::Grouping;
use invector_kernels::{ExecPolicy, ExecVariant, Variant};
use invector_simd::{F32x16, I32x16, Mask16};

use crate::input::Molecules;
use crate::neighbor::PairList;

/// Per-molecule force accumulators (structure of arrays).
#[derive(Debug, Clone, PartialEq)]
pub struct Forces {
    /// X components.
    pub fx: Vec<f32>,
    /// Y components.
    pub fy: Vec<f32>,
    /// Z components.
    pub fz: Vec<f32>,
}

impl Forces {
    /// Zeroed force arrays for `n` molecules.
    pub fn zeroed(n: usize) -> Self {
        Forces { fx: vec![0.0; n], fy: vec![0.0; n], fz: vec![0.0; n] }
    }

    /// Resets all components to zero (start of a force evaluation).
    pub fn clear(&mut self) {
        self.fx.fill(0.0);
        self.fy.fill(0.0);
        self.fz.fill(0.0);
    }
}

/// Lennard-Jones force magnitude factor: given `r²`, returns `s` such that
/// the force on `i` is `s · (pos_i - pos_j)` (ε = σ = 1).
#[inline(always)]
fn lj_scalar(r2: f32) -> f32 {
    let sr2 = 1.0 / r2;
    let sr6 = sr2 * sr2 * sr2;
    24.0 * sr6 * (2.0 * sr6 - 1.0) * sr2
}

/// Modeled scalar cost of the distance test of one pair: index loads, six
/// coordinate loads, the r² arithmetic, and the compare.
pub const SERIAL_PAIR_COST: u64 = 14;

/// Extra modeled scalar cost of an in-cutoff pair: the LJ arithmetic plus
/// twelve force loads/stores.
pub const SERIAL_NEAR_COST: u64 = 22;

/// Scalar force evaluation (the baseline all SIMD variants must match).
///
/// Pairs farther apart than `cutoff` contribute nothing (molecules drift
/// between neighbor-list rebuilds).
pub fn forces_serial(m: &Molecules, pairs: &PairList, cutoff: f32, out: &mut Forces) {
    let mut near = 0u64;
    let cutoff2 = cutoff * cutoff;
    for (&a, &b) in pairs.i.iter().zip(&pairs.j) {
        let (a, b) = (a as usize, b as usize);
        let dx = m.px[a] - m.px[b];
        let dy = m.py[a] - m.py[b];
        let dz = m.pz[a] - m.pz[b];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 <= cutoff2 && r2 > 0.0 {
            let s = lj_scalar(r2);
            out.fx[a] += s * dx;
            out.fy[a] += s * dy;
            out.fz[a] += s * dz;
            out.fx[b] -= s * dx;
            out.fy[b] -= s * dy;
            out.fz[b] -= s * dz;
            near += 1;
        }
    }
    invector_simd::count::bump(SERIAL_PAIR_COST * pairs.len() as u64 + SERIAL_NEAR_COST * near);
}

/// Computes the pair interaction vectors for the active lanes: returns the
/// within-cutoff mask and the force components `(sx, sy, sz)` on `i`.
#[inline]
fn pair_forces(
    m: &Molecules,
    active: Mask16,
    vi: I32x16,
    vj: I32x16,
    cutoff2: f32,
) -> (Mask16, F32x16, F32x16, F32x16) {
    let pix = F32x16::zero().mask_gather(active, &m.px, vi);
    let piy = F32x16::zero().mask_gather(active, &m.py, vi);
    let piz = F32x16::zero().mask_gather(active, &m.pz, vi);
    let pjx = F32x16::zero().mask_gather(active, &m.px, vj);
    let pjy = F32x16::zero().mask_gather(active, &m.py, vj);
    let pjz = F32x16::zero().mask_gather(active, &m.pz, vj);
    let dx = pix - pjx;
    let dy = piy - pjy;
    let dz = piz - pjz;
    let r2 = dx * dx + dy * dy + dz * dz;
    let near = r2.simd_le(F32x16::splat(cutoff2)) & r2.simd_gt(F32x16::zero()) & active;
    // 1/r2 on near lanes; inactive lanes divide by 1 to stay finite.
    let safe_r2 = r2.blend(near, F32x16::splat(1.0));
    let sr2 = F32x16::splat(1.0) / safe_r2;
    let sr6 = sr2 * sr2 * sr2;
    let s = F32x16::splat(24.0) * sr6 * (sr6 + sr6 - F32x16::splat(1.0)) * sr2;
    (near, s * dx, s * dy, s * dz)
}

/// Force evaluation with **in-vector reduction**: each axis's conflicting
/// lanes are folded in-vector, then committed with one conflict-free
/// gather-add-scatter per axis.
pub fn forces_invec(
    backend: Backend,
    m: &Molecules,
    pairs: &PairList,
    cutoff: f32,
    out: &mut Forces,
    depth: &mut DepthHistogram,
) {
    let cutoff2 = cutoff * cutoff;
    let mut k = 0;
    while k < pairs.len() {
        let (vi, active) = I32x16::load_partial(&pairs.i[k..], 0);
        let (vj, _) = I32x16::load_partial(&pairs.j[k..], 0);
        let (near, sx, sy, sz) = pair_forces(m, active, vi, vj, cutoff2);

        // Axis i: accumulate +f.
        let mut comps = [sx, sy, sz];
        let (safe_i, d1) = reduce_alg1_arr_with::<f32, Sum, 3, 16>(backend, near, vi, &mut comps);
        depth.record(d1);
        scatter_add(out, safe_i, vi, &comps, false);

        // Axis j: accumulate -f (fresh copies; the i-axis reduction mutated
        // its lanes).
        let mut comps = [sx, sy, sz];
        let (safe_j, d2) = reduce_alg1_arr_with::<f32, Sum, 3, 16>(backend, near, vj, &mut comps);
        depth.record(d2);
        scatter_add(out, safe_j, vj, &comps, true);

        k += 16;
    }
}

/// Gather-add-scatter of three force components on the safe lanes.
#[inline]
fn scatter_add(out: &mut Forces, safe: Mask16, idx: I32x16, comps: &[F32x16; 3], negate: bool) {
    let arrays: [&mut Vec<f32>; 3] = [&mut out.fx, &mut out.fy, &mut out.fz];
    for (arr, &c) in arrays.into_iter().zip(comps.iter()) {
        let old = F32x16::zero().mask_gather(safe, arr, idx);
        let new = if negate { old - c } else { old + c };
        new.mask_scatter(safe, arr, idx);
    }
}

/// Force accumulation distributed over the execution engine's thread pool.
///
/// Each pair writes **two** molecules, so the single-target owner-computes
/// partition does not apply; pairs are chunked in stream order via
/// [`parallel_chunks`] and each worker accumulates into a private
/// [`Forces`] window bounded to the molecule range its chunk touches (not
/// all molecules — the engine's touched-range rule). Private windows are
/// folded into `out` in task order: deterministic across runs at a fixed
/// thread count, within float-reassociation tolerance of [`forces_serial`].
///
/// The per-worker strategy follows [`Variant::exec_variant`] (scalar
/// baselines stay scalar, vectorized variants run in-vector reduction); one
/// thread delegates to the serial or in-vector kernel directly. Returns the
/// conflict-depth histogram (in-vector workers) and the workers used.
pub fn forces_parallel(
    m: &Molecules,
    pairs: &PairList,
    cutoff: f32,
    out: &mut Forces,
    variant: Variant,
    policy: &ExecPolicy,
) -> (Option<DepthHistogram>, usize) {
    let worker = variant.exec_variant();
    // Resolved once per evaluation; worker closures capture the resolved
    // value.
    let backend = policy.backend.resolve();
    if policy.threads <= 1 {
        let mut depth = DepthHistogram::new();
        match worker {
            ExecVariant::Serial => forces_serial(m, pairs, cutoff, out),
            _ => forces_invec(backend, m, pairs, cutoff, out, &mut depth),
        }
        return ((worker == ExecVariant::Invec).then_some(depth), 1);
    }
    let results = parallel_chunks(pairs.len(), policy.threads, |_, range| {
        // Bound the private window to the chunk's touched molecule range.
        let (mut lo, mut hi) = (0usize, 0usize);
        if !range.is_empty() {
            let (mut min_i, mut max_i) = (i32::MAX, i32::MIN);
            for p in range.clone() {
                min_i = min_i.min(pairs.i[p]).min(pairs.j[p]);
                max_i = max_i.max(pairs.i[p]).max(pairs.j[p]);
            }
            lo = min_i as usize;
            hi = max_i as usize + 1;
        }
        let mut private = Forces::zeroed(hi - lo);
        let mut depth = DepthHistogram::new();
        match worker {
            ExecVariant::Serial => {
                forces_serial_ranged(m, pairs, cutoff, &range, lo, &mut private);
            }
            _ => {
                forces_invec_ranged(backend, m, pairs, cutoff, &range, lo, &mut private, &mut depth)
            }
        }
        (lo, private, depth)
    });
    let threads = results.len();
    let mut depth = DepthHistogram::new();
    for (lo, private, d) in results {
        for (slot, p) in out.fx[lo..lo + private.fx.len()].iter_mut().zip(&private.fx) {
            *slot += p;
        }
        for (slot, p) in out.fy[lo..lo + private.fy.len()].iter_mut().zip(&private.fy) {
            *slot += p;
        }
        for (slot, p) in out.fz[lo..lo + private.fz.len()].iter_mut().zip(&private.fz) {
            *slot += p;
        }
        depth.merge(&d);
    }
    ((worker == ExecVariant::Invec).then_some(depth), threads)
}

/// Scalar force evaluation of one pair range into a private window whose
/// index space starts at molecule `base`.
fn forces_serial_ranged(
    m: &Molecules,
    pairs: &PairList,
    cutoff: f32,
    range: &Range<usize>,
    base: usize,
    out: &mut Forces,
) {
    let mut near = 0u64;
    let cutoff2 = cutoff * cutoff;
    for p in range.clone() {
        let (a, b) = (pairs.i[p] as usize, pairs.j[p] as usize);
        let dx = m.px[a] - m.px[b];
        let dy = m.py[a] - m.py[b];
        let dz = m.pz[a] - m.pz[b];
        let r2 = dx * dx + dy * dy + dz * dz;
        if r2 <= cutoff2 && r2 > 0.0 {
            let s = lj_scalar(r2);
            let (a, b) = (a - base, b - base);
            out.fx[a] += s * dx;
            out.fy[a] += s * dy;
            out.fz[a] += s * dz;
            out.fx[b] -= s * dx;
            out.fy[b] -= s * dy;
            out.fz[b] -= s * dz;
            near += 1;
        }
    }
    invector_simd::count::bump(SERIAL_PAIR_COST * range.len() as u64 + SERIAL_NEAR_COST * near);
}

/// In-vector force evaluation of one pair range: positions are gathered
/// with the global molecule ids, forces scatter through ids rebased by
/// `base` into the private window.
#[allow(clippy::too_many_arguments)]
fn forces_invec_ranged(
    backend: Backend,
    m: &Molecules,
    pairs: &PairList,
    cutoff: f32,
    range: &Range<usize>,
    base: usize,
    out: &mut Forces,
    depth: &mut DepthHistogram,
) {
    let cutoff2 = cutoff * cutoff;
    let vbase = I32x16::splat(base as i32);
    let mut k = range.start;
    while k < range.end {
        let (vi, active) = I32x16::load_partial(&pairs.i[k..range.end], 0);
        let (vj, _) = I32x16::load_partial(&pairs.j[k..range.end], 0);
        let (near, sx, sy, sz) = pair_forces(m, active, vi, vj, cutoff2);
        let (ri, rj) = (vi - vbase, vj - vbase);

        let mut comps = [sx, sy, sz];
        let (safe_i, d1) = reduce_alg1_arr_with::<f32, Sum, 3, 16>(backend, near, ri, &mut comps);
        depth.record(d1);
        scatter_add(out, safe_i, ri, &comps, false);

        let mut comps = [sx, sy, sz];
        let (safe_j, d2) = reduce_alg1_arr_with::<f32, Sum, 3, 16>(backend, near, rj, &mut comps);
        depth.record(d2);
        scatter_add(out, safe_j, rj, &comps, true);

        k += 16;
    }
}

/// Force evaluation with **conflict-masking** using gather-after-scatter
/// detection across both write axes: each lane scatters its id through both
/// endpoint indices into a scratch array and commits only if it reads its
/// own id back through both (the masking approach of Polychroniou et al.
/// that the paper benchmarks against).
///
/// `scratch` must have one slot per molecule and is clobbered.
pub fn forces_masked(
    m: &Molecules,
    pairs: &PairList,
    cutoff: f32,
    out: &mut Forces,
    scratch: &mut [i32],
    util: &mut Utilization,
) {
    assert_eq!(scratch.len(), m.len(), "scratch must cover all molecules");
    let cutoff2 = cutoff * cutoff;
    let lane_ids = I32x16::iota();
    let mut k = 0;
    while k < pairs.len() {
        let (vi, loaded) = I32x16::load_partial(&pairs.i[k..], 0);
        let (vj, _) = I32x16::load_partial(&pairs.j[k..], 0);
        let mut active = loaded;
        let mut first_round = true;
        while !active.is_empty() {
            let (near, sx, sy, sz) = pair_forces(m, active, vi, vj, cutoff2);
            // Gather-after-scatter: last writer per slot wins; a lane is
            // conflict-free iff it owns both of its slots afterwards.
            lane_ids.mask_scatter(near, scratch, vi);
            lane_ids.mask_scatter(near, scratch, vj);
            let got_i = I32x16::zero().mask_gather(near, scratch, vi);
            let got_j = I32x16::zero().mask_gather(near, scratch, vj);
            let safe = got_i.simd_eq(lane_ids) & got_j.simd_eq(lane_ids) & near;
            scatter_add(out, safe, vi, &[sx, sy, sz], false);
            scatter_add(out, safe, vj, &[sx, sy, sz], true);
            // Out-of-cutoff lanes complete quietly on their first look.
            // Utilization counts committing writers only (the paper's
            // measure).
            let done = safe | active.and_not(near);
            util.record(u64::from(safe.count_ones()), 16);
            active = active.and_not(done);
            // Guarantee progress even if gather-after-scatter starves a lane
            // pair cycle: commit the lowest remaining lane scalar-style.
            if !active.is_empty() && safe.is_empty() && !first_round {
                let lane = active.first_set().expect("nonempty");
                commit_scalar(m, pairs, cutoff2, k + lane, out);
                util.record(1, 16);
                active = active.with(lane, false);
            }
            first_round = false;
        }
        k += 16;
    }
}

/// Scalar fallback for a single pair (progress guarantee of the masked loop).
fn commit_scalar(m: &Molecules, pairs: &PairList, cutoff2: f32, pos: usize, out: &mut Forces) {
    let (a, b) = (pairs.i[pos] as usize, pairs.j[pos] as usize);
    let dx = m.px[a] - m.px[b];
    let dy = m.py[a] - m.py[b];
    let dz = m.pz[a] - m.pz[b];
    let r2 = dx * dx + dy * dy + dz * dz;
    if r2 <= cutoff2 && r2 > 0.0 {
        let s = lj_scalar(r2);
        out.fx[a] += s * dx;
        out.fy[a] += s * dy;
        out.fz[a] += s * dz;
        out.fx[b] -= s * dx;
        out.fy[b] -= s * dy;
        out.fz[b] -= s * dz;
    }
}

/// Force evaluation over **pre-grouped** windows: all 32 endpoint writes in
/// a window are distinct by construction, so both axes commit with unmasked
/// conflict handling (the inspector/executor executor phase).
pub fn forces_grouped(
    m: &Molecules,
    pairs: &PairList,
    grouping: &Grouping,
    cutoff: f32,
    out: &mut Forces,
) {
    let cutoff2 = cutoff * cutoff;
    for w in 0..grouping.num_windows() {
        let (slots, maskbits) = grouping.window(w);
        let active = Mask16::from_bits(u32::from(maskbits));
        let vpos = I32x16::from_array(std::array::from_fn(|l| slots[l] as i32));
        let vi = I32x16::zero().mask_gather(active, &pairs.i, vpos);
        let vj = I32x16::zero().mask_gather(active, &pairs.j, vpos);
        let (near, sx, sy, sz) = pair_forces(m, active, vi, vj, cutoff2);
        scatter_add(out, near, vi, &[sx, sy, sz], false);
        scatter_add(out, near, vj, &[sx, sy, sz], true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{fcc_lattice, Molecules, CUTOFF};
    use crate::neighbor::build_pairs;
    use invector_graph::group::group_by_two_keys;

    fn assert_forces_close(a: &Forces, b: &Forces, tol: f32) {
        for (x, y) in
            a.fx.iter().zip(&b.fx).chain(a.fy.iter().zip(&b.fy)).chain(a.fz.iter().zip(&b.fz))
        {
            assert!((x - y).abs() <= tol * (x.abs() + y.abs() + 1.0), "{x} vs {y}");
        }
    }

    fn two_molecules(r: f32) -> (Molecules, PairList) {
        let m = Molecules {
            px: vec![0.0, r],
            py: vec![0.0, 0.0],
            pz: vec![0.0, 0.0],
            vx: vec![0.0; 2],
            vy: vec![0.0; 2],
            vz: vec![0.0; 2],
            box_size: 10.0,
        };
        (m, PairList { i: vec![0], j: vec![1] })
    }

    #[test]
    fn lj_force_is_zero_at_potential_minimum() {
        // Minimum of LJ at r = 2^(1/6).
        let r = 2.0f32.powf(1.0 / 6.0);
        let (m, pairs) = two_molecules(r);
        let mut f = Forces::zeroed(2);
        forces_serial(&m, &pairs, CUTOFF, &mut f);
        assert!(f.fx[0].abs() < 1e-4, "force at minimum: {}", f.fx[0]);
    }

    #[test]
    fn lj_force_is_repulsive_close_and_attractive_far() {
        let (m, pairs) = two_molecules(0.9);
        let mut f = Forces::zeroed(2);
        forces_serial(&m, &pairs, CUTOFF, &mut f);
        assert!(f.fx[0] < 0.0, "molecule 0 pushed away (negative x)");
        assert_eq!(f.fx[0], -f.fx[1], "Newton's third law");

        let (m, pairs) = two_molecules(1.5);
        let mut f = Forces::zeroed(2);
        forces_serial(&m, &pairs, CUTOFF, &mut f);
        assert!(f.fx[0] > 0.0, "molecule 0 pulled toward 1");
    }

    #[test]
    fn pairs_beyond_cutoff_contribute_nothing() {
        let (m, pairs) = two_molecules(CUTOFF + 0.1);
        let mut f = Forces::zeroed(2);
        forces_serial(&m, &pairs, CUTOFF, &mut f);
        assert_eq!(f.fx, vec![0.0, 0.0]);
    }

    #[test]
    fn total_force_is_conserved() {
        let m = fcc_lattice(3, 9);
        let pairs = build_pairs(&m, CUTOFF);
        let mut f = Forces::zeroed(m.len());
        forces_serial(&m, &pairs, CUTOFF, &mut f);
        let sum_x: f32 = f.fx.iter().sum();
        assert!(sum_x.abs() < 0.5, "net force should vanish, got {sum_x}");
    }

    #[test]
    fn all_variants_match_serial_on_a_lattice() {
        let m = fcc_lattice(3, 11);
        let pairs = build_pairs(&m, CUTOFF);
        let n = m.len();

        let mut reference = Forces::zeroed(n);
        forces_serial(&m, &pairs, CUTOFF, &mut reference);

        let mut f_invec = Forces::zeroed(n);
        let mut depth = DepthHistogram::new();
        forces_invec(Backend::Portable, &m, &pairs, CUTOFF, &mut f_invec, &mut depth);
        assert_forces_close(&f_invec, &reference, 1e-3);
        assert!(depth.invocations() > 0);

        let mut f_masked = Forces::zeroed(n);
        let mut scratch = vec![0i32; n];
        let mut util = Utilization::default();
        forces_masked(&m, &pairs, CUTOFF, &mut f_masked, &mut scratch, &mut util);
        assert_forces_close(&f_masked, &reference, 1e-3);
        assert!(util.ratio() > 0.0 && util.ratio() <= 1.0);

        let positions: Vec<u32> = (0..pairs.len() as u32).collect();
        let grouping = group_by_two_keys(&positions, &pairs.i, &pairs.j);
        let mut f_grouped = Forces::zeroed(n);
        forces_grouped(&m, &pairs, &grouping, CUTOFF, &mut f_grouped);
        assert_forces_close(&f_grouped, &reference, 1e-3);
    }

    #[test]
    fn heavy_conflicts_still_correct() {
        // Star topology: molecule 0 interacts with 40 others -> every vector
        // is fully conflicted on the i axis.
        let n = 41;
        let mut m = Molecules {
            px: vec![0.0; n],
            py: vec![0.0; n],
            pz: vec![0.0; n],
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
            box_size: 100.0,
        };
        for k in 1..n {
            let angle = k as f32;
            m.px[k] = 1.1 * angle.cos();
            m.py[k] = 1.1 * angle.sin();
            m.pz[k] = 0.01 * k as f32;
        }
        let pairs = PairList { i: vec![0; n - 1], j: (1..n as i32).collect() };

        let mut reference = Forces::zeroed(n);
        forces_serial(&m, &pairs, CUTOFF, &mut reference);

        let mut f_invec = Forces::zeroed(n);
        let mut depth = DepthHistogram::new();
        forces_invec(Backend::Portable, &m, &pairs, CUTOFF, &mut f_invec, &mut depth);
        assert_forces_close(&f_invec, &reference, 1e-3);
        assert!(depth.mean() > 0.4, "i-axis fully conflicted, mean {}", depth.mean());

        let mut f_masked = Forces::zeroed(n);
        let mut scratch = vec![0i32; n];
        let mut util = Utilization::default();
        forces_masked(&m, &pairs, CUTOFF, &mut f_masked, &mut scratch, &mut util);
        assert_forces_close(&f_masked, &reference, 1e-3);
        assert!(util.ratio() < 0.5, "conflicted masking utilization {}", util.ratio());
    }

    #[test]
    fn empty_pair_list_is_noop() {
        let m = fcc_lattice(2, 1);
        let mut f = Forces::zeroed(m.len());
        let mut depth = DepthHistogram::new();
        forces_invec(Backend::Portable, &m, &PairList::default(), CUTOFF, &mut f, &mut depth);
        assert!(f.fx.iter().all(|&x| x == 0.0));
    }
}
