//! Moldyn input generation.
//!
//! The paper's inputs (`16-3.0r`, `32-3.0r`) come from the generator
//! distributed with the original serial Moldyn code: molecules on an FCC
//! lattice with a cutoff radius of 3.0σ. This module reproduces that
//! generator: `4·n³` molecules in a cubic box, plus a small deterministic
//! thermal velocity perturbation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Structure-of-arrays molecule state: positions and velocities.
#[derive(Debug, Clone, PartialEq)]
pub struct Molecules {
    /// X coordinates.
    pub px: Vec<f32>,
    /// Y coordinates.
    pub py: Vec<f32>,
    /// Z coordinates.
    pub pz: Vec<f32>,
    /// X velocities.
    pub vx: Vec<f32>,
    /// Y velocities.
    pub vy: Vec<f32>,
    /// Z velocities.
    pub vz: Vec<f32>,
    /// Cubic box edge length.
    pub box_size: f32,
}

impl Molecules {
    /// Number of molecules.
    pub fn len(&self) -> usize {
        self.px.len()
    }

    /// `true` if the system is empty.
    pub fn is_empty(&self) -> bool {
        self.px.is_empty()
    }
}

/// FCC lattice constant used by the generator (reduced units; density
/// `4 / a³ ≈ 1.0`).
pub const LATTICE_CONSTANT: f32 = 1.587;

/// The interaction cutoff radius the paper's inputs use (the `3.0r` suffix).
pub const CUTOFF: f32 = 3.0;

/// Generates `4·cells³` molecules on an FCC lattice with a deterministic
/// Maxwell-ish velocity perturbation.
///
/// # Panics
///
/// Panics if `cells == 0`.
///
/// # Example
///
/// ```
/// use invector_moldyn::input::fcc_lattice;
///
/// let m = fcc_lattice(4, 42);
/// assert_eq!(m.len(), 4 * 4 * 4 * 4);
/// ```
pub fn fcc_lattice(cells: usize, seed: u64) -> Molecules {
    assert!(cells > 0, "lattice must have at least one cell");
    let n = 4 * cells * cells * cells;
    let a = LATTICE_CONSTANT;
    let box_size = a * cells as f32;
    let mut m = Molecules {
        px: Vec::with_capacity(n),
        py: Vec::with_capacity(n),
        pz: Vec::with_capacity(n),
        vx: Vec::with_capacity(n),
        vy: Vec::with_capacity(n),
        vz: Vec::with_capacity(n),
        box_size,
    };
    // The four basis positions of an FCC unit cell.
    let basis = [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]];
    let mut rng = SmallRng::seed_from_u64(seed);
    for ix in 0..cells {
        for iy in 0..cells {
            for iz in 0..cells {
                for b in basis {
                    m.px.push((ix as f32 + b[0]) * a);
                    m.py.push((iy as f32 + b[1]) * a);
                    m.pz.push((iz as f32 + b[2]) * a);
                    m.vx.push(rng.gen_range(-0.1..0.1));
                    m.vy.push(rng.gen_range(-0.1..0.1));
                    m.vz.push(rng.gen_range(-0.1..0.1));
                }
            }
        }
    }
    m
}

/// The paper's `16-3.0r` input scaled by `scale`: 131 072 molecules
/// (`4·32³`) at `scale = 1.0`.
pub fn input_16_3_0r(scale: f64) -> Molecules {
    fcc_lattice(scaled_cells(32, scale), 16)
}

/// The paper's `32-3.0r` input scaled by `scale`: 364 500 molecules
/// (`4·45³`) at `scale = 1.0`.
pub fn input_32_3_0r(scale: f64) -> Molecules {
    fcc_lattice(scaled_cells(45, scale), 32)
}

fn scaled_cells(cells: usize, scale: f64) -> usize {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1], got {scale}");
    ((cells as f64 * scale.cbrt()).round() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inputs_match_molecule_counts() {
        assert_eq!(input_16_3_0r(1.0).len(), 131_072);
        assert_eq!(input_32_3_0r(1.0).len(), 364_500);
    }

    #[test]
    fn scaling_shrinks_by_volume() {
        let m = input_16_3_0r(0.001);
        // 32 * 0.1 = 3.2 -> 3 cells -> 108 molecules.
        assert_eq!(m.len(), 108);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(fcc_lattice(3, 7), fcc_lattice(3, 7));
        assert_ne!(fcc_lattice(3, 7).vx, fcc_lattice(3, 8).vx);
    }

    #[test]
    fn molecules_lie_inside_the_box() {
        let m = fcc_lattice(5, 1);
        for i in 0..m.len() {
            assert!(m.px[i] >= 0.0 && m.px[i] < m.box_size);
            assert!(m.py[i] >= 0.0 && m.py[i] < m.box_size);
            assert!(m.pz[i] >= 0.0 && m.pz[i] < m.box_size);
        }
    }

    #[test]
    fn nearest_neighbor_distance_matches_fcc_geometry() {
        let m = fcc_lattice(2, 3);
        // FCC nearest-neighbor distance is a/sqrt(2).
        let expect = LATTICE_CONSTANT / 2.0_f32.sqrt();
        let d01 = ((m.px[0] - m.px[1]).powi(2)
            + (m.py[0] - m.py[1]).powi(2)
            + (m.pz[0] - m.pz[1]).powi(2))
        .sqrt();
        assert!((d01 - expect).abs() < 1e-5, "{d01} vs {expect}");
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = fcc_lattice(0, 1);
    }
}
