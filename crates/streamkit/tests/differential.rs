//! Differential proptests: the incremental engines vs from-scratch serial
//! references over random insert/delete interleavings, at every snapshot
//! point, and across every SIMD backend the host offers.

use std::collections::BTreeSet;

use invector_core::{Backend, BackendChoice, ExecPolicy};
use invector_streamkit::reference::{self, WindowSim};
use invector_streamkit::{AggOp, Engine, StreamKind};
use proptest::prelude::*;

/// Every backend choice this host can actually dispatch.
fn backends() -> Vec<BackendChoice> {
    let mut choices = vec![BackendChoice::Portable];
    for (b, c) in [
        (Backend::Avx512, BackendChoice::Avx512),
        (Backend::Avx2, BackendChoice::Avx2),
        (Backend::Neon, BackendChoice::Neon),
    ] {
        if b.available() {
            choices.push(c);
        }
    }
    choices
}

fn table_for(kind: &StreamKind, op: AggOp) -> (Engine, Vec<i32>) {
    let mut engine = Engine::for_kind(kind, op).expect("stream kinds carry engines");
    let mut slots = vec![0i32; kind.required_len().unwrap()];
    engine.init(&mut slots);
    (engine, slots)
}

/// Mirror of the applied edge set, from which the oracles recompute
/// from scratch (independent of the engines' adjacency caches).
#[derive(Default)]
struct EdgeSet {
    edges: BTreeSet<(u32, u32)>,
}

impl EdgeSet {
    fn apply(&mut self, n: u32, events: &[(u32, u32)]) {
        for &(src, bits) in events {
            let dst = bits & !invector_streamkit::DELETE_BIT;
            if src >= n || dst >= n {
                continue;
            }
            if bits & invector_streamkit::DELETE_BIT != 0 {
                self.edges.remove(&(src, dst));
            } else {
                self.edges.insert((src, dst));
            }
        }
    }

    fn in_lists(&self, n: u32) -> Vec<Vec<u32>> {
        let mut inn = vec![Vec::new(); n as usize];
        for &(u, v) in &self.edges {
            inn[v as usize].push(u);
        }
        inn.iter_mut().for_each(|l| l.sort_unstable());
        inn
    }

    fn out_degrees(&self, n: u32) -> Vec<u32> {
        let mut deg = vec![0u32; n as usize];
        for &(u, _) in &self.edges {
            deg[u as usize] += 1;
        }
        deg
    }

    fn undirected(&self, n: u32) -> Vec<Vec<u32>> {
        let mut und = vec![BTreeSet::new(); n as usize];
        for &(u, v) in &self.edges {
            und[u as usize].insert(v);
            und[v as usize].insert(u);
        }
        und.into_iter().map(|s| s.into_iter().collect()).collect()
    }
}

/// Random edge events over `n + 1` vertex ids (one past the range, so
/// invalid endpoints are exercised too), grouped into slices.
fn edge_slices(n: u32, max_slices: usize) -> impl Strategy<Value = Vec<Vec<(u32, u32)>>> {
    let event = (0..=n, 0..=n, any::<bool>())
        .prop_map(|(src, dst, insert)| invector_streamkit::edge_event(src, dst, insert));
    prop::collection::vec(prop::collection::vec(event, 0..12), 1..=max_slices)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_pagerank_is_bitwise_from_scratch_at_every_snapshot(
        n in 2u32..14,
        iters in 1u32..5,
        slices in edge_slices(13, 8),
    ) {
        let kind = StreamKind::GraphPageRank { vertices: n, iters };
        let (mut engine, mut slots) = table_for(&kind, AggOp::Add);
        let mut edges = EdgeSet::default();
        let policy = ExecPolicy::default();
        for slice in &slices {
            engine.apply(&mut slots, slice, &policy);
            edges.apply(n, slice);
            let layers = reference::pagerank_layers(
                n as usize,
                iters as usize,
                &edges.in_lists(n),
                &edges.out_degrees(n),
            );
            let expect: Vec<i32> =
                layers[iters as usize].iter().map(|r| r.to_bits() as i32).collect();
            prop_assert_eq!(&slots[..n as usize], &expect[..]);
        }
    }

    #[test]
    fn incremental_wcc_is_bitwise_from_scratch_at_every_snapshot(
        n in 2u32..16,
        slices in edge_slices(15, 8),
    ) {
        let kind = StreamKind::GraphWcc { vertices: n };
        let (mut engine, mut slots) = table_for(&kind, AggOp::Min);
        let mut edges = EdgeSet::default();
        let policy = ExecPolicy::default();
        for slice in &slices {
            engine.apply(&mut slots, slice, &policy);
            edges.apply(n, slice);
            let expect = reference::wcc_labels(n as usize, &edges.undirected(n));
            prop_assert_eq!(&slots[..n as usize], &expect[..]);
        }
    }

    #[test]
    fn window_engine_matches_the_serial_simulator(
        keys in 1usize..5,
        buckets in 1usize..4,
        width in 1u64..4,
        timed in any::<bool>(),
        op_sel in 0u8..3,
        raw in prop::collection::vec(
            prop::collection::vec((0u32..6, any::<i32>()), 0..16), 1..8),
    ) {
        let op = [AggOp::Add, AggOp::Min, AggOp::Max][op_sel as usize];
        let kind = StreamKind::Window {
            keys: keys as u32,
            buckets: buckets as u32,
            width: width as u32,
            timed,
        };
        let (mut engine, mut slots) = table_for(&kind, op);
        let mut sim = WindowSim::new(keys, buckets, width, timed, op);
        let policy = ExecPolicy::default();
        let mut watermark = 0u32;
        for slice in &raw {
            // Map the raw stream onto keys (and, on timed tables, advances).
            let events: Vec<(u32, u32)> = slice
                .iter()
                .map(|&(sel, val)| {
                    if timed && sel == keys as u32 {
                        watermark += (val as u32) % 5;
                        invector_streamkit::window_advance(keys as u32, watermark)
                    } else {
                        invector_streamkit::window_data(sel % keys as u32, val)
                    }
                })
                .collect();
            engine.apply(&mut slots, &events, &policy);
            sim.apply(&events);
            prop_assert_eq!(&slots, &sim.slots);
        }
    }

    #[test]
    fn engines_agree_across_all_available_backends(
        n in 2u32..12,
        slices in edge_slices(11, 5),
    ) {
        let choices = backends();
        for kind in [
            StreamKind::GraphPageRank { vertices: n, iters: 3 },
            StreamKind::GraphWcc { vertices: n },
        ] {
            let mut images: Vec<Vec<i32>> = Vec::new();
            for &choice in &choices {
                let (mut engine, mut slots) = table_for(&kind, AggOp::Add);
                let policy = ExecPolicy::default().backend(choice);
                for slice in &slices {
                    engine.apply(&mut slots, slice, &policy);
                }
                images.push(slots);
            }
            for img in &images[1..] {
                prop_assert_eq!(img, &images[0]);
            }
        }
    }
}

#[test]
fn snapshot_install_then_churn_matches_an_uninterrupted_run() {
    // Simulates recovery: run half a stream, clone the slot image into a
    // fresh engine via rebuild, continue both, and demand bitwise identity.
    let kind = StreamKind::GraphPageRank { vertices: 9, iters: 4 };
    let (mut live, mut live_slots) = table_for(&kind, AggOp::Add);
    let policy = ExecPolicy::default();
    let first: Vec<(u32, u32)> =
        (0..9u32).map(|i| invector_streamkit::edge_event(i, (i * 3 + 1) % 9, true)).collect();
    live.apply(&mut live_slots, &first, &policy);

    let mut restored = Engine::for_kind(&kind, AggOp::Add).unwrap();
    let mut restored_slots = live_slots.clone();
    restored.rebuild(&restored_slots);

    let second: Vec<(u32, u32)> =
        (0..9u32).map(|i| invector_streamkit::edge_event(i, (i * 3 + 1) % 9, i % 2 == 0)).collect();
    live.apply(&mut live_slots, &second, &policy);
    restored.apply(&mut restored_slots, &second, &policy);
    assert_eq!(live_slots, restored_slots);
}
