//! Sliding-window aggregation with retraction.
//!
//! Slot layout for `k` keys and a ring of `W` live buckets:
//!
//! ```text
//! [0, k)                current-window aggregate per key
//! [k, k + W*k)          per-bucket aggregates (bucket id B lives in ring
//!                       slot B % W)
//! [k + W*k, k + W*k + W) resident bucket id per ring slot (-1 = empty)
//! base + 0              currently open bucket id
//! base + 1              lifetime count of expired (retracted) buckets
//! base + 2              id of the most recently expired bucket (-1 = none)
//! base + 3              data-event counter (drives count-based bucketing)
//! [base + 4, base + 4 + k) the retraction payload: aggregates of the most
//!                       recently expired bucket
//! ```
//!
//! where `base = k + W*k + W`. Data events are `(key, value)`; on a timed
//! table, `(k, B)` advances the watermark to bucket `B`. A count-based
//! table advances after every `width` data events. Advancing to bucket `B`
//! expires every resident bucket with `id + W <= B` (ascending id order,
//! each recording a retraction), then rebuilds the per-key aggregates by
//! re-reducing the surviving buckets in ascending bucket-id order on the
//! fused SIMD epoch driver — the "per-bucket re-reduce" retraction path
//! that min/max windows require and add windows share for uniformity.
//! Tumbling windows are simply `W = 1`.
//!
//! All state lives in the slots; the engine itself is pure geometry, so an
//! installed snapshot needs no cache rebuild at all.

use invector_core::ops::{Max, Min, Sum};
use invector_core::{execute_epoch, EpochScratch, ExecPolicy, InvecStats};

use crate::{AggOp, StreamKind, WindowRead, WINDOW_HEADER};

/// Bucket ids are stored in i32 slots; larger watermarks are invalid.
const MAX_BUCKET_ID: u64 = 1 << 31;

#[derive(Debug, Clone)]
pub struct WindowEngine {
    keys: usize,
    buckets: usize,
    width: u64,
    timed: bool,
    op: AggOp,
    scratch: EpochScratch<i32>,
}

impl WindowEngine {
    pub fn new(keys: usize, buckets: usize, width: u64, timed: bool, op: AggOp) -> Self {
        WindowEngine { keys, buckets, width, timed, op, scratch: EpochScratch::new() }
    }

    pub fn keys(&self) -> usize {
        self.keys
    }

    /// The slot length this geometry requires.
    pub fn required_len(&self) -> usize {
        StreamKind::Window {
            keys: self.keys as u32,
            buckets: self.buckets as u32,
            width: self.width as u32,
            timed: self.timed,
        }
        .required_len()
        .unwrap()
    }

    #[inline]
    fn base(&self) -> usize {
        self.keys + self.buckets * self.keys + self.buckets
    }

    #[inline]
    fn ring_val(&self, b: usize) -> usize {
        self.keys + b * self.keys
    }

    #[inline]
    fn ring_id(&self, b: usize) -> usize {
        self.keys + self.buckets * self.keys + b
    }

    pub fn init(&mut self, slots: &mut [i32]) {
        let id = self.op.identity();
        let (k, w) = (self.keys, self.buckets);
        slots[..k].fill(id);
        slots[k..k + w * k].fill(id);
        slots[k + w * k..k + w * k + w].fill(-1);
        let base = self.base();
        slots[base..base + WINDOW_HEADER].fill(0);
        slots[base + 2] = -1;
        slots[base + WINDOW_HEADER..base + WINDOW_HEADER + k].fill(id);
        slots[self.ring_id(0)] = 0; // bucket 0 opens with the stream
    }

    /// Scatters `pairs` into an aggregate region with the table's operator
    /// on the epoch driver.
    fn scatter(
        &mut self,
        target: &mut [i32],
        pairs: &[(i32, i32)],
        policy: &ExecPolicy,
    ) -> InvecStats {
        let it = pairs.iter().copied();
        let report = match self.op {
            AggOp::Add => execute_epoch::<i32, Sum>(target, it, &mut self.scratch, policy),
            AggOp::Min => execute_epoch::<i32, Min>(target, it, &mut self.scratch, policy),
            AggOp::Max => execute_epoch::<i32, Max>(target, it, &mut self.scratch, policy),
        };
        report.stats
    }

    /// Folds a run of data points belonging to the currently open bucket
    /// into both the bucket slot and the current aggregates.
    fn flush(
        &mut self,
        slots: &mut [i32],
        run: &mut Vec<(i32, i32)>,
        policy: &ExecPolicy,
    ) -> InvecStats {
        if run.is_empty() {
            return InvecStats::default();
        }
        let pairs = std::mem::take(run);
        let mut stats = InvecStats::default();
        let k = self.keys;
        let cur = slots[self.base()] as u32 as usize % self.buckets;
        let lo = self.ring_val(cur);
        stats.merge(&self.scatter(&mut slots[lo..lo + k], &pairs, policy));
        stats.merge(&self.scatter(&mut slots[..k], &pairs, policy));
        stats
    }

    pub fn apply(
        &mut self,
        slots: &mut [i32],
        events: &[(u32, u32)],
        policy: &ExecPolicy,
    ) -> InvecStats {
        let mut stats = InvecStats::default();
        let mut run: Vec<(i32, i32)> = Vec::new();
        let base = self.base();
        for &(idx, bits) in events {
            if (idx as usize) < self.keys {
                run.push((idx as i32, bits as i32));
                let count = (slots[base + 3] as u32 as u64) + 1;
                slots[base + 3] = count as u32 as i32;
                if !self.timed
                    && count.is_multiple_of(self.width)
                    && count / self.width < MAX_BUCKET_ID
                {
                    stats.merge(&self.flush(slots, &mut run, policy));
                    stats.merge(&self.advance_to(slots, count / self.width, policy));
                }
            } else if idx as usize == self.keys && self.timed {
                let nb = bits as u64;
                if nb < MAX_BUCKET_ID && nb > slots[base] as u32 as u64 {
                    stats.merge(&self.flush(slots, &mut run, policy));
                    stats.merge(&self.advance_to(slots, nb, policy));
                }
            }
            // anything else: deterministically ignored
        }
        stats.merge(&self.flush(slots, &mut run, policy));
        stats
    }

    /// Opens bucket `nb`, expiring every resident bucket that slid out of
    /// the live window `(nb - W, nb]` and re-reducing the survivors.
    fn advance_to(&mut self, slots: &mut [i32], nb: u64, policy: &ExecPolicy) -> InvecStats {
        let (k, w) = (self.keys, self.buckets);
        let base = self.base();
        let id = self.op.identity();
        let mut residents: Vec<(i32, usize)> = (0..w)
            .filter_map(|b| {
                let rid = slots[self.ring_id(b)];
                (rid >= 0).then_some((rid, b))
            })
            .collect();
        residents.sort_unstable();
        for (rid, b) in residents {
            if rid as u32 as u64 + w as u64 <= nb {
                slots[base + 1] += 1;
                slots[base + 2] = rid;
                let lo = self.ring_val(b);
                let retract = base + WINDOW_HEADER;
                for key in 0..k {
                    slots[retract + key] = slots[lo + key];
                }
                slots[lo..lo + k].fill(id);
                slots[self.ring_id(b)] = -1;
            }
        }
        slots[self.ring_id(nb as usize % w)] = nb as u32 as i32;
        slots[base] = nb as u32 as i32;
        // Retraction path: rebuild the window aggregates from the surviving
        // buckets, ascending bucket id, on the fused driver.
        let mut live: Vec<(i32, usize)> = (0..w)
            .filter_map(|b| {
                let rid = slots[self.ring_id(b)];
                (rid >= 0).then_some((rid, b))
            })
            .collect();
        live.sort_unstable();
        let mut pairs: Vec<(i32, i32)> = Vec::with_capacity(live.len() * k);
        for (_, b) in live {
            let lo = self.ring_val(b);
            for key in 0..k {
                pairs.push((key as i32, slots[lo + key]));
            }
        }
        slots[..k].fill(id);
        self.scatter(&mut slots[..k], &pairs, policy)
    }

    /// Reads the aggregates of `bucket`: `u64::MAX` for the current window
    /// aggregate, a resident bucket id for its partial aggregate, or the
    /// most recently expired bucket for the retraction payload.
    pub fn query(&self, slots: &[i32], bucket: u64) -> Result<WindowRead, String> {
        let base = self.base();
        let expired = slots[base + 1] as u32 as u64;
        let k = self.keys;
        let read = |lo: usize| slots[lo..lo + k].iter().map(|&v| v as u32).collect();
        if bucket == u64::MAX {
            return Ok(WindowRead { expired, bucket: slots[base] as u32 as u64, values: read(0) });
        }
        if bucket < MAX_BUCKET_ID {
            let b = bucket as usize % self.buckets;
            if slots[self.ring_id(b)] == bucket as i32 {
                return Ok(WindowRead { expired, bucket, values: read(self.ring_val(b)) });
            }
            if slots[base + 2] == bucket as i32 {
                return Ok(WindowRead { expired, bucket, values: read(base + WINDOW_HEADER) });
            }
        }
        Err(format!("bucket {bucket} is neither live nor the last retracted"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::WindowSim;
    use crate::{window_advance, window_data};

    fn policy() -> ExecPolicy {
        ExecPolicy::default()
    }

    fn run_both(
        keys: usize,
        buckets: usize,
        width: u64,
        timed: bool,
        op: AggOp,
        slices: &[Vec<(u32, u32)>],
    ) {
        let mut e = WindowEngine::new(keys, buckets, width, timed, op);
        let mut slots = vec![0i32; e.required_len()];
        e.init(&mut slots);
        let mut sim = WindowSim::new(keys, buckets, width, timed, op);
        assert_eq!(slots, sim.slots, "initial image");
        for (i, s) in slices.iter().enumerate() {
            e.apply(&mut slots, s, &policy());
            sim.apply(s);
            assert_eq!(slots, sim.slots, "slice {i}");
        }
    }

    #[test]
    fn count_based_sliding_add_matches_the_simulator() {
        let slices = vec![
            vec![window_data(0, 5), window_data(1, -3), window_data(0, 2)],
            vec![window_data(2, 10), window_data(2, 1)],
            vec![window_data(0, 7), window_data(1, 4), window_data(1, 4), window_data(2, -9)],
        ];
        run_both(3, 2, 2, false, AggOp::Add, &slices);
    }

    #[test]
    fn timed_min_window_emits_retractions() {
        let slices = vec![
            vec![window_data(0, 5), window_data(1, 3), window_advance(2, 1)],
            vec![window_data(0, -2), window_advance(2, 3)], // bucket 0 expires
            vec![window_data(1, 9), window_advance(2, 10)], // everything expires
            vec![window_data(0, 4)],
        ];
        run_both(2, 2, 1, true, AggOp::Min, &slices);
    }

    #[test]
    fn tumbling_max_is_a_one_bucket_ring() {
        let slices = vec![
            vec![window_data(0, 1), window_data(0, 8), window_data(0, 3)], // crosses at width 2
            vec![window_data(1, -5), window_data(1, -7)],
        ];
        run_both(2, 1, 2, false, AggOp::Max, &slices);
    }

    #[test]
    fn query_reads_live_current_and_retracted_buckets() {
        let mut e = WindowEngine::new(2, 2, 1, true, AggOp::Add);
        let mut slots = vec![0i32; e.required_len()];
        e.init(&mut slots);
        e.apply(
            &mut slots,
            &[window_data(0, 5), window_advance(2, 1), window_data(1, 7), window_advance(2, 2)],
            &policy(),
        );
        // bucket 0 expired when bucket 2 opened; buckets 1 and 2 are live.
        let cur = e.query(&slots, u64::MAX).unwrap();
        assert_eq!(cur.bucket, 2);
        assert_eq!(cur.values, vec![0, 7]);
        assert_eq!(cur.expired, 1);
        let retracted = e.query(&slots, 0).unwrap();
        assert_eq!(retracted.values, vec![5, 0]);
        assert!(e.query(&slots, 7).is_err());
        assert!(e.query(&slots, 1).is_ok());
    }
}
