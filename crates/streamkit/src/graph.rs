//! Incremental graph analytics over an evolving edge stream.
//!
//! Slot layout for both graph kinds (`n` vertices):
//!
//! ```text
//! [0, n)                 per-vertex values (f32 rank bits / i32 WCC labels)
//! [n, n + ceil(n^2/32))  adjacency bitmap, bit u*n + v  =  edge u -> v
//! ```
//!
//! Events are `(src, dst | DELETE_BIT?)` pairs; out-of-range endpoints and
//! no-op edits (inserting a present edge, deleting an absent one) are
//! ignored deterministically. Because the full edge set rides in the
//! checksummed slot array, recovery and replication rebuild the engines'
//! adjacency caches (and, for PageRank, the memoized layer pyramid) from
//! the slots alone.
//!
//! # Determinism argument
//!
//! *PageRank* maintains all `K + 1` layers of the synchronous recurrence
//! and, per slice, recomputes layer `i` only on the dirty set
//! `D_i = base ∪ out(changed_{i-1})` where `base` covers vertices whose
//! in-edge multiset or in-neighbour out-degrees changed. Each dirty vertex
//! is re-evaluated from layer `i-1` with its in-edge contributions folded
//! in ascending source order through the deterministic in-vector epoch
//! driver — the same left-to-right f32 fold the from-scratch serial
//! evaluator uses — so every layer (hence the served value region) is
//! bitwise identical to a from-scratch recompute at every snapshot point.
//!
//! *WCC* maintains the min-label fixed point of the symmetrized graph. The
//! fixed point is unique (labels are member ids; the component minimum is
//! reachable and no smaller id exists in the component), so any relaxation
//! schedule that reaches it is bitwise deterministic. Insertions seed the
//! frontier with the edge endpoints; deletions reset every vertex of each
//! touched component to its own id and seed the reset set plus its
//! neighbourhood, after which synchronous frontier waves on the in-vector
//! relax kernel re-converge.

use std::collections::BTreeSet;

use invector_core::ops::Sum;
use invector_core::stats::DepthHistogram;
use invector_core::{execute_epoch, EpochScratch, ExecPolicy, ExecVariant, InvecStats};
use invector_graph::Frontier;
use invector_kernels::relax::{relax_invec, relax_serial, WccRule};

use crate::{base_rank, bitmap_words, reference, DAMPING, DELETE_BIT};

/// Mutable adjacency (sorted out- and in-lists), mirrored by the slot
/// bitmap.
#[derive(Debug, Clone, Default)]
struct Adjacency {
    out: Vec<Vec<u32>>,
    inn: Vec<Vec<u32>>,
}

impl Adjacency {
    fn new(n: usize) -> Self {
        Adjacency { out: vec![Vec::new(); n], inn: vec![Vec::new(); n] }
    }

    /// Inserts `u -> v`; `false` if already present.
    fn insert(&mut self, u: u32, v: u32) -> bool {
        match self.out[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.out[u as usize].insert(pos, v);
                let ipos = self.inn[v as usize].binary_search(&u).unwrap_err();
                self.inn[v as usize].insert(ipos, u);
                true
            }
        }
    }

    /// Removes `u -> v`; `false` if absent.
    fn remove(&mut self, u: u32, v: u32) -> bool {
        match self.out[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos) => {
                self.out[u as usize].remove(pos);
                let ipos = self.inn[v as usize].binary_search(&u).unwrap();
                self.inn[v as usize].remove(ipos);
                true
            }
        }
    }

    fn from_bitmap(slots: &[i32], n: usize) -> Self {
        let mut adj = Adjacency::new(n);
        for u in 0..n as u32 {
            for v in 0..n as u32 {
                if bit_get(slots, n, u, v) {
                    adj.insert(u, v);
                }
            }
        }
        adj
    }

    /// Ascending merged out ∪ in neighbours of `u` (the symmetrized view
    /// WCC runs on).
    #[cfg(test)]
    fn undirected(&self, u: u32) -> Vec<u32> {
        let (a, b) = (&self.out[u as usize], &self.inn[u as usize]);
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            merged.push(next);
        }
        merged
    }
}

#[inline]
fn bit_get(slots: &[i32], n: usize, u: u32, v: u32) -> bool {
    let bit = u as usize * n + v as usize;
    slots[n + bit / 32] & (1 << (bit % 32)) != 0
}

#[inline]
fn bit_set(slots: &mut [i32], n: usize, u: u32, v: u32) {
    let bit = u as usize * n + v as usize;
    slots[n + bit / 32] |= 1 << (bit % 32);
}

#[inline]
fn bit_clear(slots: &mut [i32], n: usize, u: u32, v: u32) {
    let bit = u as usize * n + v as usize;
    slots[n + bit / 32] &= !(1 << (bit % 32));
}

/// Decodes and applies one slice of edge events to `adj` and the slot
/// bitmap, recording which vertices' in-edge sets / out-degrees actually
/// changed and which edges were really deleted.
struct EdgeDelta {
    changed_in: BTreeSet<u32>,
    changed_out: BTreeSet<u32>,
    inserted: Vec<(u32, u32)>,
    deleted: Vec<(u32, u32)>,
}

fn apply_edges(
    adj: &mut Adjacency,
    slots: &mut [i32],
    n: usize,
    events: &[(u32, u32)],
) -> EdgeDelta {
    let mut delta = EdgeDelta {
        changed_in: BTreeSet::new(),
        changed_out: BTreeSet::new(),
        inserted: Vec::new(),
        deleted: Vec::new(),
    };
    for &(src, bits) in events {
        let dst = bits & !DELETE_BIT;
        if src as usize >= n || dst as usize >= n {
            continue;
        }
        if bits & DELETE_BIT != 0 {
            if adj.remove(src, dst) {
                bit_clear(slots, n, src, dst);
                delta.deleted.push((src, dst));
                delta.changed_in.insert(dst);
                delta.changed_out.insert(src);
            }
        } else if adj.insert(src, dst) {
            bit_set(slots, n, src, dst);
            delta.inserted.push((src, dst));
            delta.changed_in.insert(dst);
            delta.changed_out.insert(src);
        }
    }
    delta
}

/// Incrementally maintained synchronous PageRank (`iters` fixed iterations
/// from the uniform vector).
#[derive(Debug, Clone)]
pub struct PageRankEngine {
    n: usize,
    iters: usize,
    adj: Adjacency,
    /// All `iters + 1` memoized layers; layer 0 is the uniform vector.
    layers: Vec<Vec<f32>>,
    /// Dense scatter target for dirty-vertex contribution sums.
    sums: Vec<f32>,
    scratch: EpochScratch<f32>,
    /// Dense dirty-set membership stamps: `stamp[v] == gen` means `v` is in
    /// the set currently being built. Generation bumps make clearing O(1);
    /// churn streams mark the same hot vertices every slice, so set
    /// maintenance must not cost an allocation or a tree walk per member.
    stamp: Vec<u64>,
    gen: u64,
}

impl PageRankEngine {
    pub fn new(n: usize, iters: usize) -> Self {
        PageRankEngine {
            n,
            iters,
            adj: Adjacency::new(n),
            layers: Vec::new(),
            sums: vec![0.0; n],
            scratch: EpochScratch::new(),
            stamp: vec![0; n],
            gen: 0,
        }
    }

    pub fn vertices(&self) -> usize {
        self.n
    }

    pub fn init(&mut self, slots: &mut [i32]) {
        slots[self.n..self.n + bitmap_words(self.n)].fill(0);
        self.rebuild(slots);
        self.write_values(slots);
    }

    pub fn rebuild(&mut self, slots: &[i32]) {
        self.adj = Adjacency::from_bitmap(slots, self.n);
        let outdeg: Vec<u32> = self.adj.out.iter().map(|o| o.len() as u32).collect();
        self.layers = reference::pagerank_layers(self.n, self.iters, &self.adj.inn, &outdeg);
    }

    fn write_values(&self, slots: &mut [i32]) {
        for (slot, rank) in slots[..self.n].iter_mut().zip(&self.layers[self.iters]) {
            *slot = rank.to_bits() as i32;
        }
    }

    pub fn apply(
        &mut self,
        slots: &mut [i32],
        events: &[(u32, u32)],
        policy: &ExecPolicy,
    ) -> InvecStats {
        let delta = apply_edges(&mut self.adj, slots, self.n, events);
        if delta.changed_in.is_empty() && delta.changed_out.is_empty() {
            return InvecStats::default();
        }
        // Float addition is the one operator here that reassociation can
        // perturb, and every bitwise contract (from-scratch equality,
        // cross-backend identity, snapshot-install rebuilds) needs one
        // canonical per-vertex fold order. Owner-computes with the Serial
        // in-worker variant is the engine configuration the exec layer
        // guarantees bit-exact against the serial left fold, at any thread
        // count — so rank sums are pinned to it; the min/max and integer
        // engines keep the full in-vector SIMD dispatch.
        let policy = ExecPolicy {
            variant: ExecVariant::Serial,
            partition: invector_core::Partition::OwnerComputes,
            deterministic: true,
            ..*policy
        };
        let policy = &policy;
        let mut stats = InvecStats::default();
        // Vertices whose layer value can change independent of upstream rank
        // movement: in-edge set changed, or an in-neighbour's out-degree did.
        // Membership is tracked with generation stamps; the per-vertex sum
        // is slot-private, so dirty-set *order* never reaches the f32 folds.
        self.gen += 1;
        let mut base_dirty: Vec<u32> = Vec::new();
        for &v in &delta.changed_in {
            if self.stamp[v as usize] != self.gen {
                self.stamp[v as usize] = self.gen;
                base_dirty.push(v);
            }
        }
        for &u in &delta.changed_out {
            for &v in &self.adj.out[u as usize] {
                if self.stamp[v as usize] != self.gen {
                    self.stamp[v as usize] = self.gen;
                    base_dirty.push(v);
                }
            }
        }
        let base = base_rank(self.n);
        let mut prev_changed: Vec<u32> = Vec::new();
        let mut dirty: Vec<u32> = Vec::new();
        let mut pairs: Vec<(i32, f32)> = Vec::new();
        for i in 1..=self.iters {
            self.gen += 1;
            dirty.clear();
            for &v in &base_dirty {
                if self.stamp[v as usize] != self.gen {
                    self.stamp[v as usize] = self.gen;
                    dirty.push(v);
                }
            }
            for &u in &prev_changed {
                for &v in &self.adj.out[u as usize] {
                    if self.stamp[v as usize] != self.gen {
                        self.stamp[v as usize] = self.gen;
                        dirty.push(v);
                    }
                }
            }
            pairs.clear();
            for &v in &dirty {
                self.sums[v as usize] = 0.0;
                for &u in &self.adj.inn[v as usize] {
                    let contrib =
                        self.layers[i - 1][u as usize] / self.adj.out[u as usize].len() as f32;
                    pairs.push((v as i32, contrib));
                }
            }
            let report = execute_epoch::<f32, Sum>(
                &mut self.sums,
                pairs.iter().copied(),
                &mut self.scratch,
                policy,
            );
            stats.merge(&report.stats);
            prev_changed.clear();
            for &v in &dirty {
                let val = base + DAMPING * self.sums[v as usize];
                if val.to_bits() != self.layers[i][v as usize].to_bits() {
                    self.layers[i][v as usize] = val;
                    prev_changed.push(v);
                }
            }
            // Even when nothing propagated (`prev_changed` empty), every
            // remaining layer still re-evaluates `base_dirty`: those
            // vertices' stored values predate the adjacency change.
        }
        self.write_values(slots);
        stats
    }
}

/// Incrementally maintained weakly-connected components (min member id per
/// component of the symmetrized graph).
#[derive(Debug, Clone)]
pub struct WccEngine {
    n: usize,
    adj: Adjacency,
    /// Generation-stamped seed-set membership (see [`PageRankEngine`]).
    stamp: Vec<u64>,
    gen: u64,
}

impl WccEngine {
    pub fn new(n: usize) -> Self {
        WccEngine { n, adj: Adjacency::new(n), stamp: vec![0; n], gen: 0 }
    }

    pub fn vertices(&self) -> usize {
        self.n
    }

    pub fn init(&mut self, slots: &mut [i32]) {
        slots[self.n..self.n + bitmap_words(self.n)].fill(0);
        for (v, slot) in slots[..self.n].iter_mut().enumerate() {
            *slot = v as i32;
        }
        self.adj = Adjacency::new(self.n);
    }

    pub fn rebuild(&mut self, slots: &[i32]) {
        self.adj = Adjacency::from_bitmap(slots, self.n);
    }

    pub fn apply(
        &mut self,
        slots: &mut [i32],
        events: &[(u32, u32)],
        policy: &ExecPolicy,
    ) -> InvecStats {
        let delta = apply_edges(&mut self.adj, slots, self.n, events);
        if delta.inserted.is_empty() && delta.deleted.is_empty() {
            return InvecStats::default();
        }
        let mut stats = InvecStats::default();
        self.gen += 1;
        let mut seed: Vec<u32> = Vec::new();
        let mark = |stamp: &mut [u64], seed: &mut Vec<u32>, v: u32| {
            if stamp[v as usize] != self.gen {
                stamp[v as usize] = self.gen;
                seed.push(v);
            }
        };
        if !delta.deleted.is_empty() {
            // Components touched by a deletion lose their labels wholesale:
            // the old label may no longer be reachable. Reset every member to
            // its own id, then let the neighbourhood re-supply the minima.
            let mut hit_labels: BTreeSet<i32> = BTreeSet::new();
            for &(u, v) in &delta.deleted {
                hit_labels.insert(slots[u as usize]);
                hit_labels.insert(slots[v as usize]);
            }
            for (v, slot) in slots.iter_mut().enumerate().take(self.n) {
                if hit_labels.contains(slot) {
                    *slot = v as i32;
                    mark(&mut self.stamp, &mut seed, v as u32);
                    // Both edge directions re-supply minima; duplicates are
                    // harmless under min, so no merged-dedup allocation.
                    for &w in &self.adj.out[v] {
                        mark(&mut self.stamp, &mut seed, w);
                    }
                    for &w in &self.adj.inn[v] {
                        mark(&mut self.stamp, &mut seed, w);
                    }
                }
            }
        }
        for &(u, v) in &delta.inserted {
            mark(&mut self.stamp, &mut seed, u);
            mark(&mut self.stamp, &mut seed, v);
        }
        seed.sort_unstable();
        // Synchronous min-label waves to the (unique) fixed point.
        let mut frontier: Vec<u32> = seed;
        let mut vals: Vec<i32> = slots[..self.n].to_vec();
        let mut new_vals = vals.clone();
        let mut src: Vec<i32> = Vec::new();
        let mut dst: Vec<i32> = Vec::new();
        let mut positions: Vec<u32> = Vec::new();
        let mut weight: Vec<f32> = Vec::new();
        let mut next = Frontier::new(self.n);
        while !frontier.is_empty() {
            src.clear();
            dst.clear();
            for &u in &frontier {
                // Out- then in-neighbours, unmerged: label relaxation is an
                // idempotent min and the next frontier dedups, so repeated
                // (u, v) pairs cannot change the fixed point or its bits.
                for &v in &self.adj.out[u as usize] {
                    src.push(u as i32);
                    dst.push(v as i32);
                }
                for &v in &self.adj.inn[u as usize] {
                    src.push(u as i32);
                    dst.push(v as i32);
                }
            }
            positions.clear();
            positions.extend(0..src.len() as u32);
            weight.clear();
            weight.resize(src.len(), 0.0);
            next.clear();
            let mut depth = DepthHistogram::new();
            if policy.variant == ExecVariant::Serial {
                relax_serial::<WccRule>(
                    &positions,
                    &src,
                    &dst,
                    &weight,
                    &vals,
                    &mut new_vals,
                    &mut next,
                );
            } else {
                relax_invec::<WccRule>(
                    policy.backend.resolve(),
                    &positions,
                    &src,
                    &dst,
                    &weight,
                    &vals,
                    &mut new_vals,
                    &mut next,
                    &mut depth,
                );
                stats.vectors += (positions.len() as u64).div_ceil(16);
            }
            stats.depth.merge(&depth);
            vals.copy_from_slice(&new_vals);
            frontier = next.vertices().iter().map(|&v| v as u32).collect();
            frontier.sort_unstable();
        }
        slots[..self.n].copy_from_slice(&vals);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_event;

    fn policy() -> ExecPolicy {
        ExecPolicy::default()
    }

    fn pagerank_table(n: usize, iters: usize) -> (PageRankEngine, Vec<i32>) {
        let mut e = PageRankEngine::new(n, iters);
        let mut slots = vec![0i32; n + bitmap_words(n)];
        e.init(&mut slots);
        (e, slots)
    }

    fn wcc_table(n: usize) -> (WccEngine, Vec<i32>) {
        let mut e = WccEngine::new(n);
        let mut slots = vec![0i32; n + bitmap_words(n)];
        e.init(&mut slots);
        (e, slots)
    }

    fn pagerank_oracle(n: usize, iters: usize, slots: &[i32]) -> Vec<i32> {
        let adj = Adjacency::from_bitmap(slots, n);
        let outdeg: Vec<u32> = adj.out.iter().map(|o| o.len() as u32).collect();
        let layers = reference::pagerank_layers(n, iters, &adj.inn, &outdeg);
        layers[iters].iter().map(|r| r.to_bits() as i32).collect()
    }

    fn wcc_oracle(n: usize, slots: &[i32]) -> Vec<i32> {
        let adj = Adjacency::from_bitmap(slots, n);
        let und: Vec<Vec<u32>> = (0..n as u32).map(|u| adj.undirected(u)).collect();
        reference::wcc_labels(n, &und)
    }

    #[test]
    fn pagerank_tracks_the_oracle_through_churn() {
        let (mut e, mut slots) = pagerank_table(6, 4);
        let slices: Vec<Vec<(u32, u32)>> = vec![
            vec![edge_event(0, 1, true), edge_event(1, 2, true)],
            vec![edge_event(2, 0, true), edge_event(0, 1, true)], // duplicate insert: no-op
            vec![edge_event(0, 1, false), edge_event(3, 4, true)],
            vec![edge_event(9, 1, true), edge_event(1, 9, true)], // out of range: ignored
            vec![edge_event(1, 2, false), edge_event(2, 0, false)],
        ];
        for s in slices {
            e.apply(&mut slots, &s, &policy());
            assert_eq!(slots[..6], pagerank_oracle(6, 4, &slots)[..]);
        }
    }

    #[test]
    fn wcc_tracks_the_oracle_through_churn_and_splits() {
        let (mut e, mut slots) = wcc_table(8);
        let slices: Vec<Vec<(u32, u32)>> = vec![
            vec![edge_event(0, 1, true), edge_event(2, 3, true), edge_event(4, 5, true)],
            vec![edge_event(1, 2, true)],  // merge {0,1} with {2,3}
            vec![edge_event(1, 2, false)], // split them again
            vec![edge_event(5, 6, true), edge_event(6, 7, true), edge_event(4, 5, false)],
            vec![edge_event(0, 7, true), edge_event(6, 7, false)],
        ];
        for s in slices {
            e.apply(&mut slots, &s, &policy());
            assert_eq!(slots[..8], wcc_oracle(8, &slots)[..]);
        }
    }

    #[test]
    fn rebuild_from_slots_is_equivalent_to_live_state() {
        let (mut e, mut slots) = pagerank_table(5, 3);
        e.apply(
            &mut slots,
            &[edge_event(0, 1, true), edge_event(1, 2, true), edge_event(2, 0, true)],
            &policy(),
        );
        let mut fresh = PageRankEngine::new(5, 3);
        fresh.rebuild(&slots);
        let mut a = slots.clone();
        let mut b = slots.clone();
        let more = [edge_event(2, 3, true), edge_event(0, 1, false)];
        e.apply(&mut a, &more, &policy());
        fresh.apply(&mut b, &more, &policy());
        assert_eq!(a, b);
    }
}
