//! From-scratch serial references for the streaming engines.
//!
//! These are the oracles the incremental engines are validated against: a
//! plain-loop synchronous PageRank, a BFS component labeller, and a serial
//! window simulator. Every float fold here runs in the canonical order the
//! engines also use (ascending source vertex per destination), so agreement
//! is *bitwise*, not approximate.

use crate::{base_rank, AggOp, DAMPING};

/// All `iters + 1` synchronous PageRank layers from the uniform vector,
/// evaluated serially on adjacency lists (`inn[v]` ascending in-neighbours,
/// `outdeg[u]` out-degrees).
///
/// Layer `i` of vertex `v` is `(1-d)/n + d * sum_{u -> v} layer[i-1][u] /
/// outdeg(u)` with the sum folded left-to-right over ascending `u` in f32 —
/// the exact recurrence the incremental engine memoizes.
pub fn pagerank_layers(n: usize, iters: usize, inn: &[Vec<u32>], outdeg: &[u32]) -> Vec<Vec<f32>> {
    let mut layers = Vec::with_capacity(iters + 1);
    layers.push(vec![1.0f32 / n as f32; n]);
    let base = base_rank(n);
    for i in 1..=iters {
        let prev = &layers[i - 1];
        let mut layer = vec![0.0f32; n];
        for (v, slot) in layer.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            for &u in &inn[v] {
                sum += prev[u as usize] / outdeg[u as usize] as f32;
            }
            *slot = base + DAMPING * sum;
        }
        layers.push(layer);
    }
    layers
}

/// Weakly-connected-component labels (minimum member id per component) on
/// symmetrized adjacency lists, via ascending-id BFS.
pub fn wcc_labels(n: usize, und: &[Vec<u32>]) -> Vec<i32> {
    let mut labels = vec![-1i32; n];
    let mut queue = Vec::new();
    for root in 0..n {
        if labels[root] >= 0 {
            continue;
        }
        // `root` is the smallest unvisited id, hence its component's label.
        labels[root] = root as i32;
        queue.clear();
        queue.push(root as u32);
        while let Some(v) = queue.pop() {
            for &w in &und[v as usize] {
                if labels[w as usize] < 0 {
                    labels[w as usize] = root as i32;
                    queue.push(w);
                }
            }
        }
    }
    labels
}

/// A plain-loop simulator of the window table, maintaining the exact slot
/// image the SIMD engine produces (see [`crate::window`] for the layout).
#[derive(Debug, Clone)]
pub struct WindowSim {
    keys: usize,
    buckets: usize,
    width: u64,
    timed: bool,
    op: AggOp,
    /// The simulated slot image.
    pub slots: Vec<i32>,
}

impl WindowSim {
    pub fn new(keys: usize, buckets: usize, width: u64, timed: bool, op: AggOp) -> Self {
        let len = crate::StreamKind::Window {
            keys: keys as u32,
            buckets: buckets as u32,
            width: width as u32,
            timed,
        }
        .required_len()
        .unwrap();
        let mut sim = WindowSim { keys, buckets, width, timed, op, slots: vec![0; len] };
        sim.reset();
        sim
    }

    fn base(&self) -> usize {
        self.keys + self.buckets * self.keys + self.buckets
    }

    fn reset(&mut self) {
        let id = self.op.identity();
        let (k, w) = (self.keys, self.buckets);
        self.slots[..k].fill(id);
        self.slots[k..k + w * k].fill(id);
        self.slots[k + w * k..k + w * k + w].fill(-1);
        let base = self.base();
        self.slots[base..base + crate::WINDOW_HEADER].fill(0);
        self.slots[base + 2] = -1;
        self.slots[base + crate::WINDOW_HEADER..].fill(id);
        self.slots[k + w * k] = 0; // bucket 0 is open from the start
    }

    fn fold(op: AggOp, a: i32, b: i32) -> i32 {
        match op {
            AggOp::Add => a.wrapping_add(b),
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
        }
    }

    /// Applies one slice of `(index, payload)` events.
    pub fn apply(&mut self, events: &[(u32, u32)]) {
        let base = self.base();
        for &(idx, bits) in events {
            if (idx as usize) < self.keys {
                let (key, val) = (idx as usize, bits as i32);
                let cur = self.slots[base] as u32 as u64;
                let slot = (cur as usize % self.buckets) * self.keys + key;
                let ring = self.keys + slot;
                self.slots[ring] = Self::fold(self.op, self.slots[ring], val);
                self.slots[key] = Self::fold(self.op, self.slots[key], val);
                let count = (self.slots[base + 3] as u32 as u64) + 1;
                self.slots[base + 3] = count as u32 as i32;
                if !self.timed && count.is_multiple_of(self.width) && count / self.width < (1 << 31)
                {
                    self.advance_to(count / self.width);
                }
            } else if idx as usize == self.keys && self.timed {
                let nb = bits as u64;
                // Bucket ids live in i32 slots: payloads with bit 31 set are
                // not valid watermarks and are ignored like any bad event.
                if nb < (1 << 31) && nb > self.slots[base] as u32 as u64 {
                    self.advance_to(nb);
                }
            }
            // anything else: deterministically ignored
        }
    }

    fn advance_to(&mut self, nb: u64) {
        let (k, w) = (self.keys, self.buckets);
        let base = self.base();
        let id = self.op.identity();
        // Evict residents in ascending bucket-id order.
        let mut residents: Vec<(i32, usize)> = (0..w)
            .filter_map(|b| {
                let rid = self.slots[k + w * k + b];
                (rid >= 0).then_some((rid, b))
            })
            .collect();
        residents.sort_unstable();
        for (rid, b) in residents {
            let evicted_at = rid as u32 as u64 + w as u64;
            if evicted_at <= nb {
                self.slots[base + 1] += 1;
                self.slots[base + 2] = rid;
                for key in 0..k {
                    self.slots[base + crate::WINDOW_HEADER + key] = self.slots[k + b * k + key];
                }
                self.slots[k + b * k..k + (b + 1) * k].fill(id);
                self.slots[k + w * k + b] = -1;
            }
        }
        // Open the new bucket (evicting whatever held its slot, already done
        // above when it expired; a survivor in the slot is impossible since
        // survivors have id > nb - w).
        let slot = nb as usize % w;
        self.slots[k + w * k + slot] = nb as u32 as i32;
        self.slots[base] = nb as u32 as i32;
        // Re-reduce the live window in ascending bucket-id order.
        let mut live: Vec<(i32, usize)> = (0..w)
            .filter_map(|b| {
                let rid = self.slots[k + w * k + b];
                (rid >= 0).then_some((rid, b))
            })
            .collect();
        live.sort_unstable();
        for key in 0..k {
            self.slots[key] = id;
        }
        for (_, b) in live {
            for key in 0..k {
                self.slots[key] = Self::fold(self.op, self.slots[key], self.slots[k + b * k + key]);
            }
        }
    }

    /// Sequence number of the currently open bucket.
    pub fn current_bucket(&self) -> u64 {
        self.slots[self.base()] as u32 as u64
    }

    /// Lifetime count of expired (retracted) buckets.
    pub fn expired(&self) -> u64 {
        self.slots[self.base() + 1] as u32 as u64
    }
}
