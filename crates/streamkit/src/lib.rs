//! Stateful streaming engines served as table kinds.
//!
//! The serve layer's flat tables fold independent `(index, value)` updates
//! with one associative operator. This crate adds two *stateful* engines on
//! top of the same epoch loop:
//!
//! - **Incremental graph analytics** ([`graph`]): an evolving edge stream
//!   where insertions/deletions mark a dirty frontier and PageRank / WCC are
//!   re-relaxed delta-style on the in-vector accumulate drivers, bitwise
//!   identical to a from-scratch serial recompute at every snapshot point.
//! - **Windowed aggregation with retraction** ([`window`]): bucketed
//!   add/min/max over tumbling and sliding windows (count- or
//!   watermark-driven), where bucket expiry emits a retraction and min/max
//!   recovery re-reduces the live buckets on the fused SIMD drivers.
//!
//! The crucial design decision is that **all engine state lives in the
//! table's i32 slot array**. The serve layer checksums, logs, checkpoints
//! and replicates slot arrays; because the engines' state is a pure
//! function of those slots (caches are rebuilt deterministically by
//! [`Engine::rebuild`]), WAL recovery and follower replication compose with
//! the new table kinds for free. Events are ordinary updates: the slot
//! index selects the verb, the 32-bit payload carries the operand.

pub mod graph;
pub mod reference;
pub mod window;

use invector_core::{ExecPolicy, InvecStats};

pub use graph::{PageRankEngine, WccEngine};
pub use window::WindowEngine;

/// Largest vertex count a graph stream table accepts. The adjacency bitmap
/// is `n^2` bits inside the slot array, so this caps table length at
/// `4096 + 4096^2/32 = 528_384` slots (~2 MiB).
pub const MAX_VERTICES: u32 = 4096;
/// Largest PageRank iteration depth (bounds the memoized layer pyramid).
pub const MAX_ITERS: u32 = 64;
/// Largest key space for a window table.
pub const MAX_KEYS: u32 = 65_536;
/// Largest live-bucket ring for a sliding window.
pub const MAX_BUCKETS: u32 = 1024;

/// Bit 31 of a graph event payload marks an edge *deletion*; the low 31
/// bits carry the destination vertex.
pub const DELETE_BIT: u32 = 1 << 31;

/// PageRank damping factor (single precision: every arithmetic step of the
/// rank recurrence is f32 so incremental and from-scratch evaluation agree
/// bitwise).
pub const DAMPING: f32 = 0.85;

/// The teleport term `(1 - d) / n` of the rank recurrence.
#[inline]
pub fn base_rank(n: usize) -> f32 {
    (1.0 - DAMPING) / n as f32
}

/// What a served stream table computes over its update stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StreamKind {
    /// Plain associative fold — the pre-existing flat table behaviour.
    #[default]
    Flat,
    /// Evolving-graph PageRank: `iters` synchronous iterations from the
    /// uniform vector, incrementally maintained over edge churn. Values are
    /// f32 rank bits in slots `[0, vertices)`.
    GraphPageRank { vertices: u32, iters: u32 },
    /// Evolving-graph weakly-connected components: min-label fixed point on
    /// the symmetrized edge set. Labels are i32 vertex ids in slots
    /// `[0, vertices)`.
    GraphWcc { vertices: u32 },
    /// Window-bucketed aggregation: `buckets` live buckets of `width`
    /// events each (`width` is advisory when `timed`), aggregates in slots
    /// `[0, keys)`.
    Window { keys: u32, buckets: u32, width: u32, timed: bool },
}

impl StreamKind {
    /// `true` for the pre-existing flat fold (no engine attached).
    pub fn is_flat(&self) -> bool {
        matches!(self, StreamKind::Flat)
    }

    /// The exact slot count a table of this kind must be declared with, or
    /// `None` for [`StreamKind::Flat`] (any length).
    pub fn required_len(&self) -> Option<usize> {
        match *self {
            StreamKind::Flat => None,
            StreamKind::GraphPageRank { vertices, .. } | StreamKind::GraphWcc { vertices } => {
                let n = vertices as usize;
                Some(n + bitmap_words(n))
            }
            StreamKind::Window { keys, buckets, .. } => {
                let (k, w) = (keys as usize, buckets as usize);
                // aggregates + ring values + ring ids + header + retraction payload
                Some(k + w * k + w + WINDOW_HEADER + k)
            }
        }
    }

    /// Validates the kind's parameters, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StreamKind::Flat => Ok(()),
            StreamKind::GraphPageRank { vertices, iters } => {
                check_range("vertices", vertices, 1, MAX_VERTICES)?;
                check_range("iters", iters, 1, MAX_ITERS)
            }
            StreamKind::GraphWcc { vertices } => check_range("vertices", vertices, 1, MAX_VERTICES),
            StreamKind::Window { keys, buckets, width, .. } => {
                check_range("keys", keys, 1, MAX_KEYS)?;
                check_range("buckets", buckets, 1, MAX_BUCKETS)?;
                check_range("width", width, 1, u32::MAX)
            }
        }
    }
}

fn check_range(what: &str, got: u32, lo: u32, hi: u32) -> Result<(), String> {
    if got < lo || got > hi {
        Err(format!("{what} must be in [{lo}, {hi}], got {got}"))
    } else {
        Ok(())
    }
}

/// Words of the `n x n` adjacency bitmap stored after the value region.
#[inline]
pub(crate) fn bitmap_words(n: usize) -> usize {
    (n * n).div_ceil(32)
}

/// Slots of window-table header state (current bucket, expiry counter,
/// last-expired bucket id, data-event counter).
pub(crate) const WINDOW_HEADER: usize = 4;

/// The associative operator a window table folds with. Mirrors the serve
/// layer's operator enum without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggOp {
    Add,
    Min,
    Max,
}

impl AggOp {
    /// The operator's identity element (the empty-bucket value).
    #[inline]
    pub fn identity(self) -> i32 {
        match self {
            AggOp::Add => 0,
            AggOp::Min => i32::MAX,
            AggOp::Max => i32::MIN,
        }
    }
}

/// How a table's value region should be interpreted by ordering queries
/// (top-k): raw i32, or f32 bit patterns widened for comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRepr {
    I32,
    F32Bits,
}

/// A windowed read: the live (or just-retracted) per-key aggregates plus
/// retraction counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRead {
    /// Total buckets expired over the table's lifetime.
    pub expired: u64,
    /// The id of the bucket the values were read from.
    pub bucket: u64,
    /// Per-key aggregate bits, `keys` entries.
    pub values: Vec<u32>,
}

/// Encodes an edge insertion/deletion as an update event
/// `(slot index, payload)`.
#[inline]
pub fn edge_event(src: u32, dst: u32, insert: bool) -> (u32, u32) {
    (src, if insert { dst } else { dst | DELETE_BIT })
}

/// Encodes a window data point for `key`.
#[inline]
pub fn window_data(key: u32, value: i32) -> (u32, u32) {
    (key, value as u32)
}

/// Encodes a watermark advance to `bucket` for a timed window table with
/// `keys` keys (the control verb lives one past the key range).
#[inline]
pub fn window_advance(keys: u32, bucket: u32) -> (u32, u32) {
    (keys, bucket)
}

/// One streaming engine instance attached to a served table.
///
/// The serve layer owns the slot array; the engine owns only caches that
/// are a pure function of the slots. Contract:
///
/// - [`Engine::init`] writes the initial (empty-stream) slot image.
/// - [`Engine::apply`] folds a slice of events into the slots, exactly as
///   the epoch loop would fold flat updates: the post-state is a pure
///   function of the pre-state and the event sequence.
/// - [`Engine::rebuild`] re-derives the caches from a slot image installed
///   from a snapshot, checkpoint or WAL replay.
#[derive(Debug, Clone)]
pub enum Engine {
    PageRank(PageRankEngine),
    Wcc(WccEngine),
    Window(WindowEngine),
}

impl Engine {
    /// Builds the engine for a stream kind, or `None` for
    /// [`StreamKind::Flat`]. `op` is the table's declared operator (only
    /// window tables fold with it).
    pub fn for_kind(kind: &StreamKind, op: AggOp) -> Option<Engine> {
        match *kind {
            StreamKind::Flat => None,
            StreamKind::GraphPageRank { vertices, iters } => {
                Some(Engine::PageRank(PageRankEngine::new(vertices as usize, iters as usize)))
            }
            StreamKind::GraphWcc { vertices } => {
                Some(Engine::Wcc(WccEngine::new(vertices as usize)))
            }
            StreamKind::Window { keys, buckets, width, timed } => Some(Engine::Window(
                WindowEngine::new(keys as usize, buckets as usize, width as u64, timed, op),
            )),
        }
    }

    /// Writes the empty-stream slot image and primes the caches.
    pub fn init(&mut self, slots: &mut [i32]) {
        match self {
            Engine::PageRank(e) => e.init(slots),
            Engine::Wcc(e) => e.init(slots),
            Engine::Window(e) => e.init(slots),
        }
    }

    /// Rebuilds caches from an installed slot image.
    pub fn rebuild(&mut self, slots: &[i32]) {
        match self {
            Engine::PageRank(e) => e.rebuild(slots),
            Engine::Wcc(e) => e.rebuild(slots),
            Engine::Window(_) => {} // stateless: all window state lives in the slots
        }
    }

    /// Folds one slice of `(index, payload)` events into the slots.
    pub fn apply(
        &mut self,
        slots: &mut [i32],
        events: &[(u32, u32)],
        policy: &ExecPolicy,
    ) -> InvecStats {
        match self {
            Engine::PageRank(e) => e.apply(slots, events, policy),
            Engine::Wcc(e) => e.apply(slots, events, policy),
            Engine::Window(e) => e.apply(slots, events, policy),
        }
    }

    /// The slot range holding query-ordered values (top-k region) and how
    /// to compare them.
    pub fn value_region(&self) -> (usize, ValueRepr) {
        match self {
            Engine::PageRank(e) => (e.vertices(), ValueRepr::F32Bits),
            Engine::Wcc(e) => (e.vertices(), ValueRepr::I32),
            Engine::Window(e) => (e.keys(), ValueRepr::I32),
        }
    }

    /// Reads a window bucket (live, current aggregate via `u64::MAX`, or
    /// the most recently retracted bucket). Errors on non-window tables and
    /// unknown bucket ids.
    pub fn window_query(&self, slots: &[i32], bucket: u64) -> Result<WindowRead, String> {
        match self {
            Engine::Window(e) => e.query(slots, bucket),
            _ => Err("window query on a non-window table".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_kind_lengths() {
        assert_eq!(StreamKind::Flat.required_len(), None);
        assert_eq!(StreamKind::GraphPageRank { vertices: 8, iters: 3 }.required_len(), Some(8 + 2));
        assert_eq!(StreamKind::GraphWcc { vertices: 33 }.required_len(), Some(33 + 35));
        // keys=4 buckets=3: 4 + 12 + 3 + 4 + 4
        assert_eq!(
            StreamKind::Window { keys: 4, buckets: 3, width: 2, timed: false }.required_len(),
            Some(27)
        );
    }

    #[test]
    fn stream_kind_validation() {
        assert!(StreamKind::Flat.validate().is_ok());
        assert!(StreamKind::GraphWcc { vertices: 0 }.validate().is_err());
        assert!(StreamKind::GraphPageRank { vertices: MAX_VERTICES + 1, iters: 1 }
            .validate()
            .is_err());
        assert!(StreamKind::GraphPageRank { vertices: 16, iters: 0 }.validate().is_err());
        assert!(StreamKind::Window { keys: 1, buckets: 1, width: 0, timed: true }
            .validate()
            .is_err());
        assert!(StreamKind::Window { keys: 3, buckets: 2, width: 5, timed: false }
            .validate()
            .is_ok());
    }

    #[test]
    fn event_encoders() {
        assert_eq!(edge_event(3, 7, true), (3, 7));
        assert_eq!(edge_event(3, 7, false), (3, 7 | DELETE_BIT));
        assert_eq!(window_data(2, -1), (2, u32::MAX));
        assert_eq!(window_advance(4, 9), (4, 9));
    }
}
