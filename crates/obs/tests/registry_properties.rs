//! Cross-thread properties of the sharded registry: however a stream of
//! increments is dealt across writer threads (and so across per-thread
//! shards), the merged read equals the serial fold — shard merge is
//! associative and lossless — and histogram merges preserve the count,
//! sum, and per-bucket tallies exactly.

#![cfg(feature = "obs")]

use invector_obs::Registry;
use proptest::prelude::*;

/// Deals `items` round-robin to `threads` workers, as a fixed-but-arbitrary
/// association of the increment stream.
fn deal<T: Copy>(items: &[T], threads: usize) -> Vec<Vec<T>> {
    (0..threads).map(|t| items.iter().copied().skip(t).step_by(threads).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counter increments split across any number of writer threads merge
    /// to the serial sum.
    #[test]
    fn counter_shard_merge_is_associative_and_lossless(
        increments in prop::collection::vec(0u64..1_000, 1..64),
        threads in 1usize..8,
    ) {
        let registry = Registry::new();
        let counter = registry.counter("fuzz_events_total", "fuzzed increments");
        let expect: u64 = increments.iter().sum();
        std::thread::scope(|s| {
            for chunk in deal(&increments, threads) {
                let counter = counter.clone();
                s.spawn(move || {
                    for n in chunk {
                        counter.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(counter.value(), expect);
    }

    /// Histogram observations split across writer threads merge to the
    /// serial count, sum, and bucket tallies.
    #[test]
    fn histogram_shard_merge_preserves_every_bucket(
        values in prop::collection::vec(0u32..40, 1..80),
        threads in 1usize..8,
    ) {
        let registry = Registry::new();
        let bounds = [5.0, 10.0, 20.0];
        let hist = registry.histogram("fuzz_depth", "fuzzed observations", &bounds);
        std::thread::scope(|s| {
            for chunk in deal(&values, threads) {
                let hist = hist.clone();
                s.spawn(move || {
                    for v in chunk {
                        hist.observe(f64::from(v));
                    }
                });
            }
        });

        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let expect_sum: f64 = values.iter().map(|&v| f64::from(v)).sum();
        prop_assert!((snap.sum - expect_sum).abs() < 1e-9, "sum {} != {}", snap.sum, expect_sum);
        // Serial bucket fold: bounds are upper-inclusive cut points.
        let mut expect_buckets = vec![0u64; bounds.len() + 1];
        for &v in &values {
            let v = f64::from(v);
            let i = bounds.partition_point(|&b| b < v);
            expect_buckets[i] += 1;
        }
        prop_assert_eq!(snap.buckets, expect_buckets);
    }

    /// Reading mid-stream never observes more than the final total, and a
    /// re-read after the writers join is stable: merge is monotone.
    #[test]
    fn concurrent_reads_are_monotone_and_converge(
        increments in prop::collection::vec(1u64..100, 1..40),
    ) {
        let registry = Registry::new();
        let counter = registry.counter("fuzz_monotone_total", "fuzzed increments");
        let expect: u64 = increments.iter().sum();
        std::thread::scope(|s| {
            let writer = counter.clone();
            let chunk = increments.clone();
            s.spawn(move || {
                for n in chunk {
                    writer.add(n);
                }
            });
            let mut last = 0u64;
            for _ in 0..50 {
                let now = counter.value();
                assert!(now >= last, "merged read went backwards: {now} < {last}");
                assert!(now <= expect, "merged read overshot: {now} > {expect}");
                last = now;
            }
        });
        prop_assert_eq!(counter.value(), expect);
        prop_assert_eq!(counter.value(), expect, "re-read is stable after join");
    }
}
