//! The metric registry: typed counters, gauges, and histograms backed by
//! per-thread shards that are merged on read.
//!
//! The write path never takes a lock. Every thread that touches a registry
//! gets its own [`Shard`] — a fixed block of `AtomicU64` slots — found
//! through a thread-local table keyed by registry id. Recording a counter
//! increment is one relaxed `fetch_add` on a slot no other thread writes;
//! the registry's shard list mutex is taken only the first time a thread
//! meets a registry (and on the read path, which merges every shard).
//!
//! Registries are instance-based so independent subsystems (e.g. two
//! server cores in one test process) do not see each other's counts;
//! [`Registry::global`] is the shared process-wide instance that
//! library-level facilities (SIMD instruction accounting, the execution
//! engine, the harness) publish into.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

/// `AtomicU64` slots per shard. Registration panics past this many; the
/// registry is for a curated set of subsystem metrics, not unbounded
/// cardinality.
const SHARD_SLOTS: usize = 512;

/// Upper bound on histogram bucket bounds (plus the implicit `+Inf`).
const MAX_BOUNDS: usize = 64;

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

/// One thread's block of metric slots for one registry.
#[derive(Debug)]
struct Shard {
    slots: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Shard {
        Shard { slots: (0..SHARD_SLOTS).map(|_| AtomicU64::new(0)).collect() }
    }
}

/// What a registered name means: which slots it owns and how to read them.
#[derive(Debug, Clone)]
enum Kind {
    /// One sharded slot, summed on read.
    Counter { slot: usize },
    /// One registry-global slot holding `f64` bits, last write wins.
    Gauge { slot: usize },
    /// `bounds.len() + 1` sharded bucket slots, then a count slot, then an
    /// `f64`-bits sum slot.
    Histogram { base: usize, bounds: Arc<[f64]> },
}

#[derive(Debug, Clone)]
struct Meta {
    name: String,
    help: String,
    kind: Kind,
}

type CollectorFn = Box<dyn Fn() -> u64 + Send>;

struct Inner {
    id: u64,
    metrics: Mutex<Vec<Meta>>,
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Registry-global slots (gauges; no per-thread semantics for
    /// last-write-wins values).
    globals: Shard,
    next_slot: AtomicUsize,
    next_global: AtomicUsize,
    collectors: Mutex<Vec<(String, String, CollectorFn)>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").field("id", &self.id).finish()
    }
}

thread_local! {
    /// This thread's shard per registry it has touched. Entries whose
    /// registry has been dropped are pruned when the table is next grown.
    static TLS_SHARDS: RefCell<Vec<TlsEntry>> = const { RefCell::new(Vec::new()) };
}

struct TlsEntry {
    id: u64,
    alive: Weak<Inner>,
    shard: Arc<Shard>,
}

/// Finds (or creates and registers) the calling thread's shard of `inner`.
fn shard_for(inner: &Arc<Inner>) -> Arc<Shard> {
    TLS_SHARDS.with(|table| {
        let mut table = table.borrow_mut();
        if let Some(e) = table.iter().find(|e| e.id == inner.id) {
            return Arc::clone(&e.shard);
        }
        // Cold path: first touch of this registry from this thread. Prune
        // shards of dead registries so long-lived threads meeting many
        // short-lived registries (proptest loops) stay bounded.
        table.retain(|e| e.alive.strong_count() > 0);
        let shard = Arc::new(Shard::new());
        inner.shards.lock().expect("registry shard list").push(Arc::clone(&shard));
        table.push(TlsEntry {
            id: inner.id,
            alive: Arc::downgrade(inner),
            shard: Arc::clone(&shard),
        });
        shard
    })
}

/// A process- or subsystem-scoped metric registry. Cheap to clone (the
/// clone shares the underlying storage).
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
                metrics: Mutex::new(Vec::new()),
                shards: Mutex::new(Vec::new()),
                globals: Shard::new(),
                next_slot: AtomicUsize::new(0),
                next_global: AtomicUsize::new(0),
                collectors: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The shared process-wide registry. Library facilities (SIMD
    /// instruction accounting, the execution engine, the harness) publish
    /// here; subsystem instances (one per server core) use their own
    /// [`Registry::new`].
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn alloc_slots(&self, n: usize) -> usize {
        let base = self.inner.next_slot.fetch_add(n, Ordering::Relaxed);
        assert!(
            base + n <= SHARD_SLOTS,
            "obs registry slot capacity exceeded ({SHARD_SLOTS} slots)"
        );
        base
    }

    /// Registers (or finds) a monotonically increasing counter.
    ///
    /// Registration is idempotent per name; the returned handle is cheap
    /// to clone and safe to share across threads.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind,
    /// or if the registry's slot capacity is exhausted.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let name = sanitize(name);
        let mut metrics = self.inner.metrics.lock().expect("registry metrics");
        if let Some(m) = metrics.iter().find(|m| m.name == name) {
            match m.kind {
                Kind::Counter { slot } => return Counter { inner: Arc::clone(&self.inner), slot },
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let slot = self.alloc_slots(1);
        metrics.push(Meta { name, help: help.to_string(), kind: Kind::Counter { slot } });
        Counter { inner: Arc::clone(&self.inner), slot }
    }

    /// Registers (or finds) a last-write-wins gauge.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch or slot exhaustion (see
    /// [`counter`](Registry::counter)).
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let name = sanitize(name);
        let mut metrics = self.inner.metrics.lock().expect("registry metrics");
        if let Some(m) = metrics.iter().find(|m| m.name == name) {
            match m.kind {
                Kind::Gauge { slot } => return Gauge { inner: Arc::clone(&self.inner), slot },
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let slot = self.inner.next_global.fetch_add(1, Ordering::Relaxed);
        assert!(slot < SHARD_SLOTS, "obs registry gauge capacity exceeded");
        metrics.push(Meta { name, help: help.to_string(), kind: Kind::Gauge { slot } });
        Gauge { inner: Arc::clone(&self.inner), slot }
    }

    /// Registers (or finds) a histogram over the given upper bucket bounds
    /// (an `+Inf` bucket is implicit). Bounds must be finite and strictly
    /// increasing.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch, slot exhaustion, more than 64 bounds, or
    /// non-increasing bounds.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        assert!(bounds.len() <= MAX_BOUNDS, "too many histogram bounds");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        let name = sanitize(name);
        let mut metrics = self.inner.metrics.lock().expect("registry metrics");
        if let Some(m) = metrics.iter().find(|m| m.name == name) {
            match &m.kind {
                Kind::Histogram { base, bounds } => {
                    return Histogram {
                        inner: Arc::clone(&self.inner),
                        base: *base,
                        bounds: Arc::clone(bounds),
                    }
                }
                _ => panic!("metric '{name}' already registered with a different kind"),
            }
        }
        let bounds: Arc<[f64]> = bounds.into();
        // bounds.len()+1 buckets, one count slot, one f64-bits sum slot.
        let base = self.alloc_slots(bounds.len() + 3);
        metrics.push(Meta {
            name,
            help: help.to_string(),
            kind: Kind::Histogram { base, bounds: Arc::clone(&bounds) },
        });
        Histogram { inner: Arc::clone(&self.inner), base, bounds }
    }

    /// Registers a pull-style collector: `f` is invoked on every snapshot
    /// and its value reported as a counter named `name`. Used to bridge
    /// pre-existing accounting (e.g. the SIMD instruction totals) into the
    /// registry without double bookkeeping.
    pub fn register_collector(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + 'static) {
        let name = sanitize(name);
        let mut collectors = self.inner.collectors.lock().expect("registry collectors");
        if collectors.iter().any(|(n, _, _)| *n == name) {
            return;
        }
        collectors.push((name, help.to_string(), Box::new(f)));
    }

    /// Merges every shard and collector into a point-in-time snapshot, in
    /// registration order (collectors last).
    pub fn snapshot(&self) -> Vec<Metric> {
        let metrics = self.inner.metrics.lock().expect("registry metrics").clone();
        let shards = self.inner.shards.lock().expect("registry shard list").clone();
        let sum_slot = |slot: usize| -> u64 {
            shards.iter().map(|s| s.slots[slot].load(Ordering::Relaxed)).sum()
        };
        let mut out = Vec::with_capacity(metrics.len());
        for m in metrics {
            let value = match m.kind {
                Kind::Counter { slot } => MetricValue::Counter(sum_slot(slot)),
                Kind::Gauge { slot } => MetricValue::Gauge(f64::from_bits(
                    self.inner.globals.slots[slot].load(Ordering::Relaxed),
                )),
                Kind::Histogram { base, bounds } => {
                    let buckets: Vec<u64> =
                        (0..=bounds.len()).map(|i| sum_slot(base + i)).collect();
                    let count = sum_slot(base + bounds.len() + 1);
                    let sum = shards
                        .iter()
                        .map(|s| {
                            f64::from_bits(s.slots[base + bounds.len() + 2].load(Ordering::Relaxed))
                        })
                        .sum();
                    MetricValue::Histogram(HistogramSnapshot {
                        bounds: bounds.to_vec(),
                        buckets,
                        count,
                        sum,
                    })
                }
            };
            out.push(Metric { name: m.name, help: m.help, value });
        }
        for (name, help, f) in self.inner.collectors.lock().expect("registry collectors").iter() {
            out.push(Metric {
                name: name.clone(),
                help: help.clone(),
                value: MetricValue::Counter(f()),
            });
        }
        out
    }
}

/// Prometheus metric names admit `[a-zA-Z0-9_:]`; anything else becomes
/// `_` so registration never fails on a name.
fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    inner: Arc<Inner>,
    slot: usize,
}

impl Counter {
    /// Adds `n`. Lock-free: one relaxed `fetch_add` on this thread's shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if !cfg!(feature = "obs") {
            return;
        }
        let shard = shard_for(&self.inner);
        shard.slots[self.slot].fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The merged total across every thread's shard.
    pub fn value(&self) -> u64 {
        let shards = self.inner.shards.lock().expect("registry shard list");
        shards.iter().map(|s| s.slots[self.slot].load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    inner: Arc<Inner>,
    slot: usize,
}

impl Gauge {
    /// Stores `v` (last write wins; a single relaxed store).
    #[inline]
    pub fn set(&self, v: f64) {
        if !cfg!(feature = "obs") {
            return;
        }
        self.inner.globals.slots[self.slot].store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.inner.globals.slots[self.slot].load(Ordering::Relaxed))
    }
}

/// A histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Inner>,
    base: usize,
    bounds: Arc<[f64]>,
}

impl Histogram {
    /// Records `n` observations of `v` in one step. Lock-free; the sum
    /// slot is single-writer per shard (only the owning thread writes it),
    /// so a relaxed read-modify-write needs no CAS loop.
    pub fn observe_n(&self, v: f64, n: u64) {
        if !cfg!(feature = "obs") || n == 0 {
            return;
        }
        let shard = shard_for(&self.inner);
        let b = self.bounds.partition_point(|&bound| bound < v);
        shard.slots[self.base + b].fetch_add(n, Ordering::Relaxed);
        shard.slots[self.base + self.bounds.len() + 1].fetch_add(n, Ordering::Relaxed);
        let sum_slot = &shard.slots[self.base + self.bounds.len() + 2];
        let old = f64::from_bits(sum_slot.load(Ordering::Relaxed));
        sum_slot.store((old + v * n as f64).to_bits(), Ordering::Relaxed);
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn observe(&self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Bucket-interpolated quantile of the merged histogram — the
    /// pull-side shorthand for `snapshot().quantile(q)`. `0.0` when empty
    /// (and always, with the `obs` feature compiled out).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// The merged snapshot across every thread's shard.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let shards = self.inner.shards.lock().expect("registry shard list").clone();
        let sum_slot = |slot: usize| -> u64 {
            shards.iter().map(|s| s.slots[slot].load(Ordering::Relaxed)).sum()
        };
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: (0..=self.bounds.len()).map(|i| sum_slot(self.base + i)).collect(),
            count: sum_slot(self.base + self.bounds.len() + 1),
            sum: shards
                .iter()
                .map(|s| {
                    f64::from_bits(
                        s.slots[self.base + self.bounds.len() + 2].load(Ordering::Relaxed),
                    )
                })
                .sum(),
        }
    }
}

/// One metric's merged value at snapshot time.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Sanitized metric name.
    pub name: String,
    /// Help text for exposition.
    pub help: String,
    /// The merged value.
    pub value: MetricValue,
}

/// The typed value of a snapshot entry.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Merged counter total.
    Counter(u64),
    /// Current gauge value.
    Gauge(f64),
    /// Merged histogram state.
    Histogram(HistogramSnapshot),
}

/// A merged histogram: per-bucket counts (the last bucket is `+Inf`),
/// total count, and the sum of observed values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds (exclusive of the implicit `+Inf`).
    pub bounds: Vec<f64>,
    /// Non-cumulative bucket counts, `bounds.len() + 1` entries.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Mean observed value; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Bucket-interpolated quantile (`q` in `[0, 1]`); `0.0` when empty.
    /// Within a bucket the estimate interpolates linearly between the
    /// bucket's bounds (the `+Inf` bucket reports its lower bound).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let prev = cum;
            cum += n;
            if (cum as f64) >= rank {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let Some(&upper) = self.bounds.get(i) else { return lower };
                if n == 0 {
                    return upper;
                }
                let frac = (rank - prev as f64) / n as f64;
                return lower + (upper - lower) * frac.clamp(0.0, 1.0);
            }
        }
        self.bounds.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_across_threads() {
        let r = Registry::new();
        let c = r.counter("test_total", "test");
        c.add(5);
        let c2 = c.clone();
        std::thread::spawn(move || c2.add(7)).join().unwrap();
        if cfg!(feature = "obs") {
            assert_eq!(c.value(), 12);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter("dup", "first");
        let b = r.counter("dup", "second");
        a.inc();
        b.inc();
        if cfg!(feature = "obs") {
            assert_eq!(a.value(), 2, "same slot behind both handles");
        }
        assert!(std::panic::catch_unwind(|| r.gauge("dup", "kind clash")).is_err());
    }

    #[test]
    fn gauge_last_write_wins() {
        let r = Registry::new();
        let g = r.gauge("ratio", "test");
        g.set(0.25);
        g.set(0.75);
        if cfg!(feature = "obs") {
            assert_eq!(g.value(), 0.75);
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn histogram_buckets_count_and_sum() {
        let r = Registry::new();
        let h = r.histogram("lat", "test", &[1.0, 10.0, 100.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe_n(50.0, 2);
        h.observe(1e6); // +Inf bucket
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![1, 1, 2, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - (0.5 + 5.0 + 100.0 + 1e6)).abs() < 1e-9);
        assert!(s.quantile(0.5) <= 100.0);
        assert!(s.quantile(0.99) >= 100.0);
    }

    #[test]
    fn histogram_quantile_helper_matches_the_snapshot_and_orders() {
        let r = Registry::new();
        let h = r.histogram("q", "test", &[1.0, 10.0, 100.0]);
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reads zero");
        for v in [0.5, 2.0, 3.0, 20.0, 30.0, 40.0] {
            h.observe(v);
        }
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert_eq!(p50, h.snapshot().quantile(0.50), "helper is the snapshot quantile");
        assert!(p50 <= p99, "quantiles are monotone in q: {p50} > {p99}");
        if cfg!(feature = "obs") {
            assert!(p50 > 1.0 && p50 <= 10.0, "median in the (1, 10] bucket: {p50}");
            assert!(p99 > 10.0 && p99 <= 100.0, "p99 in the (10, 100] bucket: {p99}");
        } else {
            assert_eq!(p99, 0.0, "records are no-ops without the obs feature");
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn exact_boundary_lands_in_its_bucket() {
        let r = Registry::new();
        let h = r.histogram("b", "test", &[1.0, 2.0]);
        h.observe(1.0); // le="1" cumulative must include it
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn collectors_appear_in_snapshots() {
        let r = Registry::new();
        r.register_collector("pulled_total", "test", || 42);
        let snap = r.snapshot();
        let m = snap.iter().find(|m| m.name == "pulled_total").unwrap();
        assert!(matches!(m.value, MetricValue::Counter(42)));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c"), "a_b_c");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }

    #[cfg(feature = "obs")]
    #[test]
    fn dropped_registries_do_not_leak_tls_entries() {
        // Touch many short-lived registries from this thread; the TLS
        // table prunes dead entries, so this stays bounded.
        for _ in 0..100 {
            let r = Registry::new();
            r.counter("x", "test").inc();
        }
        TLS_SHARDS.with(|t| assert!(t.borrow().len() < 100));
    }
}
