//! Exporters: Prometheus text exposition, a JSON metric snapshot, and
//! chrome://tracing dumps of the span rings.

use crate::json::{escape_into, number};
use crate::registry::{MetricValue, Registry};
use crate::span::drain_spans;

/// Renders `registry` in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` comment pairs followed by sample lines,
/// histograms with cumulative `le` buckets plus `_sum` / `_count`.
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for m in registry.snapshot() {
        let help = m.help.replace('\\', "\\\\").replace('\n', "\\n");
        match m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("# HELP {} {}\n", m.name, help));
                out.push_str(&format!("# TYPE {} counter\n", m.name));
                out.push_str(&format!("{} {}\n", m.name, v));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("# HELP {} {}\n", m.name, help));
                out.push_str(&format!("# TYPE {} gauge\n", m.name));
                out.push_str(&format!("{} {}\n", m.name, number(v)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# HELP {} {}\n", m.name, help));
                out.push_str(&format!("# TYPE {} histogram\n", m.name));
                let mut cum = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    cum += n;
                    let le = match h.bounds.get(i) {
                        Some(b) => format!("{b}"),
                        None => "+Inf".to_string(),
                    };
                    out.push_str(&format!("{}_bucket{{le=\"{le}\"}} {cum}\n", m.name));
                }
                out.push_str(&format!("{}_sum {}\n", m.name, number(h.sum)));
                out.push_str(&format!("{}_count {}\n", m.name, h.count));
            }
        }
    }
    out
}

/// Renders `registry` as a JSON document:
/// `{"metrics":[{"name":...,"kind":...,...}]}` — counters and gauges carry
/// a `value`, histograms carry `bounds`, `buckets` (non-cumulative),
/// `count`, and `sum`. Bench bins embed this snapshot in their result
/// files so instruction/depth series ride along with throughput numbers.
pub fn json_snapshot(registry: &Registry) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, m) in registry.snapshot().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(&mut out, &m.name);
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(",\"kind\":\"counter\",\"value\":{v}}}"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(",\"kind\":\"gauge\",\"value\":{}}}", number(*v)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(",\"kind\":\"histogram\",\"bounds\":[");
                for (j, b) in h.bounds.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&number(*b));
                }
                out.push_str("],\"buckets\":[");
                for (j, n) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&n.to_string());
                }
                out.push_str(&format!("],\"count\":{},\"sum\":{}}}", h.count, number(h.sum)));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Dumps every thread's span ring as a chrome://tracing JSON document
/// (the "JSON Array Format" wrapped in an object): complete (`"ph":"X"`)
/// events with microsecond `ts`/`dur`, one `tid` per recording thread.
/// Load it at `about:tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace() -> String {
    let mut spans = drain_spans();
    spans.sort_by_key(|s| s.start_ns);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        escape_into(&mut out, s.name);
        out.push_str(&format!(
            ",\"cat\":\"invector\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            s.tid,
            number(s.start_ns as f64 / 1e3),
            number(s.dur_ns as f64 / 1e3),
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    #[cfg(feature = "obs")]
    #[test]
    fn prometheus_exposition_renders_all_kinds() {
        let r = Registry::new();
        let c = r.counter("ex_events_total", "events seen");
        c.add(3);
        let g = r.gauge("ex_ratio", "a ratio");
        g.set(0.5);
        let h = r.histogram("ex_latency_us", "latency", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let text = prometheus(&r);
        assert!(text.contains("# TYPE ex_events_total counter\nex_events_total 3\n"));
        assert!(text.contains("# TYPE ex_ratio gauge\nex_ratio 0.5\n"));
        assert!(text.contains("ex_latency_us_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("ex_latency_us_bucket{le=\"10\"} 2\n"), "buckets are cumulative");
        assert!(text.contains("ex_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("ex_latency_us_count 3\n"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn json_snapshot_is_valid_json_with_all_kinds() {
        let r = Registry::new();
        r.counter("snap_total", "c").add(7);
        r.gauge("snap_gauge", "g").set(1.25);
        r.histogram("snap_hist", "h", &[2.0]).observe(1.0);
        let doc = parse(&json_snapshot(&r)).expect("snapshot parses");
        let metrics = doc.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 3);
        let hist =
            metrics.iter().find(|m| m.get("name").unwrap().as_str() == Some("snap_hist")).unwrap();
        assert_eq!(hist.get("kind").unwrap().as_str(), Some("histogram"));
        assert_eq!(hist.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(hist.get("buckets").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let r = Registry::new();
        assert_eq!(prometheus(&r), "");
        assert!(parse(&json_snapshot(&r)).is_ok());
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        // Record a couple of spans when the feature allows; either way the
        // document must parse and have the about:tracing shape.
        let _flag = crate::TEST_FLAG_LOCK.lock().unwrap();
        crate::set_enabled(true);
        {
            let _a = crate::span!("trace.export");
        }
        crate::set_enabled(false);
        let doc = parse(&chrome_trace()).expect("chrome trace parses");
        let events = doc.get("traceEvents").expect("traceEvents").as_array().expect("array");
        for e in events {
            assert_eq!(e.get("ph"), Some(&Value::String("X".into())), "complete events");
            assert!(e.get("name").unwrap().as_str().is_some());
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().is_some());
            assert!(e.get("pid").unwrap().as_f64().is_some());
            assert!(e.get("tid").unwrap().as_f64().is_some());
        }
        #[cfg(feature = "obs")]
        assert!(
            events.iter().any(|e| e.get("name").unwrap().as_str() == Some("trace.export")),
            "the span recorded above must appear"
        );
    }
}
