//! Unified observability for the invector stack: a process-wide metric
//! registry, lightweight span tracing, and exporters — zero overhead when
//! disabled.
//!
//! # Layers
//!
//! - **Registry** ([`Registry`]): typed [`Counter`]s, [`Gauge`]s, and
//!   [`Histogram`]s backed by per-thread shards of relaxed atomics, merged
//!   on read. The write path takes no locks; independent subsystems use
//!   instance registries while library facilities publish into
//!   [`Registry::global`].
//! - **Spans** ([`span!`]): RAII guards recording into bounded per-thread
//!   ring buffers, exported in chrome://tracing format.
//! - **Exporters** ([`prometheus`], [`json_snapshot`], [`chrome_trace`]):
//!   Prometheus text exposition (served by `invector-serve` as the
//!   `Metrics` protocol verb), a JSON snapshot bench bins embed in their
//!   result files, and trace dumps loadable at `about:tracing`.
//!
//! # Disabling
//!
//! Two switches compose:
//!
//! - The **`obs` cargo feature** (on by default): compiled out, every
//!   record-side call is a no-op the optimizer deletes, and [`enabled`] is
//!   a constant `false`.
//! - The **runtime flag** ([`set_enabled`]): gates span recording and
//!   opt-in publishers (the harness `--obs` path). One relaxed load plus
//!   one branch on the hot path; off by default, switched on by servers
//!   and the CLI's `--obs` flag. Registry counters tied to coarse events
//!   (epoch boundaries, engine task dispatch) record whenever the feature
//!   is compiled in, since their cost is amortized over thousands of
//!   updates.

#![warn(missing_docs)]

mod export;
pub mod json;
mod registry;
mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use export::{chrome_trace, json_snapshot, prometheus};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Metric, MetricValue, Registry};
pub use span::{drain_spans, span_with_cached_id, Span, SpanRecord, RING_CAPACITY};

static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(false);

/// `true` when the `obs` feature is compiled in **and** the runtime flag
/// is on. This is the single branch guarding span recording and opt-in
/// publishers; with the feature compiled out it is a constant `false`.
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "obs") && RUNTIME_ENABLED.load(Ordering::Relaxed)
}

/// Switches runtime observability on or off (process-wide). A no-op
/// without the `obs` feature.
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// `true` when the crate was compiled with the `obs` feature (the
/// default).
#[inline]
pub const fn compiled() -> bool {
    cfg!(feature = "obs")
}

/// Serializes tests (across this crate's modules) that toggle the global
/// runtime flag.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_flag_round_trips_under_the_feature() {
        let _flag = TEST_FLAG_LOCK.lock().unwrap();
        set_enabled(true);
        assert_eq!(enabled(), compiled());
        set_enabled(false);
        assert!(!enabled());
    }
}
