//! A minimal JSON emitter and structural parser.
//!
//! The repo is dependency-free by policy, so the exporters hand-write
//! their JSON; this module holds the escaping/formatting helpers and a
//! small recursive-descent parser used by tests to validate exported
//! documents structurally (e.g. that a chrome-trace dump really is an
//! object with a `traceEvents` array of complete event objects).
//!
//! The parser accepts standard JSON (RFC 8259): objects, arrays, strings
//! with escapes, numbers, booleans, null. It is for validation, not speed.

use std::collections::BTreeMap;

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats an `f64` so it round-trips through JSON: finite values via
/// Rust's shortest representation, non-finite values as `null` (JSON has
/// no NaN/Inf).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The member named `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses one JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at offset {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are replaced rather than paired;
                            // the exporters never emit them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance by one UTF-8 character, not one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_escaped_strings() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":true,"d":null},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse(" [ ] ").unwrap(), Value::Array(vec![]));
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.5), "1.5");
    }
}
