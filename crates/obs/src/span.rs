//! Lightweight span tracing: RAII guards recording into per-thread ring
//! buffers with bounded memory.
//!
//! A span is opened with the [`span!`](crate::span!) macro (interning the
//! `'static` name once per call site, cached in a per-site atomic) and
//! closed by dropping the guard. Completed spans land in the calling
//! thread's ring — a fixed block of atomic words overwritten oldest-first,
//! so tracing memory is bounded at [`RING_CAPACITY`] records per thread no
//! matter how long the process runs.
//!
//! Recording is gated on the runtime flag ([`crate::enabled`]): with
//! observability off (or the `obs` feature compiled out) opening a span is
//! a single branch and records nothing.
//!
//! Rings are read racily by the exporter ([`drain_spans`]): a record being
//! overwritten concurrently can tear, which the reader tolerates by
//! skipping records whose name id is out of range. Spans are for coarse
//! phases (epochs, engine tasks), not per-instruction events, so in
//! practice the writer is parked while traces are dumped.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Span records kept per thread before the oldest is overwritten.
pub const RING_CAPACITY: usize = 4096;

/// Words per ring record: name id, start ns, duration ns.
const RECORD_WORDS: usize = 3;

/// One completed span, as drained from a ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Interned span name.
    pub name: &'static str,
    /// Start time, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Logical id of the recording thread.
    pub tid: u64,
}

/// Nanoseconds since the process-wide trace epoch (first use).
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// The global intern table: span names are `'static` literals, interned
/// once per call site (the macro caches the id in a per-site atomic).
fn names() -> &'static Mutex<Vec<&'static str>> {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| Mutex::new(Vec::new()))
}

fn intern(name: &'static str) -> u32 {
    let mut names = names().lock().expect("span name table");
    if let Some(i) = names.iter().position(|&n| n == name) {
        return i as u32;
    }
    names.push(name);
    (names.len() - 1) as u32
}

struct SpanRing {
    tid: u64,
    /// Total records ever written; the live window is the last
    /// `min(head, RING_CAPACITY)` records.
    head: AtomicUsize,
    words: Box<[AtomicU64]>,
}

impl SpanRing {
    fn new(tid: u64) -> SpanRing {
        SpanRing {
            tid,
            head: AtomicUsize::new(0),
            words: (0..RING_CAPACITY * RECORD_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn push(&self, id: u32, start_ns: u64, dur_ns: u64) {
        let head = self.head.load(Ordering::Relaxed);
        let base = (head % RING_CAPACITY) * RECORD_WORDS;
        self.words[base].store(u64::from(id), Ordering::Relaxed);
        self.words[base + 1].store(start_ns, Ordering::Relaxed);
        self.words[base + 2].store(dur_ns, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }
}

fn rings() -> &'static Mutex<Vec<Arc<SpanRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<SpanRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: std::cell::OnceCell<Arc<SpanRing>> = const { std::cell::OnceCell::new() };
}

fn my_ring(f: impl FnOnce(&SpanRing)) {
    MY_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            static NEXT_TID: AtomicU64 = AtomicU64::new(1);
            let ring = Arc::new(SpanRing::new(NEXT_TID.fetch_add(1, Ordering::Relaxed)));
            rings().lock().expect("span ring list").push(Arc::clone(&ring));
            ring
        });
        f(ring);
    });
}

/// An open span; records on drop. Construct through
/// [`span!`](crate::span!) (or [`span_with_cached_id`] directly).
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    id: u32,
    start_ns: u64,
    armed: bool,
}

impl Span {
    /// A disabled span that records nothing.
    pub fn disabled() -> Span {
        Span { id: 0, start_ns: 0, armed: false }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let end = now_ns();
        let id = self.id;
        let start = self.start_ns;
        my_ring(|ring| ring.push(id, start, end.saturating_sub(start)));
    }
}

/// Opens a span named `name`, caching the interned id in `cache` (one
/// static per call site — what the [`span!`](crate::span!) macro
/// provides). When observability is disabled this is one branch.
#[inline]
pub fn span_with_cached_id(name: &'static str, cache: &AtomicU32) -> Span {
    if !crate::enabled() {
        return Span::disabled();
    }
    let mut id = cache.load(Ordering::Relaxed);
    if id == u32::MAX {
        id = intern(name);
        cache.store(id, Ordering::Relaxed);
    }
    Span { id, start_ns: now_ns(), armed: true }
}

/// Opens an RAII span guard: `let _s = span!("epoch.apply");` records the
/// guard's lifetime into the current thread's trace ring. One branch when
/// observability is disabled.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __INVECTOR_SPAN_ID: ::std::sync::atomic::AtomicU32 =
            ::std::sync::atomic::AtomicU32::new(u32::MAX);
        $crate::span_with_cached_id($name, &__INVECTOR_SPAN_ID)
    }};
}

/// Copies every thread's live span window out of the rings, oldest kept
/// record first per thread. Torn records (concurrently overwritten) are
/// skipped.
pub fn drain_spans() -> Vec<SpanRecord> {
    let rings = rings().lock().expect("span ring list").clone();
    let names = names().lock().expect("span name table").clone();
    let mut out = Vec::new();
    for ring in rings {
        let head = ring.head.load(Ordering::Acquire);
        let live = head.min(RING_CAPACITY);
        for i in (head - live)..head {
            let base = (i % RING_CAPACITY) * RECORD_WORDS;
            let id = ring.words[base].load(Ordering::Relaxed) as usize;
            let Some(&name) = names.get(id) else { continue };
            out.push(SpanRecord {
                name,
                start_ns: ring.words[base + 1].load(Ordering::Relaxed),
                dur_ns: ring.words[base + 2].load(Ordering::Relaxed),
                tid: ring.tid,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_FLAG_LOCK;

    #[cfg(feature = "obs")]
    #[test]
    fn spans_record_when_enabled_and_wrap_at_capacity() {
        let _flag = TEST_FLAG_LOCK.lock().unwrap();
        crate::set_enabled(true);
        {
            let _s = crate::span!("test.outer");
            let _inner = crate::span!("test.inner");
        }
        let spans = drain_spans();
        assert!(spans.iter().any(|s| s.name == "test.outer"));
        assert!(spans.iter().any(|s| s.name == "test.inner"));

        // Overflow the ring; the window stays bounded and holds the most
        // recent records.
        for _ in 0..(RING_CAPACITY + 10) {
            let _s = crate::span!("test.wrap");
        }
        let mine: Vec<_> = drain_spans();
        let wraps = mine.iter().filter(|s| s.name == "test.wrap").count();
        assert!(wraps <= RING_CAPACITY);
        assert!(wraps >= RING_CAPACITY - 2, "ring keeps a full window, got {wraps}");
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        // Count only this test's span name: other tests in this binary may
        // be recording concurrently under their own names.
        let count = || drain_spans().iter().filter(|s| s.name == "test.disabled").count();
        let _flag = TEST_FLAG_LOCK.lock().unwrap();
        crate::set_enabled(false);
        let before = count();
        {
            let _s = crate::span!("test.disabled");
        }
        assert_eq!(count(), before);
    }

    #[test]
    fn intern_is_stable_per_name() {
        let a = intern("stable.name");
        let b = intern("stable.name");
        assert_eq!(a, b);
    }
}
