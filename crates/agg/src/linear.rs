//! Linear-probing hash table with serial, conflict-masking and in-vector
//! aggregation (the `linear_serial` / `linear_mask` / `linear_invec`
//! variants of §4.4).

use invector_core::invec::{reduce_alg1_arr, reduce_alg1_arr_with, reduce_alg2_arr, AuxArrays};
use invector_core::masking::PositionFeeder;
use invector_core::ops::Sum;
use invector_simd::{conflict_free_subset, F32x16, I32x16, Mask16};

use crate::table::{pow2_capacity, probe_slots, AggRow, ProbeStats, EMPTY};

/// An open-addressing (linear probing) aggregation hash table for the query
/// `SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP BY G`.
///
/// # Example
///
/// ```
/// use invector_agg::linear::LinearTable;
///
/// let mut t = LinearTable::for_cardinality(16);
/// t.aggregate_serial(&[3, 3, 5], &[1.0, 2.0, 4.0]);
/// let rows = t.drain();
/// assert_eq!(rows[0].key, 3);
/// assert_eq!(rows[0].sum, 3.0);
/// assert_eq!(rows[1].count, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct LinearTable {
    keys: Vec<i32>,
    count: Vec<f32>,
    sum: Vec<f32>,
    sumsq: Vec<f32>,
    mask: u32,
    shift: u32,
}

impl LinearTable {
    /// Creates a table sized for `cardinality` distinct keys (capacity =
    /// next power of two ≥ 2·cardinality, at least 64 slots — load factor
    /// ≤ 0.5).
    pub fn for_cardinality(cardinality: usize) -> Self {
        let capacity = pow2_capacity(cardinality * 2, 64);
        LinearTable {
            keys: vec![EMPTY; capacity],
            count: vec![0.0; capacity],
            sum: vec![0.0; capacity],
            sumsq: vec![0.0; capacity],
            mask: capacity as u32 - 1,
            shift: 32 - capacity.trailing_zeros(),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Occupied slot count.
    pub fn occupied(&self) -> usize {
        self.keys.iter().filter(|&&k| k != EMPTY).count()
    }

    /// Scalar aggregation (the `linear_serial` baseline).
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_serial(&mut self, keys: &[i32], vals: &[f32]) {
        assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
        let mut total_probes = 0u64;
        for (&k, &v) in keys.iter().zip(vals) {
            assert!(k >= 0, "group-by keys must be non-negative, got {k}");
            let mut slot = crate::table::hash_key(k, self.shift);
            let mut probes = 0u32;
            loop {
                let s = slot as usize;
                if self.keys[s] == k {
                    break;
                }
                if self.keys[s] == EMPTY {
                    self.keys[s] = k;
                    break;
                }
                slot = (slot + 1) & self.mask;
                probes += 1;
                assert!(probes <= self.mask, "hash table full");
            }
            let s = slot as usize;
            self.count[s] += 1.0;
            self.sum[s] += v;
            self.sumsq[s] += v * v;
            total_probes += u64::from(probes);
        }
        // Modeled scalar cost: key/value loads, hash, slot-key load and
        // compare, the three load-add-store payload updates (~12), plus 2
        // per extra probe.
        invector_simd::count::bump(12 * keys.len() as u64 + 2 * total_probes);
    }

    /// Conflict-masking SIMD aggregation (`linear_mask`): the Figure-3 flow
    /// applied to hash probing. Matching lanes that collide on a slot are
    /// serialized one per round — the behavior that craters throughput on
    /// skewed inputs.
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_mask(&mut self, keys: &[i32], vals: &[f32]) -> ProbeStats {
        assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
        assert!(keys.iter().all(|&k| k >= 0), "group-by keys must be non-negative");
        let mut stats = ProbeStats::default();
        let mut feeder = PositionFeeder::new(0, keys.len());
        let mut vpos = I32x16::zero();
        let mut vkey = I32x16::splat(EMPTY);
        let mut vval = F32x16::zero();
        let mut voff = I32x16::zero();
        let mut active = Mask16::none();
        loop {
            let filled = feeder.refill(!active, &mut vpos);
            if !filled.is_empty() {
                vkey = vkey.mask_gather(filled, keys, vpos);
                vval = vval.mask_gather(filled, vals, vpos);
                voff = I32x16::zero().blend(filled, voff);
                active |= filled;
            }
            if active.is_empty() {
                break;
            }
            stats.rounds += 1;
            let vslot = probe_slots(vkey, voff, self.shift, self.mask);
            let tkeys = I32x16::splat(EMPTY).mask_gather(active, &self.keys, vslot);
            let m_match = tkeys.simd_eq(vkey) & active;
            let m_empty = tkeys.eq_broadcast(EMPTY) & active;
            // Claim one empty slot per distinct slot index; losers retry.
            let claim = conflict_free_subset(m_empty, vslot);
            vkey.mask_scatter(claim, &mut self.keys, vslot);
            // Update payloads on the conflict-free subset of matches.
            let upd = conflict_free_subset(m_match, vslot);
            self.update_payload(upd, vslot, vval);
            stats.util.record(u64::from(upd.count_ones()), 16);
            active = active.and_not(upd);
            // Only true mismatches advance their probe offset.
            let m_miss = active.and_not(m_match).and_not(m_empty);
            voff = (voff + I32x16::splat(1)).blend(m_miss, voff);
            self.check_not_full(voff);
        }
        stats
    }

    /// In-vector reduction SIMD aggregation (`linear_invec`): each input
    /// vector is first reduced **by key** (all three aggregates share one
    /// merge schedule), so only distinct keys probe the table and payload
    /// updates can never conflict.
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_invec(&mut self, keys: &[i32], vals: &[f32]) -> ProbeStats {
        // Resolved once per aggregation run.
        self.aggregate_invec_with(invector_core::backend::current(), keys, vals)
    }

    /// [`LinearTable::aggregate_invec`] against an explicitly resolved
    /// backend (the in-vector reduction is the backend-dispatched step).
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_invec_with(
        &mut self,
        backend: invector_core::backend::Backend,
        keys: &[i32],
        vals: &[f32],
    ) -> ProbeStats {
        assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
        assert!(keys.iter().all(|&k| k >= 0), "group-by keys must be non-negative");
        let mut stats = ProbeStats::default();
        let mut j = 0;
        while j < keys.len() {
            let (vkey, active) = I32x16::load_partial(&keys[j..], EMPTY);
            let (vval, _) = F32x16::load_partial(&vals[j..], 0.0);
            let mut comps = [F32x16::splat(1.0), vval, vval * vval];
            let (distinct, d1) =
                reduce_alg1_arr_with::<f32, Sum, 3, 16>(backend, active, vkey, &mut comps);
            stats.depth.record(d1);
            self.probe_and_commit(vkey, distinct, &comps, &mut stats);
            j += 16;
        }
        stats
    }

    /// Adaptive in-vector SIMD aggregation (§3.4 applied to aggregation):
    /// samples the conflict depth `D1` over a warm-up window with
    /// Algorithm 1, then switches to the multi-component Algorithm 2 (with
    /// per-key shadow arrays over `key_domain`) when the mean exceeds 1 —
    /// hash aggregation is exactly the workload class where the paper's
    /// framework makes that switch.
    ///
    /// # Panics
    ///
    /// Panics on negative keys, keys `>= key_domain`, length mismatch, or
    /// table overflow.
    pub fn aggregate_invec_adaptive(
        &mut self,
        keys: &[i32],
        vals: &[f32],
        key_domain: usize,
    ) -> ProbeStats {
        assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
        assert!(
            keys.iter().all(|&k| k >= 0 && (k as usize) < key_domain),
            "group-by keys must lie in 0..{key_domain}"
        );
        let mut stats = ProbeStats::default();
        let mut aux: Option<AuxArrays<f32, Sum, 3>> = None;
        let mut warmup_left: u32 = invector_core::adaptive::DEFAULT_WARMUP;
        let mut use_alg2 = false;
        let mut j = 0;
        while j < keys.len() {
            let (vkey, active) = I32x16::load_partial(&keys[j..], EMPTY);
            let (vval, _) = F32x16::load_partial(&vals[j..], 0.0);
            let mut comps = [F32x16::splat(1.0), vval, vval * vval];
            if warmup_left == 0 && !use_alg2 && aux.is_none() {
                // Decision point: commit to Algorithm 2 iff mean D1 > 1.
                use_alg2 = stats.depth.mean() > invector_core::adaptive::D1_THRESHOLD;
                if use_alg2 {
                    aux = Some(AuxArrays::new(key_domain));
                }
            }
            let distinct = if let Some(aux) = aux.as_mut() {
                let (distinct, d2) =
                    reduce_alg2_arr::<f32, Sum, 3, 16>(active, vkey, &mut comps, aux);
                stats.depth.record(d2);
                distinct
            } else {
                warmup_left = warmup_left.saturating_sub(1);
                let (distinct, d1) = reduce_alg1_arr::<f32, Sum, 3, 16>(active, vkey, &mut comps);
                stats.depth.record(d1);
                distinct
            };
            self.probe_and_commit(vkey, distinct, &comps, &mut stats);
            j += 16;
        }
        // Fold the per-key shadow arrays into the table (once, scalar).
        if let Some(mut aux) = aux {
            let (mut c, mut s, mut q) =
                (vec![0.0f32; key_domain], vec![0.0f32; key_domain], vec![0.0f32; key_domain]);
            aux.merge_into([&mut c, &mut s, &mut q]);
            for k in 0..key_domain {
                if c[k] != 0.0 || s[k] != 0.0 || q[k] != 0.0 {
                    self.commit_scalar_row(k as i32, c[k], s[k], q[k]);
                }
            }
        }
        stats
    }

    /// Probes the table for the `distinct`-masked lanes of `vkey` (all
    /// holding different keys) and commits their pre-reduced components.
    fn probe_and_commit(
        &mut self,
        vkey: I32x16,
        distinct: Mask16,
        comps: &[F32x16; 3],
        stats: &mut ProbeStats,
    ) {
        let mut rem = distinct;
        let mut voff = I32x16::zero();
        while !rem.is_empty() {
            stats.rounds += 1;
            let vslot = probe_slots(vkey, voff, self.shift, self.mask);
            let tkeys = I32x16::splat(EMPTY).mask_gather(rem, &self.keys, vslot);
            // Distinct keys -> at most one lane matches any slot: the
            // payload update is conflict-free without masking games.
            let m_match = tkeys.simd_eq(vkey) & rem;
            self.accumulate_components(m_match, vslot, comps);
            rem = rem.and_not(m_match);
            // Claim empty slots (conflict-checked: distinct keys can
            // still hash to the same empty slot).
            let m_empty = tkeys.eq_broadcast(EMPTY) & rem;
            let claim = conflict_free_subset(m_empty, vslot);
            vkey.mask_scatter(claim, &mut self.keys, vslot);
            // Fresh slots have zero payload: initialize directly.
            comps[0].mask_scatter(claim, &mut self.count, vslot);
            comps[1].mask_scatter(claim, &mut self.sum, vslot);
            comps[2].mask_scatter(claim, &mut self.sumsq, vslot);
            rem = rem.and_not(claim);
            stats.util.record(u64::from(m_match.count_ones() + claim.count_ones()), 16);
            // True mismatches advance; claim losers retry the same slot.
            let m_miss = rem.and_not(m_empty);
            voff = (voff + I32x16::splat(1)).blend(m_miss, voff);
            self.check_not_full(voff);
        }
    }

    /// Scalar insert of pre-aggregated components for one key.
    fn commit_scalar_row(&mut self, key: i32, c: f32, s: f32, q: f32) {
        let mut slot = crate::table::hash_key(key, self.shift);
        let mut probes = 0u32;
        loop {
            let i = slot as usize;
            if self.keys[i] == key || self.keys[i] == EMPTY {
                self.keys[i] = key;
                self.count[i] += c;
                self.sum[i] += s;
                self.sumsq[i] += q;
                return;
            }
            slot = (slot + 1) & self.mask;
            probes += 1;
            assert!(probes <= self.mask, "hash table full");
        }
    }

    /// Gather-add-scatter of `(+1, +v, +v²)` on the selected lanes.
    fn update_payload(&mut self, lanes: Mask16, vslot: I32x16, vval: F32x16) {
        let c = F32x16::zero().mask_gather(lanes, &self.count, vslot);
        (c + F32x16::splat(1.0)).mask_scatter(lanes, &mut self.count, vslot);
        let s = F32x16::zero().mask_gather(lanes, &self.sum, vslot);
        (s + vval).mask_scatter(lanes, &mut self.sum, vslot);
        let q = F32x16::zero().mask_gather(lanes, &self.sumsq, vslot);
        (q + vval * vval).mask_scatter(lanes, &mut self.sumsq, vslot);
    }

    /// Gather-add-scatter of pre-reduced `(count, sum, sumsq)` components.
    fn accumulate_components(&mut self, lanes: Mask16, vslot: I32x16, comps: &[F32x16; 3]) {
        let arrays: [&mut Vec<f32>; 3] = [&mut self.count, &mut self.sum, &mut self.sumsq];
        for (arr, &c) in arrays.into_iter().zip(comps) {
            let old = F32x16::zero().mask_gather(lanes, arr, vslot);
            (old + c).mask_scatter(lanes, arr, vslot);
        }
    }

    fn check_not_full(&self, voff: I32x16) {
        assert!(
            voff.as_array().iter().all(|&o| (o as u32) <= self.mask),
            "hash table full (capacity {})",
            self.capacity()
        );
    }

    /// Extracts all result rows, sorted by key, and empties the table.
    pub fn drain(&mut self) -> Vec<AggRow> {
        let mut rows: Vec<AggRow> = Vec::new();
        for s in 0..self.keys.len() {
            if self.keys[s] != EMPTY {
                rows.push(AggRow {
                    key: self.keys[s],
                    count: self.count[s],
                    sum: self.sum[s],
                    sumsq: self.sumsq[s],
                });
                self.keys[s] = EMPTY;
                self.count[s] = 0.0;
                self.sum[s] = 0.0;
                self.sumsq[s] = 0.0;
            }
        }
        rows.sort_by_key(|r| r.key);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Distribution};
    use crate::table::{assert_rows_close, reference_aggregate};

    #[test]
    fn serial_matches_reference() {
        let input = generate(Distribution::Zipf, 4000, 100, 1);
        let mut t = LinearTable::for_cardinality(input.cardinality);
        t.aggregate_serial(&input.keys, &input.vals);
        assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-4);
    }

    #[test]
    fn mask_matches_reference_on_all_distributions() {
        for dist in Distribution::ALL {
            let input = generate(dist, 3000, 200, 2);
            let mut t = LinearTable::for_cardinality(input.cardinality);
            let stats = t.aggregate_mask(&input.keys, &input.vals);
            assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-3);
            assert!(stats.rounds > 0);
        }
    }

    #[test]
    fn invec_matches_reference_on_all_distributions() {
        for dist in Distribution::ALL {
            let input = generate(dist, 3000, 200, 3);
            let mut t = LinearTable::for_cardinality(input.cardinality);
            let stats = t.aggregate_invec(&input.keys, &input.vals);
            assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-3);
            assert!(stats.depth.invocations() > 0);
        }
    }

    #[test]
    fn adaptive_invec_matches_reference_and_switches_under_skew() {
        // Heavy hitter pushes mean D1 over 1 -> Algorithm 2 path.
        let input = generate(Distribution::HeavyHitter, 8000, 64, 40);
        let mut t = LinearTable::for_cardinality(64);
        let stats = t.aggregate_invec_adaptive(&input.keys, &input.vals, 64);
        assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-3);
        // After the switch, depths recorded are D2 which is below D1 on
        // this workload; the histogram mixes both, so only sanity-check.
        assert!(stats.depth.invocations() > 0);

        // Uniform high-cardinality input stays on Algorithm 1 and must
        // also be correct.
        let input = generate(Distribution::MovingCluster, 4000, 2048, 41);
        let mut t = LinearTable::for_cardinality(2048);
        t.aggregate_invec_adaptive(&input.keys, &input.vals, 2048);
        assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-3);
    }

    #[test]
    fn adaptive_invec_reduces_depth_work_under_heavy_skew() {
        let input = generate(Distribution::HeavyHitter, 16_000, 32, 42);
        let mut t1 = LinearTable::for_cardinality(32);
        let plain = t1.aggregate_invec(&input.keys, &input.vals);
        let mut t2 = LinearTable::for_cardinality(32);
        let adaptive = t2.aggregate_invec_adaptive(&input.keys, &input.vals, 32);
        // Same results...
        let r1 = t1.drain();
        let r2 = t2.drain();
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.count, b.count);
        }
        // ...but the adaptive run folds fewer lanes in-vector (lower total
        // recorded depth) because Algorithm 2 shunts second occurrences to
        // the shadow arrays.
        assert!(
            adaptive.depth.mean() < plain.depth.mean(),
            "adaptive mean depth {} !< plain {}",
            adaptive.depth.mean(),
            plain.depth.mean()
        );
    }

    #[test]
    #[should_panic(expected = "keys must lie in")]
    fn adaptive_invec_rejects_out_of_domain_keys() {
        let mut t = LinearTable::for_cardinality(8);
        let _ = t.aggregate_invec_adaptive(&[9], &[1.0], 8);
    }

    #[test]
    fn invec_needs_far_fewer_rounds_than_mask_on_heavy_hitter() {
        let input = generate(Distribution::HeavyHitter, 8000, 64, 4);
        let mut t1 = LinearTable::for_cardinality(64);
        let mask_stats = t1.aggregate_mask(&input.keys, &input.vals);
        let mut t2 = LinearTable::for_cardinality(64);
        let invec_stats = t2.aggregate_invec(&input.keys, &input.vals);
        assert!(
            invec_stats.rounds * 2 < mask_stats.rounds,
            "invec rounds {} vs mask rounds {}",
            invec_stats.rounds,
            mask_stats.rounds
        );
    }

    #[test]
    fn heavy_hitter_depth_is_high() {
        // §3.4: hash aggregation can reach D1 ≈ 4; a 50% hot key guarantees
        // at least one conflicting group per vector.
        let input = generate(Distribution::HeavyHitter, 4000, 1024, 5);
        let mut t = LinearTable::for_cardinality(1024);
        let stats = t.aggregate_invec(&input.keys, &input.vals);
        assert!(stats.depth.mean() >= 1.0, "mean D1 {}", stats.depth.mean());
    }

    #[test]
    fn single_key_input() {
        let keys = vec![7i32; 100];
        let vals: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        for mode in 0..3 {
            let mut t = LinearTable::for_cardinality(4);
            match mode {
                0 => t.aggregate_serial(&keys, &vals),
                1 => drop(t.aggregate_mask(&keys, &vals)),
                _ => drop(t.aggregate_invec(&keys, &vals)),
            }
            let rows = t.drain();
            assert_eq!(rows.len(), 1, "mode {mode}");
            assert_eq!(rows[0].count, 100.0, "mode {mode}");
        }
    }

    #[test]
    fn empty_input_yields_no_rows() {
        let mut t = LinearTable::for_cardinality(10);
        t.aggregate_serial(&[], &[]);
        let _ = t.aggregate_mask(&[], &[]);
        let _ = t.aggregate_invec(&[], &[]);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn drain_resets_the_table() {
        let mut t = LinearTable::for_cardinality(10);
        t.aggregate_serial(&[1, 2], &[1.0, 2.0]);
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.occupied(), 0);
        t.aggregate_serial(&[3], &[1.0]);
        let rows = t.drain();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].key, 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_keys_rejected() {
        let mut t = LinearTable::for_cardinality(4);
        t.aggregate_serial(&[-3], &[1.0]);
    }

    #[test]
    fn cardinality_equal_to_probing_pressure_still_correct() {
        // Fill close to the load-factor limit.
        let card = 500;
        let keys: Vec<i32> = (0..card as i32).flat_map(|k| [k, k]).collect();
        let vals = vec![1.0f32; keys.len()];
        let mut t = LinearTable::for_cardinality(card);
        t.aggregate_invec(&keys, &vals);
        let rows = t.drain();
        assert_eq!(rows.len(), card);
        assert!(rows.iter().all(|r| r.count == 2.0));
    }
}
