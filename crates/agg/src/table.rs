//! Shared hash-table machinery: hashing, result rows, probe statistics.

use invector_core::stats::{DepthHistogram, Utilization};
use invector_simd::I32x16;

/// The empty-slot marker. Group-by keys must be non-negative.
pub const EMPTY: i32 = -1;

/// One result row of the query
/// `SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP BY G`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggRow {
    /// Group-by key.
    pub key: i32,
    /// `count(*)` (kept in `f32` so all three aggregates share one SIMD
    /// reduction schedule; exact up to 2²⁴ rows per group).
    pub count: f32,
    /// `sum(V)`.
    pub sum: f32,
    /// `sum(V*V)`.
    pub sumsq: f32,
}

/// Statistics of one aggregation pass.
#[derive(Debug, Clone, Default)]
pub struct ProbeStats {
    /// Probe rounds executed (vector loop iterations).
    pub rounds: u64,
    /// Lane utilization of the masked variants.
    pub util: Utilization,
    /// Conflict-depth histogram of the in-vector variants.
    pub depth: DepthHistogram,
}

impl ProbeStats {
    /// Folds another pass's statistics into this one (used when merging
    /// per-worker aggregation passes).
    pub fn merge(&mut self, other: &ProbeStats) {
        self.rounds += other.rounds;
        self.util.merge(other.util);
        self.depth.merge(&other.depth);
    }
}

/// Fibonacci multiplicative hash of a key.
#[inline(always)]
pub fn hash_key(key: i32, shift: u32) -> u32 {
    (key as u32).wrapping_mul(0x9E37_79B1) >> shift
}

/// Vectorized linear-probe slot computation:
/// `slot = (hash(key) + offset) & mask` per lane
/// (`vpmulld` + `vpsrld` + `vpaddd` + `vpandd`).
#[inline]
pub fn probe_slots(vkey: I32x16, voff: I32x16, shift: u32, mask: u32) -> I32x16 {
    let hashed = (vkey.cast_u32() * invector_simd::U32x16::splat(0x9E37_79B1)).shr(shift);
    ((hashed + voff.cast_u32()) & invector_simd::U32x16::splat(mask)).cast_i32()
}

/// Vectorized bucketized-probe slot computation (the ICS'17 conflict
/// mitigation). Attempt `t` of lane `l` probes slot
/// `((bucket(key) + t) & bucket_mask) * 16 + l`: the in-bucket slot is
/// **fixed by the lane**, so two lanes of one vector holding the same key
/// write different slots by construction; collisions between different
/// keys advance to the next bucket. One key occupies at most 16 slots
/// (one per lane position), merged at drain time.
#[inline]
pub fn bucket_slots(vkey: I32x16, vt: I32x16, shift: u32, bucket_mask: u32) -> I32x16 {
    use invector_simd::U32x16;
    let hashed = (vkey.cast_u32() * U32x16::splat(0x9E37_79B1)).shr(shift);
    let bucket = (hashed + vt.cast_u32()) & U32x16::splat(bucket_mask);
    let lane_ids = U32x16::from_array(std::array::from_fn(|l| l as u32));
    (bucket.shl(4) | lane_ids).cast_i32()
}

/// Scalar reference aggregation via `std::collections::HashMap`, sorted by
/// key — the ground truth every table implementation is tested against.
pub fn reference_aggregate(keys: &[i32], vals: &[f32]) -> Vec<AggRow> {
    let mut map: std::collections::BTreeMap<i32, (f64, f64, f64)> =
        std::collections::BTreeMap::new();
    for (&k, &v) in keys.iter().zip(vals) {
        let e = map.entry(k).or_insert((0.0, 0.0, 0.0));
        e.0 += 1.0;
        e.1 += f64::from(v);
        e.2 += f64::from(v) * f64::from(v);
    }
    map.into_iter()
        .map(|(key, (count, sum, sumsq))| AggRow {
            key,
            count: count as f32,
            sum: sum as f32,
            sumsq: sumsq as f32,
        })
        .collect()
}

/// Compares two result-row slices with a relative tolerance on the float
/// aggregates (reassociation error) and exact keys/counts.
///
/// # Panics
///
/// Panics (with context) on any mismatch — this is a test/verification
/// helper.
pub fn assert_rows_close(got: &[AggRow], expect: &[AggRow], tol: f32) {
    assert_eq!(got.len(), expect.len(), "row count mismatch");
    for (g, e) in got.iter().zip(expect) {
        assert_eq!(g.key, e.key, "key mismatch");
        assert_eq!(g.count, e.count, "count mismatch for key {}", g.key);
        for (a, b, what) in [(g.sum, e.sum, "sum"), (g.sumsq, e.sumsq, "sumsq")] {
            assert!(
                (a - b).abs() <= tol * (a.abs() + b.abs() + 1.0),
                "{what} mismatch for key {}: {a} vs {b}",
                g.key
            );
        }
    }
}

/// Rounds a capacity request up to a power of two, with a floor.
pub fn pow2_capacity(min_slots: usize, floor: usize) -> usize {
    min_slots.max(floor).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let shift = 32 - 10; // 1024-slot table
        for key in [0, 1, 5, 1 << 20, i32::MAX] {
            let h = hash_key(key, shift);
            assert!(h < 1024);
            assert_eq!(h, hash_key(key, shift));
        }
    }

    #[test]
    fn probe_slots_wrap_with_offset() {
        let vkey = I32x16::splat(7);
        let base = probe_slots(vkey, I32x16::zero(), 32 - 4, 15).extract(0);
        let stepped = probe_slots(vkey, I32x16::splat(1), 32 - 4, 15).extract(0);
        assert_eq!(stepped, (base + 1) & 15);
        let wrapped = probe_slots(vkey, I32x16::splat(16), 32 - 4, 15).extract(0);
        assert_eq!(wrapped, base);
    }

    #[test]
    fn bucket_slots_are_lane_private() {
        let vkey = I32x16::splat(3);
        let slots = bucket_slots(vkey, I32x16::zero(), 32 - 3, 7);
        let arr = slots.to_array();
        // Same bucket, one distinct slot per lane: lane l gets slot l.
        let bucket = arr[0] / 16;
        for (l, &s) in arr.iter().enumerate() {
            assert_eq!(s / 16, bucket);
            assert_eq!(s % 16, l as i32);
        }
    }

    #[test]
    fn bucket_slots_advance_one_bucket_per_attempt() {
        let vkey = I32x16::splat(3);
        let b0 = bucket_slots(vkey, I32x16::zero(), 32 - 3, 7).extract(5) / 16;
        let b1 = bucket_slots(vkey, I32x16::splat(1), 32 - 3, 7).extract(5) / 16;
        assert_eq!(b1, (b0 + 1) & 7);
        // The lane-private slot survives bucket advances.
        assert_eq!(bucket_slots(vkey, I32x16::splat(1), 32 - 3, 7).extract(5) % 16, 5);
    }

    #[test]
    fn reference_aggregate_computes_query() {
        let rows = reference_aggregate(&[2, 0, 2], &[0.5, 1.0, 1.5]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], AggRow { key: 0, count: 1.0, sum: 1.0, sumsq: 1.0 });
        assert_eq!(rows[1].key, 2);
        assert_eq!(rows[1].count, 2.0);
        assert_eq!(rows[1].sum, 2.0);
        assert_eq!(rows[1].sumsq, 0.25 + 2.25);
    }

    #[test]
    fn pow2_capacity_rounds_up() {
        assert_eq!(pow2_capacity(100, 64), 128);
        assert_eq!(pow2_capacity(10, 64), 64);
        assert_eq!(pow2_capacity(128, 64), 128);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn assert_rows_close_catches_count_errors() {
        let a = [AggRow { key: 0, count: 1.0, sum: 0.0, sumsq: 0.0 }];
        let b = [AggRow { key: 0, count: 2.0, sum: 0.0, sumsq: 0.0 }];
        assert_rows_close(&a, &b, 1e-3);
    }
}
