//! `invector-agg` — hash-based aggregation, the database workload of the
//! paper (§4.4, Figure 13).
//!
//! Implements the query `SELECT G, count(*), sum(V), sum(V*V) FROM R GROUP
//! BY G` over two table designs — an open-addressing
//! [linear-probing table](linear) and a
//! [bucketized, conflict-mitigating table](bucket) — each aggregating with
//! the scalar baseline, conflict-masking, or in-vector reduction. The
//! [distribution generators](dist) reproduce the paper's skewed inputs
//! (heavy hitter, Zipf 0.5, moving cluster).
//!
//! # Example
//!
//! ```
//! use invector_agg::dist::{generate, Distribution};
//! use invector_agg::run::{aggregate, Method};
//!
//! let input = generate(Distribution::HeavyHitter, 10_000, 64, 7);
//! let out = aggregate(Method::BucketInvec, &input.keys, &input.vals, 64);
//! let total: f32 = out.rows.iter().map(|r| r.count).sum();
//! assert_eq!(total, 10_000.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bucket;
pub mod dist;
pub mod linear;
pub mod run;
pub mod table;

pub use bucket::BucketTable;
pub use dist::{Distribution, Input};
pub use linear::LinearTable;
pub use run::{aggregate, aggregate_with_policy, AggOutcome, Method};
pub use table::{AggRow, ProbeStats};
