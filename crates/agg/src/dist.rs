//! Skewed key-distribution generators (§4.1, after Cieslewicz et al.).
//!
//! The paper evaluates hash aggregation on three synthetic input classes:
//!
//! * **heavy hitter** — one key accounts for 50% of the rows, the rest are
//!   uniform over the remaining keys;
//! * **Zipf** with exponent 0.5;
//! * **moving cluster** — keys drawn uniformly from a 64-wide window that
//!   slides across the key domain as the input progresses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated aggregation input: group-by keys and values.
#[derive(Debug, Clone, PartialEq)]
pub struct Input {
    /// Group-by keys in `0..cardinality`.
    pub keys: Vec<i32>,
    /// Aggregation values.
    pub vals: Vec<f32>,
    /// Number of distinct possible keys.
    pub cardinality: usize,
}

impl Input {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` if the input has no rows.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The distributions of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distribution {
    /// 50% of rows hit one key.
    HeavyHitter,
    /// Zipf with exponent 0.5.
    Zipf,
    /// 64-wide sliding locality window.
    MovingCluster,
}

impl Distribution {
    /// All distributions in paper order.
    pub const ALL: [Distribution; 3] =
        [Distribution::HeavyHitter, Distribution::Zipf, Distribution::MovingCluster];

    /// Paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Distribution::HeavyHitter => "heavy-hitter",
            Distribution::Zipf => "Zipf",
            Distribution::MovingCluster => "moving-cluster",
        }
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Fraction of rows assigned to the hot key in the heavy-hitter input.
pub const HEAVY_HITTER_SHARE: f64 = 0.5;

/// Zipf exponent used by the paper.
pub const ZIPF_EXPONENT: f64 = 0.5;

/// Moving-cluster window width used by the paper.
pub const CLUSTER_WINDOW: usize = 64;

/// Generates `n` rows with the given distribution over `cardinality` keys.
///
/// # Panics
///
/// Panics if `cardinality == 0`.
pub fn generate(dist: Distribution, n: usize, cardinality: usize, seed: u64) -> Input {
    assert!(cardinality > 0, "cardinality must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    let keys = match dist {
        Distribution::HeavyHitter => heavy_hitter_keys(n, cardinality, &mut rng),
        Distribution::Zipf => zipf_keys(n, cardinality, ZIPF_EXPONENT, &mut rng),
        Distribution::MovingCluster => moving_cluster_keys(n, cardinality, &mut rng),
    };
    let vals = (0..n).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    Input { keys, vals, cardinality }
}

fn heavy_hitter_keys(n: usize, cardinality: usize, rng: &mut SmallRng) -> Vec<i32> {
    let hot = rng.gen_range(0..cardinality) as i32;
    (0..n)
        .map(|_| {
            if rng.gen_bool(HEAVY_HITTER_SHARE) || cardinality == 1 {
                hot
            } else {
                // Uniform over the other keys.
                let mut k = rng.gen_range(0..cardinality as i32 - 1);
                if k >= hot {
                    k += 1;
                }
                k
            }
        })
        .collect()
}

fn zipf_keys(n: usize, cardinality: usize, exponent: f64, rng: &mut SmallRng) -> Vec<i32> {
    // Precompute the CDF: P(rank r) ∝ 1 / r^exponent.
    let mut cdf = Vec::with_capacity(cardinality);
    let mut acc = 0.0f64;
    for r in 1..=cardinality {
        acc += 1.0 / (r as f64).powf(exponent);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            cdf.partition_point(|&c| c < u) as i32
        })
        .collect()
}

fn moving_cluster_keys(n: usize, cardinality: usize, rng: &mut SmallRng) -> Vec<i32> {
    let window = CLUSTER_WINDOW.min(cardinality);
    let span = cardinality - window;
    (0..n)
        .map(|i| {
            let base = if n <= 1 { 0 } else { (i as f64 / (n - 1) as f64 * span as f64) as usize };
            (base + rng.gen_range(0..window)) as i32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn histogram(keys: &[i32]) -> HashMap<i32, usize> {
        let mut h = HashMap::new();
        for &k in keys {
            *h.entry(k).or_insert(0) += 1;
        }
        h
    }

    #[test]
    fn keys_stay_in_domain() {
        for dist in Distribution::ALL {
            let input = generate(dist, 5000, 128, 1);
            assert!(input.keys.iter().all(|&k| (0..128).contains(&k)), "{dist}");
            assert_eq!(input.len(), 5000);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Distribution::Zipf, 1000, 64, 9);
        let b = generate(Distribution::Zipf, 1000, 64, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_hitter_has_a_dominant_key() {
        let input = generate(Distribution::HeavyHitter, 20_000, 1024, 2);
        let h = histogram(&input.keys);
        let max = h.values().max().copied().unwrap();
        let share = max as f64 / input.len() as f64;
        assert!((0.45..0.55).contains(&share), "hot share {share}");
    }

    #[test]
    fn zipf_head_dominates_tail() {
        let input = generate(Distribution::Zipf, 50_000, 1024, 3);
        let h = histogram(&input.keys);
        // Rank 0 should appear noticeably more often than rank 100 under
        // exponent 0.5 (~10x).
        let head = h.get(&0).copied().unwrap_or(0) as f64;
        let tail = h.get(&100).copied().unwrap_or(0) as f64;
        assert!(head > 3.0 * tail, "head {head} tail {tail}");
    }

    #[test]
    fn moving_cluster_respects_window_locality() {
        let card = 4096;
        let input = generate(Distribution::MovingCluster, 10_000, card, 4);
        // Early keys come from the low end, late keys from the high end.
        let early_max = input.keys[..100].iter().max().copied().unwrap();
        let late_min = input.keys[input.len() - 100..].iter().min().copied().unwrap();
        assert!(early_max < (CLUSTER_WINDOW * 2) as i32, "early max {early_max}");
        assert!(late_min > card as i32 - (CLUSTER_WINDOW * 2) as i32, "late min {late_min}");
        // And consecutive keys stay within the window span.
        for w in input.keys.windows(2) {
            assert!((w[0] - w[1]).abs() <= CLUSTER_WINDOW as i32 + 2);
        }
    }

    #[test]
    fn tiny_cardinality_works() {
        for dist in Distribution::ALL {
            let input = generate(dist, 100, 1, 5);
            assert!(input.keys.iter().all(|&k| k == 0), "{dist}");
        }
    }

    #[test]
    #[should_panic(expected = "cardinality must be positive")]
    fn zero_cardinality_rejected() {
        let _ = generate(Distribution::Zipf, 10, 0, 1);
    }
}
