//! Bucketized hash table (`bucket_mask` / `bucket_invec` of §4.4).
//!
//! The bucketized design (from the authors' ICS'17 conflict-mitigation
//! work) hashes a key to a 16-slot bucket and has SIMD lane `l` probe the
//! bucket starting at slot `l`: two lanes of the same vector holding the
//! same key land on different slots, so most write conflicts never arise.
//! The price is that one key may occupy several slots (merged at drain
//! time) and that the hashing range is 16× smaller, lengthening probe
//! chains as the group cardinality approaches the table size — exactly the
//! crossover Figure 13 shows.

use invector_core::invec::reduce_alg1_arr_with;
use invector_core::masking::PositionFeeder;
use invector_core::ops::Sum;
use invector_simd::{conflict_free_subset, F32x16, I32x16, Mask16};

use crate::table::{bucket_slots, hash_key, pow2_capacity, AggRow, ProbeStats, EMPTY};

/// Probe-chain length after which a lane falls back to a scalar commit.
///
/// The lane-staggered insertion deliberately duplicates hot keys across
/// slots; under extreme load the walk for a free slot can get long. Real
/// vectorized hash tables bound this with an overflow path — ours walks the
/// table scalarly, preserving correctness while the measured probing cost
/// grows, which is exactly the high-cardinality degradation Figure 13
/// shows for the bucketized design.
const SCALAR_FALLBACK_PROBES: i32 = 64;

/// A bucketized aggregation hash table (16-slot buckets, lane-staggered
/// probing).
///
/// # Example
///
/// ```
/// use invector_agg::bucket::BucketTable;
///
/// let mut t = BucketTable::for_cardinality(16);
/// t.aggregate_invec(&[3, 3, 5], &[1.0, 2.0, 4.0]);
/// let rows = t.drain();
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows[0].count, 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct BucketTable {
    keys: Vec<i32>,
    count: Vec<f32>,
    sum: Vec<f32>,
    sumsq: Vec<f32>,
    bucket_mask: u32,
    shift: u32,
}

impl BucketTable {
    /// Creates a table sized for `cardinality` distinct keys. The capacity
    /// is the next power of two ≥ 32·cardinality (at least 256 slots):
    /// lane-private slots mean one key can occupy up to 16 slots, and open
    /// addressing needs load factor ≤ 0.5 on top — the memory the conflict
    /// mitigation trades for SIMD utilization (and the reason the design
    /// runs out of cache earlier at high cardinality).
    pub fn for_cardinality(cardinality: usize) -> Self {
        let capacity = pow2_capacity(cardinality * 32, 256);
        let num_buckets = capacity / 16;
        BucketTable {
            keys: vec![EMPTY; capacity],
            count: vec![0.0; capacity],
            sum: vec![0.0; capacity],
            sumsq: vec![0.0; capacity],
            bucket_mask: num_buckets as u32 - 1,
            shift: 32 - num_buckets.trailing_zeros(),
        }
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Occupied slot count (may exceed the number of distinct keys:
    /// duplicates are merged at drain time).
    pub fn occupied(&self) -> usize {
        self.keys.iter().filter(|&&k| k != EMPTY).count()
    }

    /// Conflict-masking SIMD aggregation on the bucketized layout
    /// (`bucket_mask`): the lane-staggered slots mitigate most conflicts;
    /// the residual ones are handled with the Figure-3 masking flow.
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_mask(&mut self, keys: &[i32], vals: &[f32]) -> ProbeStats {
        assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
        assert!(keys.iter().all(|&k| k >= 0), "group-by keys must be non-negative");
        let mut stats = ProbeStats::default();
        let mut feeder = PositionFeeder::new(0, keys.len());
        let mut vpos = I32x16::zero();
        let mut vkey = I32x16::splat(EMPTY);
        let mut vval = F32x16::zero();
        let mut vt = I32x16::zero();
        let mut active = Mask16::none();
        loop {
            let filled = feeder.refill(!active, &mut vpos);
            if !filled.is_empty() {
                vkey = vkey.mask_gather(filled, keys, vpos);
                vval = vval.mask_gather(filled, vals, vpos);
                vt = I32x16::zero().blend(filled, vt);
                active |= filled;
            }
            if active.is_empty() {
                break;
            }
            stats.rounds += 1;
            let vslot = bucket_slots(vkey, vt, self.shift, self.bucket_mask);
            let tkeys = I32x16::splat(EMPTY).mask_gather(active, &self.keys, vslot);
            let m_match = tkeys.simd_eq(vkey) & active;
            let m_empty = tkeys.eq_broadcast(EMPTY) & active;
            let claim = conflict_free_subset(m_empty, vslot);
            vkey.mask_scatter(claim, &mut self.keys, vslot);
            let upd = conflict_free_subset(m_match, vslot);
            self.update_payload(upd, vslot, vval);
            stats.util.record(u64::from(upd.count_ones()), 16);
            active = active.and_not(upd);
            let m_miss = active.and_not(m_match).and_not(m_empty);
            vt = (vt + I32x16::splat(1)).blend(m_miss, vt);
            // Overflow path: lanes stuck in long probe chains commit scalar.
            for lane in active.iter_set() {
                if vt.extract(lane) > SCALAR_FALLBACK_PROBES {
                    let v = vval.extract(lane);
                    self.commit_scalar(vkey.extract(lane), 1.0, v, v * v);
                    stats.util.record(1, 16);
                    active = active.with(lane, false);
                }
            }
        }
        stats
    }

    /// In-vector reduction SIMD aggregation on the bucketized layout
    /// (`bucket_invec`): input vectors are pre-reduced by key, then probe
    /// with lane staggering. The paper's best performer until the group
    /// cardinality nears the table size.
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_invec(&mut self, keys: &[i32], vals: &[f32]) -> ProbeStats {
        // Resolved once per aggregation run.
        self.aggregate_invec_with(invector_core::backend::current(), keys, vals)
    }

    /// [`BucketTable::aggregate_invec`] against an explicitly resolved
    /// backend (the in-vector reduction is the backend-dispatched step).
    ///
    /// # Panics
    ///
    /// Panics on negative keys, length mismatch, or table overflow.
    pub fn aggregate_invec_with(
        &mut self,
        backend: invector_core::backend::Backend,
        keys: &[i32],
        vals: &[f32],
    ) -> ProbeStats {
        assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
        assert!(keys.iter().all(|&k| k >= 0), "group-by keys must be non-negative");
        let mut stats = ProbeStats::default();
        let mut j = 0;
        while j < keys.len() {
            let (vkey, active) = I32x16::load_partial(&keys[j..], EMPTY);
            let (vval, _) = F32x16::load_partial(&vals[j..], 0.0);
            let mut comps = [F32x16::splat(1.0), vval, vval * vval];
            let (distinct, d1) =
                reduce_alg1_arr_with::<f32, Sum, 3, 16>(backend, active, vkey, &mut comps);
            stats.depth.record(d1);
            let mut rem = distinct;
            let mut vt = I32x16::zero();
            while !rem.is_empty() {
                stats.rounds += 1;
                let vslot = bucket_slots(vkey, vt, self.shift, self.bucket_mask);
                let tkeys = I32x16::splat(EMPTY).mask_gather(rem, &self.keys, vslot);
                let m_match = tkeys.simd_eq(vkey) & rem;
                self.accumulate_components(m_match, vslot, &comps);
                rem = rem.and_not(m_match);
                let m_empty = tkeys.eq_broadcast(EMPTY) & rem;
                let claim = conflict_free_subset(m_empty, vslot);
                vkey.mask_scatter(claim, &mut self.keys, vslot);
                comps[0].mask_scatter(claim, &mut self.count, vslot);
                comps[1].mask_scatter(claim, &mut self.sum, vslot);
                comps[2].mask_scatter(claim, &mut self.sumsq, vslot);
                rem = rem.and_not(claim);
                stats.util.record(u64::from(m_match.count_ones() + claim.count_ones()), 16);
                let m_miss = rem.and_not(m_empty);
                vt = (vt + I32x16::splat(1)).blend(m_miss, vt);
                // Overflow path: lanes stuck in long probe chains commit
                // their pre-reduced components scalar.
                for lane in rem.iter_set() {
                    if vt.extract(lane) > SCALAR_FALLBACK_PROBES {
                        self.commit_scalar(
                            vkey.extract(lane),
                            comps[0].extract(lane),
                            comps[1].extract(lane),
                            comps[2].extract(lane),
                        );
                        stats.util.record(1, 16);
                        rem = rem.with(lane, false);
                    }
                }
            }
            j += 16;
        }
        stats
    }

    /// Scalar overflow commit: walks the table from the key's home bucket
    /// in plain slot order until it finds the key or an empty slot.
    ///
    /// # Panics
    ///
    /// Panics if every slot is occupied by other keys (true table overflow).
    fn commit_scalar(&mut self, key: i32, c: f32, s: f32, q: f32) {
        let cap = self.capacity() as u32;
        let start = (hash_key(key, self.shift) & self.bucket_mask) * 16;
        for t in 0..cap {
            let slot = ((start + t) & (cap - 1)) as usize;
            if self.keys[slot] == key || self.keys[slot] == EMPTY {
                self.keys[slot] = key;
                self.count[slot] += c;
                self.sum[slot] += s;
                self.sumsq[slot] += q;
                return;
            }
        }
        panic!("bucketized hash table full (capacity {cap})");
    }

    fn update_payload(&mut self, lanes: Mask16, vslot: I32x16, vval: F32x16) {
        let c = F32x16::zero().mask_gather(lanes, &self.count, vslot);
        (c + F32x16::splat(1.0)).mask_scatter(lanes, &mut self.count, vslot);
        let s = F32x16::zero().mask_gather(lanes, &self.sum, vslot);
        (s + vval).mask_scatter(lanes, &mut self.sum, vslot);
        let q = F32x16::zero().mask_gather(lanes, &self.sumsq, vslot);
        (q + vval * vval).mask_scatter(lanes, &mut self.sumsq, vslot);
    }

    fn accumulate_components(&mut self, lanes: Mask16, vslot: I32x16, comps: &[F32x16; 3]) {
        let arrays: [&mut Vec<f32>; 3] = [&mut self.count, &mut self.sum, &mut self.sumsq];
        for (arr, &c) in arrays.into_iter().zip(comps) {
            let old = F32x16::zero().mask_gather(lanes, arr, vslot);
            (old + c).mask_scatter(lanes, arr, vslot);
        }
    }

    /// Extracts all result rows sorted by key, merging the duplicate slots
    /// the lane-staggered insertion creates, and empties the table.
    pub fn drain(&mut self) -> Vec<AggRow> {
        let mut map: std::collections::BTreeMap<i32, (f32, f32, f32)> =
            std::collections::BTreeMap::new();
        for s in 0..self.keys.len() {
            if self.keys[s] != EMPTY {
                let e = map.entry(self.keys[s]).or_insert((0.0, 0.0, 0.0));
                e.0 += self.count[s];
                e.1 += self.sum[s];
                e.2 += self.sumsq[s];
                self.keys[s] = EMPTY;
                self.count[s] = 0.0;
                self.sum[s] = 0.0;
                self.sumsq[s] = 0.0;
            }
        }
        map.into_iter()
            .map(|(key, (count, sum, sumsq))| AggRow { key, count, sum, sumsq })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Distribution};
    use crate::table::{assert_rows_close, reference_aggregate};

    #[test]
    fn mask_matches_reference_on_all_distributions() {
        for dist in Distribution::ALL {
            let input = generate(dist, 3000, 200, 12);
            let mut t = BucketTable::for_cardinality(input.cardinality);
            let stats = t.aggregate_mask(&input.keys, &input.vals);
            assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-3);
            assert!(stats.rounds > 0, "{dist}");
        }
    }

    #[test]
    fn invec_matches_reference_on_all_distributions() {
        for dist in Distribution::ALL {
            let input = generate(dist, 3000, 200, 13);
            let mut t = BucketTable::for_cardinality(input.cardinality);
            let _ = t.aggregate_invec(&input.keys, &input.vals);
            assert_rows_close(&t.drain(), &reference_aggregate(&input.keys, &input.vals), 1e-3);
        }
    }

    #[test]
    fn lane_staggering_gives_bucket_mask_high_utilization_under_skew() {
        // The point of the bucketized design: a 50% hot key no longer
        // serializes the masked variant.
        let input = generate(Distribution::HeavyHitter, 8000, 256, 14);
        let mut linear = crate::linear::LinearTable::for_cardinality(256);
        let linear_stats = linear.aggregate_mask(&input.keys, &input.vals);
        let mut bucket = BucketTable::for_cardinality(256);
        let bucket_stats = bucket.aggregate_mask(&input.keys, &input.vals);
        assert!(
            bucket_stats.util.ratio() > 1.5 * linear_stats.util.ratio(),
            "bucket {} vs linear {}",
            bucket_stats.util.ratio(),
            linear_stats.util.ratio()
        );
    }

    #[test]
    fn duplicates_are_merged_at_drain() {
        // The same key inserted from different lane positions occupies
        // multiple slots until drain merges them.
        let keys = vec![9i32; 64];
        let vals = vec![1.0f32; 64];
        let mut t = BucketTable::for_cardinality(16);
        t.aggregate_mask(&keys, &vals);
        let occupied = t.occupied();
        let rows = t.drain();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].count, 64.0);
        assert!(occupied >= 1);
    }

    #[test]
    fn near_capacity_cardinality_still_correct() {
        let card = 300;
        let keys: Vec<i32> = (0..card as i32).flat_map(|k| [k, k, k]).collect();
        let vals = vec![0.5f32; keys.len()];
        let mut t = BucketTable::for_cardinality(card);
        t.aggregate_invec(&keys, &vals);
        let rows = t.drain();
        assert_eq!(rows.len(), card);
        assert!(rows.iter().all(|r| r.count == 3.0));
    }

    #[test]
    fn empty_input() {
        let mut t = BucketTable::for_cardinality(8);
        let _ = t.aggregate_mask(&[], &[]);
        let _ = t.aggregate_invec(&[], &[]);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn random_interleavings_of_both_methods() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(15);
        for _ in 0..10 {
            let n = rng.gen_range(0..1000);
            let card = rng.gen_range(1..100);
            let keys: Vec<i32> = (0..n).map(|_| rng.gen_range(0..card)).collect();
            let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let expect = reference_aggregate(&keys, &vals);
            let mut t = BucketTable::for_cardinality(card as usize);
            t.aggregate_mask(&keys, &vals);
            assert_rows_close(&t.drain(), &expect, 1e-3);
            t.aggregate_invec(&keys, &vals);
            assert_rows_close(&t.drain(), &expect, 1e-3);
        }
    }
}
