//! One-call façade over the five aggregation variants (Figure 13's series).

use std::time::{Duration, Instant};

use invector_core::exec::{parallel_chunks, ExecPolicy};

use crate::bucket::BucketTable;
use crate::linear::LinearTable;
use crate::table::{AggRow, ProbeStats};

/// The aggregation implementations compared in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Scalar linear-probing baseline.
    LinearSerial,
    /// Conflict-masking on the linear-probing table.
    LinearMask,
    /// Conflict-masking on the bucketized table.
    BucketMask,
    /// In-vector reduction on the linear-probing table.
    LinearInvec,
    /// In-vector reduction on the bucketized table.
    BucketInvec,
}

impl Method {
    /// All methods in the paper's legend order.
    pub const ALL: [Method; 5] = [
        Method::LinearSerial,
        Method::LinearMask,
        Method::BucketMask,
        Method::LinearInvec,
        Method::BucketInvec,
    ];

    /// The paper's series label.
    pub fn label(self) -> &'static str {
        match self {
            Method::LinearSerial => "linear_serial",
            Method::LinearMask => "linear_mask",
            Method::BucketMask => "bucket_mask",
            Method::LinearInvec => "linear_invec",
            Method::BucketInvec => "bucket_invec",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one aggregation run.
#[derive(Debug, Clone)]
pub struct AggOutcome {
    /// Result rows, sorted by key.
    pub rows: Vec<AggRow>,
    /// Aggregation wall time (table build + drain).
    pub elapsed: Duration,
    /// Modeled instruction count (SIMD instructions for vectorized methods,
    /// the scalar cost model for `linear_serial`).
    pub instructions: u64,
    /// Probe statistics (`Default` for the serial baseline).
    pub stats: ProbeStats,
}

impl AggOutcome {
    /// Throughput in millions of rows per second — the unit of Figure 13.
    pub fn mrows_per_sec(&self, rows_in: usize) -> f64 {
        rows_in as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Runs the group-by query with the chosen method over `keys`/`vals`,
/// sizing the table for `cardinality` distinct keys.
///
/// # Panics
///
/// Panics on negative keys or length mismatch.
pub fn aggregate(method: Method, keys: &[i32], vals: &[f32], cardinality: usize) -> AggOutcome {
    let instr_before = invector_simd::count::read();
    let start = Instant::now();
    let (rows, stats) =
        run_method(method, invector_core::backend::current(), keys, vals, cardinality);
    AggOutcome {
        rows,
        elapsed: start.elapsed(),
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        stats,
    }
}

/// [`aggregate`] with an explicit [`ExecPolicy`]: when `policy.threads > 1`
/// the input stream is chunked over the persistent thread pool, each worker
/// runs the chosen method into a **private table** (aggregation has no
/// shared target — every worker owns its table outright, so neither
/// owner-computes nor privatized partitioning metadata is needed), and the
/// drained per-worker rows are merged by key on the caller. Counts are
/// exact; sums match the single-table result within float-reassociation
/// tolerance, and the task-order merge makes reruns at a fixed thread count
/// bit-identical.
///
/// # Panics
///
/// Panics on negative keys or length mismatch.
pub fn aggregate_with_policy(
    method: Method,
    keys: &[i32],
    vals: &[f32],
    cardinality: usize,
    policy: &ExecPolicy,
) -> AggOutcome {
    // Resolved once per run; worker closures capture the resolved value.
    let backend = policy.backend.resolve();
    if policy.threads <= 1 {
        let instr_before = invector_simd::count::read();
        let start = Instant::now();
        let (rows, stats) = run_method(method, backend, keys, vals, cardinality);
        return AggOutcome {
            rows,
            elapsed: start.elapsed(),
            instructions: invector_simd::count::read().wrapping_sub(instr_before),
            stats,
        };
    }
    assert_eq!(keys.len(), vals.len(), "keys/vals length mismatch");
    let instr_before = invector_simd::count::read();
    let start = Instant::now();
    let results = parallel_chunks(keys.len(), policy.threads, |_, range| {
        run_method(method, backend, &keys[range.clone()], &vals[range], cardinality)
    });
    let mut merged: std::collections::BTreeMap<i32, AggRow> = std::collections::BTreeMap::new();
    let mut stats = ProbeStats::default();
    for (rows, s) in results {
        for row in rows {
            merged
                .entry(row.key)
                .and_modify(|acc| {
                    acc.count += row.count;
                    acc.sum += row.sum;
                    acc.sumsq += row.sumsq;
                })
                .or_insert(row);
        }
        stats.merge(&s);
    }
    AggOutcome {
        rows: merged.into_values().collect(),
        elapsed: start.elapsed(),
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        stats,
    }
}

/// Builds the method's table over one key/value stream and drains it. The
/// in-vector methods reduce through `backend`; the mask/serial methods are
/// backend-independent.
fn run_method(
    method: Method,
    backend: invector_core::backend::Backend,
    keys: &[i32],
    vals: &[f32],
    cardinality: usize,
) -> (Vec<AggRow>, ProbeStats) {
    match method {
        Method::LinearSerial => {
            let mut t = LinearTable::for_cardinality(cardinality);
            t.aggregate_serial(keys, vals);
            (t.drain(), ProbeStats::default())
        }
        Method::LinearMask => {
            let mut t = LinearTable::for_cardinality(cardinality);
            let stats = t.aggregate_mask(keys, vals);
            (t.drain(), stats)
        }
        Method::LinearInvec => {
            let mut t = LinearTable::for_cardinality(cardinality);
            let stats = t.aggregate_invec_with(backend, keys, vals);
            (t.drain(), stats)
        }
        Method::BucketMask => {
            let mut t = BucketTable::for_cardinality(cardinality);
            let stats = t.aggregate_mask(keys, vals);
            (t.drain(), stats)
        }
        Method::BucketInvec => {
            let mut t = BucketTable::for_cardinality(cardinality);
            let stats = t.aggregate_invec_with(backend, keys, vals);
            (t.drain(), stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Distribution};
    use crate::table::{assert_rows_close, reference_aggregate};

    #[test]
    fn every_method_computes_the_same_query() {
        for dist in Distribution::ALL {
            let input = generate(dist, 2000, 128, 21);
            let expect = reference_aggregate(&input.keys, &input.vals);
            for method in Method::ALL {
                let out = aggregate(method, &input.keys, &input.vals, input.cardinality);
                assert_rows_close(&out.rows, &expect, 1e-3);
            }
        }
    }

    #[test]
    fn labels_match_figure13_legend() {
        assert_eq!(Method::LinearSerial.label(), "linear_serial");
        assert_eq!(Method::BucketInvec.to_string(), "bucket_invec");
        let set: std::collections::HashSet<_> = Method::ALL.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn every_method_parallelizes_to_the_same_query() {
        let input = generate(Distribution::Zipf, 4000, 96, 23);
        let expect = reference_aggregate(&input.keys, &input.vals);
        for threads in [2, 3, 8] {
            let policy = invector_core::exec::ExecPolicy::with_threads(threads);
            for method in Method::ALL {
                let out = aggregate_with_policy(
                    method,
                    &input.keys,
                    &input.vals,
                    input.cardinality,
                    &policy,
                );
                assert_rows_close(&out.rows, &expect, 1e-3);
            }
        }
    }

    #[test]
    fn parallel_aggregation_is_deterministic_and_merges_stats() {
        let input = generate(Distribution::HeavyHitter, 4000, 64, 24);
        let policy = invector_core::exec::ExecPolicy::with_threads(4);
        let a = aggregate_with_policy(Method::BucketInvec, &input.keys, &input.vals, 64, &policy);
        let b = aggregate_with_policy(Method::BucketInvec, &input.keys, &input.vals, 64, &policy);
        assert_eq!(a.rows, b.rows, "per-worker merge must be deterministic");
        assert!(a.stats.rounds > 0);
        assert!(a.stats.depth.invocations() > 0);
        // Counts are exact under any split: chunk sums of integers.
        let serial = aggregate(Method::BucketInvec, &input.keys, &input.vals, 64);
        let total: f32 = a.rows.iter().map(|r| r.count).sum();
        let total_serial: f32 = serial.rows.iter().map(|r| r.count).sum();
        assert_eq!(total, total_serial);
    }

    #[test]
    fn throughput_is_finite_and_positive() {
        let input = generate(Distribution::Zipf, 5000, 64, 22);
        let out = aggregate(Method::BucketInvec, &input.keys, &input.vals, 64);
        let t = out.mrows_per_sec(input.len());
        assert!(t.is_finite() && t > 0.0);
    }
}
