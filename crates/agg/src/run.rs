//! One-call façade over the five aggregation variants (Figure 13's series).

use std::time::{Duration, Instant};

use crate::bucket::BucketTable;
use crate::linear::LinearTable;
use crate::table::{AggRow, ProbeStats};

/// The aggregation implementations compared in Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Scalar linear-probing baseline.
    LinearSerial,
    /// Conflict-masking on the linear-probing table.
    LinearMask,
    /// Conflict-masking on the bucketized table.
    BucketMask,
    /// In-vector reduction on the linear-probing table.
    LinearInvec,
    /// In-vector reduction on the bucketized table.
    BucketInvec,
}

impl Method {
    /// All methods in the paper's legend order.
    pub const ALL: [Method; 5] = [
        Method::LinearSerial,
        Method::LinearMask,
        Method::BucketMask,
        Method::LinearInvec,
        Method::BucketInvec,
    ];

    /// The paper's series label.
    pub fn label(self) -> &'static str {
        match self {
            Method::LinearSerial => "linear_serial",
            Method::LinearMask => "linear_mask",
            Method::BucketMask => "bucket_mask",
            Method::LinearInvec => "linear_invec",
            Method::BucketInvec => "bucket_invec",
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one aggregation run.
#[derive(Debug, Clone)]
pub struct AggOutcome {
    /// Result rows, sorted by key.
    pub rows: Vec<AggRow>,
    /// Aggregation wall time (table build + drain).
    pub elapsed: Duration,
    /// Modeled instruction count (SIMD instructions for vectorized methods,
    /// the scalar cost model for `linear_serial`).
    pub instructions: u64,
    /// Probe statistics (`Default` for the serial baseline).
    pub stats: ProbeStats,
}

impl AggOutcome {
    /// Throughput in millions of rows per second — the unit of Figure 13.
    pub fn mrows_per_sec(&self, rows_in: usize) -> f64 {
        rows_in as f64 / self.elapsed.as_secs_f64() / 1e6
    }
}

/// Runs the group-by query with the chosen method over `keys`/`vals`,
/// sizing the table for `cardinality` distinct keys.
///
/// # Panics
///
/// Panics on negative keys or length mismatch.
pub fn aggregate(method: Method, keys: &[i32], vals: &[f32], cardinality: usize) -> AggOutcome {
    let instr_before = invector_simd::count::read();
    let start = Instant::now();
    let (rows, stats) = match method {
        Method::LinearSerial => {
            let mut t = LinearTable::for_cardinality(cardinality);
            t.aggregate_serial(keys, vals);
            (t.drain(), ProbeStats::default())
        }
        Method::LinearMask => {
            let mut t = LinearTable::for_cardinality(cardinality);
            let stats = t.aggregate_mask(keys, vals);
            (t.drain(), stats)
        }
        Method::LinearInvec => {
            let mut t = LinearTable::for_cardinality(cardinality);
            let stats = t.aggregate_invec(keys, vals);
            (t.drain(), stats)
        }
        Method::BucketMask => {
            let mut t = BucketTable::for_cardinality(cardinality);
            let stats = t.aggregate_mask(keys, vals);
            (t.drain(), stats)
        }
        Method::BucketInvec => {
            let mut t = BucketTable::for_cardinality(cardinality);
            let stats = t.aggregate_invec(keys, vals);
            (t.drain(), stats)
        }
    };
    AggOutcome {
        rows,
        elapsed: start.elapsed(),
        instructions: invector_simd::count::read().wrapping_sub(instr_before),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{generate, Distribution};
    use crate::table::{assert_rows_close, reference_aggregate};

    #[test]
    fn every_method_computes_the_same_query() {
        for dist in Distribution::ALL {
            let input = generate(dist, 2000, 128, 21);
            let expect = reference_aggregate(&input.keys, &input.vals);
            for method in Method::ALL {
                let out = aggregate(method, &input.keys, &input.vals, input.cardinality);
                assert_rows_close(&out.rows, &expect, 1e-3);
            }
        }
    }

    #[test]
    fn labels_match_figure13_legend() {
        assert_eq!(Method::LinearSerial.label(), "linear_serial");
        assert_eq!(Method::BucketInvec.to_string(), "bucket_invec");
        let set: std::collections::HashSet<_> = Method::ALL.iter().collect();
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn throughput_is_finite_and_positive() {
        let input = generate(Distribution::Zipf, 5000, 64, 22);
        let out = aggregate(Method::BucketInvec, &input.keys, &input.vals, 64);
        let t = out.mrows_per_sec(input.len());
        assert!(t.is_finite() && t > 0.0);
    }
}
