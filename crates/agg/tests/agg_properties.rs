//! Property tests: every aggregation method computes the reference query.

use proptest::prelude::*;

use invector_agg::dist::{generate, Distribution};
use invector_agg::run::{aggregate, Method};
use invector_agg::table::reference_aggregate;
use invector_agg::LinearTable;

fn rows_strategy() -> impl Strategy<Value = (Vec<i32>, Vec<f32>)> {
    prop::collection::vec((0..50i32, 0..1000i32), 0..400).prop_map(|pairs| {
        let keys: Vec<i32> = pairs.iter().map(|&(k, _)| k).collect();
        // Small dyadic values: f32 sums are exact, so comparisons can be
        // strict across arbitrary reduction orders.
        let vals: Vec<f32> = pairs.iter().map(|&(_, v)| v as f32 / 8.0).collect();
        (keys, vals)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_methods_compute_the_reference_query((keys, vals) in rows_strategy()) {
        let expect = reference_aggregate(&keys, &vals);
        for method in Method::ALL {
            let out = aggregate(method, &keys, &vals, 50);
            prop_assert_eq!(out.rows.len(), expect.len(), "{}", method);
            for (g, e) in out.rows.iter().zip(&expect) {
                prop_assert_eq!(g.key, e.key, "{}", method);
                prop_assert_eq!(g.count, e.count, "{} key {}", method, g.key);
                prop_assert!((g.sum - e.sum).abs() < 1e-3, "{} key {}: {} vs {}", method, g.key, g.sum, e.sum);
            }
        }
    }

    #[test]
    fn adaptive_linear_invec_is_also_correct((keys, vals) in rows_strategy()) {
        let expect = reference_aggregate(&keys, &vals);
        let mut t = LinearTable::for_cardinality(50);
        let _ = t.aggregate_invec_adaptive(&keys, &vals, 50);
        let rows = t.drain();
        prop_assert_eq!(rows.len(), expect.len());
        for (g, e) in rows.iter().zip(&expect) {
            prop_assert_eq!(g.count, e.count, "key {}", g.key);
        }
    }

    #[test]
    fn generated_distributions_have_requested_size_and_domain(
        dist_idx in 0usize..3,
        n in 0usize..2000,
        card in 1usize..500,
        seed in any::<u64>(),
    ) {
        let dist = Distribution::ALL[dist_idx];
        let input = generate(dist, n, card, seed);
        prop_assert_eq!(input.len(), n);
        prop_assert!(input.keys.iter().all(|&k| (0..card as i32).contains(&k)));
        prop_assert!(input.vals.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn total_count_is_preserved_by_every_method(
        dist_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let dist = Distribution::ALL[dist_idx];
        let input = generate(dist, 3000, 128, seed);
        for method in Method::ALL {
            let out = aggregate(method, &input.keys, &input.vals, 128);
            let total: f32 = out.rows.iter().map(|r| r.count).sum();
            prop_assert_eq!(total, 3000.0, "{}", method);
        }
    }
}
