//! Execution statistics: SIMD utilization and conflict-depth histograms.

/// Lane-level SIMD utilization: the fraction of lane slots that performed
/// useful (committed) work.
///
/// The paper reports this per application/dataset for the conflict-masking
/// approach (e.g. 97.96% for PageRank on higgs-twitter, 6.67% for WCC on
/// amazon0312) — it is the quantity that predicts masking performance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Utilization {
    /// Lanes that committed useful work.
    pub useful: u64,
    /// Total lane slots across all rounds.
    pub slots: u64,
}

impl Utilization {
    /// Records one vector round: `useful` committed lanes out of `width`.
    #[inline]
    pub fn record(&mut self, useful: u64, width: u64) {
        self.useful += useful;
        self.slots += width;
    }

    /// Utilization ratio in `[0, 1]`; `1.0` for an empty record.
    pub fn ratio(self) -> f64 {
        if self.slots == 0 {
            1.0
        } else {
            self.useful as f64 / self.slots as f64
        }
    }

    /// Merges another record into this one.
    pub fn merge(&mut self, other: Utilization) {
        self.useful += other.useful;
        self.slots += other.slots;
    }
}

impl std::fmt::Display for Utilization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}%", self.ratio() * 100.0)
    }
}

/// Histogram of conflict depths (the `D1`/`D2` merge-iteration counts of the
/// in-vector reduction algorithms), bucketed per vector invocation.
///
/// The paper's adaptive policy (§3.4) keys off the *average* D1: graph
/// workloads see ~10⁻⁴ while hash aggregation can reach 4, flipping the
/// choice to Algorithm 2.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthHistogram {
    buckets: [u64; 17],
    total: u64,
    count: u64,
}

impl DepthHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one invocation with conflict depth `d` (clamped to 16).
    #[inline]
    pub fn record(&mut self, d: u32) {
        self.buckets[(d as usize).min(16)] += 1;
        self.total += u64::from(d);
        self.count += 1;
    }

    /// Number of recorded invocations.
    pub fn invocations(&self) -> u64 {
        self.count
    }

    /// Mean conflict depth; `0.0` when nothing was recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Largest recorded depth.
    pub fn max(&self) -> u32 {
        (0..17).rev().find(|&d| self.buckets[d] > 0).unwrap_or(0) as u32
    }

    /// Invocations with depth exactly `d` (depths above 16 land in bucket 16).
    pub fn bucket(&self, d: u32) -> u64 {
        self.buckets[(d as usize).min(16)]
    }

    /// Absorbs a raw bucket array produced by a fused native driver
    /// (`buckets[d]` invocations of depth `d`). Depths recorded this way
    /// are ≤ 16 by construction (a 16-lane vector merges at most 8
    /// groups), so the mean is exact.
    pub fn absorb_buckets(&mut self, buckets: &[u64; 17]) {
        for (d, &n) in buckets.iter().enumerate() {
            self.buckets[d] += n;
            self.total += d as u64 * n;
            self.count += n;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DepthHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_ratio() {
        let mut u = Utilization::default();
        u.record(8, 16);
        u.record(16, 16);
        assert_eq!(u.ratio(), 0.75);
        assert_eq!(format!("{u}"), "75.00%");
    }

    #[test]
    fn empty_utilization_is_full() {
        assert_eq!(Utilization::default().ratio(), 1.0);
    }

    #[test]
    fn utilization_merge_adds_components() {
        let mut a = Utilization { useful: 4, slots: 16 };
        a.merge(Utilization { useful: 12, slots: 16 });
        assert_eq!(a.ratio(), 0.5);
    }

    #[test]
    fn histogram_mean_and_max() {
        let mut h = DepthHistogram::new();
        h.record(0);
        h.record(0);
        h.record(4);
        assert_eq!(h.invocations(), 3);
        assert!((h.mean() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.max(), 4);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(4), 1);
        assert_eq!(h.bucket(9), 0);
    }

    #[test]
    fn histogram_clamps_large_depths() {
        let mut h = DepthHistogram::new();
        h.record(40);
        assert_eq!(h.bucket(16), 1);
        assert_eq!(h.max(), 16);
    }

    #[test]
    fn histogram_merge() {
        let mut a = DepthHistogram::new();
        a.record(1);
        let mut b = DepthHistogram::new();
        b.record(3);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.invocations(), 3);
        assert_eq!(a.bucket(3), 2);
        assert!((a.mean() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_defaults() {
        let h = DepthHistogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.invocations(), 0);
    }
}
