//! The conflict-masking baseline (§2.3, Figure 3 of the paper).
//!
//! Conflict-masking resolves SIMD write conflicts by *serializing* them:
//! each round, only the conflict-free subset of lanes commits to memory; the
//! conflicting lanes are masked out and retried in later rounds while
//! completed lanes are refilled from the input stream. Its performance is
//! therefore governed by SIMD utilization — under adverse input
//! distributions (many lanes hitting one index) it degenerates toward scalar
//! execution, which is exactly the weakness in-vector reduction removes.

use invector_simd::{conflict_free_subset, count, I32x16, Mask16, SimdElement, SimdVec};

use crate::ops::ReduceOp;
use crate::stats::Utilization;

/// Streams input positions into the free lanes of a SIMD vector — the
/// "update idx based on msafe" step of Figure 3.
///
/// The feeder hands out consecutive positions `start..end`; kernels gather
/// their per-item operands (indices, values, weights) through the position
/// vector.
///
/// # Example
///
/// ```
/// use invector_core::masking::PositionFeeder;
/// use invector_simd::{I32x16, Mask16};
///
/// let mut feeder = PositionFeeder::new(0, 5);
/// let mut vpos = I32x16::zero();
/// let filled = feeder.refill(Mask16::all(), &mut vpos);
/// assert_eq!(filled.count_ones(), 5); // only five items were available
/// assert!(feeder.is_exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct PositionFeeder {
    next: usize,
    end: usize,
}

impl PositionFeeder {
    /// Creates a feeder over positions `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "invalid feeder range {start}..{end}");
        PositionFeeder { next: start, end }
    }

    /// Remaining positions not yet handed out.
    pub fn remaining(&self) -> usize {
        self.end - self.next
    }

    /// `true` once every position has been handed out.
    pub fn is_exhausted(&self) -> bool {
        self.next == self.end
    }

    /// Fills the lanes selected by `free` with fresh positions (low lanes
    /// first) and returns the mask of lanes actually filled — a strict
    /// subset of `free` when the stream runs dry.
    pub fn refill(&mut self, free: Mask16, vpos: &mut I32x16) -> Mask16 {
        if free.is_empty() || self.is_exhausted() {
            return Mask16::none();
        }
        // Models a vpexpandd of the next chunk into the free lanes.
        count::bump(2);
        let mut filled = Mask16::none();
        let lanes = vpos.as_mut_array();
        for lane in free.iter_set() {
            if self.next == self.end {
                break;
            }
            lanes[lane] = self.next as i32;
            filled = filled.with(lane, true);
            self.next += 1;
        }
        filled
    }
}

/// Statistics of one conflict-masking execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskingStats {
    /// Vector rounds executed (each costs a full vector pass).
    pub rounds: u64,
    /// Lane-level utilization: committed lanes over total lane slots.
    pub utilization: Utilization,
}

/// Accumulates `vals[j]` into `target[idx[j]]` for every `j`, resolving
/// conflicts with the masking strategy of Figure 3.
///
/// Semantically equivalent to the scalar loop
/// `for j { target[idx[j]] = Op::combine(target[idx[j]], vals[j]) }`
/// and to [`crate::accumulate::invec_accumulate`]; only the conflict
/// resolution differs. Returns round/utilization statistics, the quantity
/// the paper identifies as the approach's Achilles heel.
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or any index is out of bounds for
/// `target`.
///
/// # Example
///
/// ```
/// use invector_core::{masking::masked_accumulate, ops::Sum};
///
/// let mut hist = vec![0.0f32; 4];
/// let idx = [0, 1, 0, 2, 0, 1];
/// let vals = [1.0f32; 6];
/// let stats = masked_accumulate::<f32, Sum>(&mut hist, &idx, &vals);
/// assert_eq!(hist, vec![3.0, 2.0, 1.0, 0.0]);
/// assert!(stats.utilization.ratio() <= 1.0);
/// ```
pub fn masked_accumulate<T, Op>(target: &mut [T], idx: &[i32], vals: &[T]) -> MaskingStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    let mut stats = MaskingStats::default();
    let mut feeder = PositionFeeder::new(0, idx.len());
    let mut vpos = I32x16::zero();
    let mut active = Mask16::none();

    loop {
        // Refill lanes that committed last round (or are initially empty).
        active |= feeder.refill(!active, &mut vpos);
        if active.is_empty() {
            break;
        }
        // Gather the per-item operands through the position vector.
        let vidx = I32x16::zero().mask_gather(active, idx, vpos);
        let vval = SimdVec::<T, 16>::zero().mask_gather(active, vals, vpos);
        // Only the conflict-free subset may commit this round.
        let safe = conflict_free_subset(active, vidx);
        let old = SimdVec::<T, 16>::zero().mask_gather(safe, target, vidx);
        let new = Op::combine_vec(old, vval);
        new.mask_scatter(safe, target, vidx);

        stats.rounds += 1;
        stats.utilization.record(u64::from(safe.count_ones()), 16);
        active = active.and_not(safe);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Min, Sum};
    use std::collections::HashMap;

    fn scalar_reference<T: SimdElement, Op: ReduceOp<T>>(
        target: &[T],
        idx: &[i32],
        vals: &[T],
    ) -> Vec<T> {
        let mut out = target.to_vec();
        for (&i, &v) in idx.iter().zip(vals) {
            out[i as usize] = Op::combine(out[i as usize], v);
        }
        out
    }

    #[test]
    fn feeder_hands_out_consecutive_positions() {
        let mut feeder = PositionFeeder::new(3, 40);
        let mut vpos = I32x16::zero();
        let filled = feeder.refill(Mask16::all(), &mut vpos);
        assert!(filled.is_full());
        assert_eq!(*vpos.as_array(), std::array::from_fn::<i32, 16, _>(|i| 3 + i as i32));
        assert_eq!(feeder.remaining(), 40 - 3 - 16);
    }

    #[test]
    fn feeder_fills_only_free_lanes() {
        let mut feeder = PositionFeeder::new(0, 100);
        let mut vpos = I32x16::splat(-1);
        let free = Mask16::from_bits(0b101);
        let filled = feeder.refill(free, &mut vpos);
        assert_eq!(filled, free);
        assert_eq!(vpos.extract(0), 0);
        assert_eq!(vpos.extract(1), -1);
        assert_eq!(vpos.extract(2), 1);
    }

    #[test]
    fn feeder_stops_at_stream_end() {
        let mut feeder = PositionFeeder::new(0, 2);
        let mut vpos = I32x16::zero();
        let filled = feeder.refill(Mask16::all(), &mut vpos);
        assert_eq!(filled.count_ones(), 2);
        assert!(feeder.refill(Mask16::all(), &mut vpos).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid feeder range")]
    fn feeder_rejects_inverted_range() {
        let _ = PositionFeeder::new(5, 1);
    }

    #[test]
    fn masked_accumulate_matches_scalar_no_conflicts() {
        let idx: Vec<i32> = (0..64).collect();
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut target = vec![0.0f32; 64];
        let stats = masked_accumulate::<f32, Sum>(&mut target, &idx, &vals);
        assert_eq!(target, scalar_reference::<f32, Sum>(&vec![0.0; 64], &idx, &vals));
        // Without conflicts every round commits all 16 lanes.
        assert_eq!(stats.rounds, 4);
        assert_eq!(stats.utilization.ratio(), 1.0);
    }

    #[test]
    fn masked_accumulate_degenerates_under_total_conflict() {
        // All items hit index 0: each round commits exactly one lane.
        let idx = vec![0i32; 32];
        let vals = vec![1.0f32; 32];
        let mut target = vec![0.0f32; 1];
        let stats = masked_accumulate::<f32, Sum>(&mut target, &idx, &vals);
        assert_eq!(target[0], 32.0);
        assert_eq!(stats.rounds, 32, "one committed lane per round = scalar speed");
        assert!(stats.utilization.ratio() < 0.07);
    }

    #[test]
    fn masked_accumulate_handles_partial_tail() {
        let idx = vec![1i32, 1, 1];
        let vals = vec![2.0f32, 3.0, 4.0];
        let mut target = vec![0.0f32; 2];
        masked_accumulate::<f32, Sum>(&mut target, &idx, &vals);
        assert_eq!(target, vec![0.0, 9.0]);
    }

    #[test]
    fn masked_accumulate_empty_input() {
        let mut target = vec![5.0f32; 3];
        let stats = masked_accumulate::<f32, Sum>(&mut target, &[], &[]);
        assert_eq!(stats.rounds, 0);
        assert_eq!(target, vec![5.0; 3]);
    }

    #[test]
    fn masked_accumulate_min_operator() {
        let idx = vec![0i32, 0, 1, 0, 1];
        let vals = vec![5.0f32, 2.0, 8.0, 7.0, 3.0];
        let mut target = vec![f32::INFINITY; 2];
        masked_accumulate::<f32, Min>(&mut target, &idx, &vals);
        assert_eq!(target, vec![2.0, 3.0]);
    }

    #[test]
    fn masked_accumulate_matches_reference_on_random_streams() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for _ in 0..50 {
            let n = rng.gen_range(0..200);
            let domain = rng.gen_range(1..20);
            let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            let mut target = vec![0i32; domain as usize];
            let expect = scalar_reference::<i32, Sum>(&target, &idx, &vals);
            masked_accumulate::<i32, Sum>(&mut target, &idx, &vals);
            assert_eq!(target, expect);
        }
    }

    #[test]
    fn utilization_reflects_conflict_density() {
        // Heavy skew (all same index) must utilize far worse than uniform.
        let n = 512;
        let uniform: Vec<i32> = (0..n).map(|i| i % 256).collect();
        let skewed = vec![7i32; n as usize];
        let vals = vec![1.0f32; n as usize];
        let mut t1 = vec![0.0f32; 256];
        let mut t2 = vec![0.0f32; 256];
        let u1 = masked_accumulate::<f32, Sum>(&mut t1, &uniform, &vals).utilization.ratio();
        let u2 = masked_accumulate::<f32, Sum>(&mut t2, &skewed, &vals).utilization.ratio();
        assert!(u1 > 0.9, "uniform utilization {u1}");
        assert!(u2 < 0.1, "skewed utilization {u2}");
        let mut hash = HashMap::new();
        for &i in &uniform {
            *hash.entry(i).or_insert(0.0) += 1.0;
        }
        for (k, v) in hash {
            assert_eq!(t1[k as usize], v);
        }
    }
}
