//! Associative reduction operators.

use invector_simd::SimdElement;

mod private {
    pub trait Sealed {}
    impl Sealed for super::Sum {}
    impl Sealed for super::Prod {}
    impl Sealed for super::Min {}
    impl Sealed for super::Max {}
    impl Sealed for super::BitOr {}
    impl Sealed for super::BitAnd {}
}

/// An associative binary operation over lane element `T`, with identity.
///
/// Associativity is what licenses in-vector reduction: partial sums computed
/// inside a SIMD vector can be folded in any order before reaching memory.
/// The trait is sealed — the operator set mirrors what the paper's
/// applications need (`invec_add`, `invec_min`, `invec_max`, plus a few more
/// for completeness), and each impl is unit-tested for the identity and
/// associativity laws.
pub trait ReduceOp<T: SimdElement>: private::Sealed + Copy + Send + Sync + 'static {
    /// Human-readable operator name (for stats and harness output).
    const NAME: &'static str;

    /// The identity element: `combine(identity(), x) == x`.
    fn identity() -> T;

    /// The associative combiner.
    fn combine(a: T, b: T) -> T;

    /// Lane-wise vector combine — one SIMD instruction (`vaddps`,
    /// `vminps`, ...). The default implementation applies
    /// [`combine`](Self::combine) to each lane pair.
    #[inline]
    fn combine_vec<const N: usize>(
        a: invector_simd::SimdVec<T, N>,
        b: invector_simd::SimdVec<T, N>,
    ) -> invector_simd::SimdVec<T, N> {
        invector_simd::count::bump(1);
        let (a, b) = (a.as_array(), b.as_array());
        invector_simd::SimdVec::from_array(std::array::from_fn(|i| Self::combine(a[i], b[i])))
    }
}

/// Addition (`invec_add`): the PageRank / aggregation reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sum;

/// Multiplication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prod;

/// Minimum (`invec_min`): the SSSP / WCC relaxation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

/// Maximum (`invec_max`): the SSWP relaxation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

/// Bitwise OR (integers only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitOr;

/// Bitwise AND (integers only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitAnd;

macro_rules! impl_num_ops {
    ($t:ty, $zero:expr, $one:expr, $min_id:expr, $max_id:expr, $add:expr, $mul:expr) => {
        impl ReduceOp<$t> for Sum {
            const NAME: &'static str = "add";
            #[inline(always)]
            fn identity() -> $t {
                $zero
            }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t {
                $add(a, b)
            }
        }
        impl ReduceOp<$t> for Prod {
            const NAME: &'static str = "mul";
            #[inline(always)]
            fn identity() -> $t {
                $one
            }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t {
                $mul(a, b)
            }
        }
        impl ReduceOp<$t> for Min {
            const NAME: &'static str = "min";
            #[inline(always)]
            fn identity() -> $t {
                $min_id
            }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t {
                a.lane_min(b)
            }
        }
        impl ReduceOp<$t> for Max {
            const NAME: &'static str = "max";
            #[inline(always)]
            fn identity() -> $t {
                $max_id
            }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t {
                a.lane_max(b)
            }
        }
    };
}

impl_num_ops!(
    f32,
    0.0,
    1.0,
    f32::INFINITY,
    f32::NEG_INFINITY,
    |a: f32, b: f32| a + b,
    |a: f32, b: f32| a * b
);
impl_num_ops!(
    i32,
    0,
    1,
    i32::MAX,
    i32::MIN,
    |a: i32, b: i32| a.wrapping_add(b),
    |a: i32, b: i32| a.wrapping_mul(b)
);
impl_num_ops!(
    u32,
    0,
    1,
    u32::MAX,
    u32::MIN,
    |a: u32, b: u32| a.wrapping_add(b),
    |a: u32, b: u32| a.wrapping_mul(b)
);

macro_rules! impl_bit_ops {
    ($t:ty) => {
        impl ReduceOp<$t> for BitOr {
            const NAME: &'static str = "or";
            #[inline(always)]
            fn identity() -> $t {
                0
            }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t {
                a | b
            }
        }
        impl ReduceOp<$t> for BitAnd {
            const NAME: &'static str = "and";
            #[inline(always)]
            fn identity() -> $t {
                !0
            }
            #[inline(always)]
            fn combine(a: $t, b: $t) -> $t {
                a & b
            }
        }
    };
}

impl_bit_ops!(i32);
impl_bit_ops!(u32);
impl_bit_ops!(i64);
impl_bit_ops!(u64);

impl_num_ops!(
    f64,
    0.0,
    1.0,
    f64::INFINITY,
    f64::NEG_INFINITY,
    |a: f64, b: f64| a + b,
    |a: f64, b: f64| a * b
);
impl_num_ops!(
    i64,
    0,
    1,
    i64::MAX,
    i64::MIN,
    |a: i64, b: i64| a.wrapping_add(b),
    |a: i64, b: i64| a.wrapping_mul(b)
);
impl_num_ops!(
    u64,
    0,
    1,
    u64::MAX,
    u64::MIN,
    |a: u64, b: u64| a.wrapping_add(b),
    |a: u64, b: u64| a.wrapping_mul(b)
);

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<T: SimdElement, Op: ReduceOp<T>>(samples: &[T]) {
        for &x in samples {
            assert_eq!(Op::combine(Op::identity(), x), x, "{} left identity", Op::NAME);
            assert_eq!(Op::combine(x, Op::identity()), x, "{} right identity", Op::NAME);
        }
        for &a in samples {
            for &b in samples {
                for &c in samples {
                    assert_eq!(
                        Op::combine(Op::combine(a, b), c),
                        Op::combine(a, Op::combine(b, c)),
                        "{} associativity",
                        Op::NAME
                    );
                }
            }
        }
    }

    #[test]
    fn i32_operator_laws() {
        let samples = [-7i32, 0, 1, 3, i32::MAX, i32::MIN];
        check_laws::<i32, Sum>(&samples);
        check_laws::<i32, Prod>(&samples);
        check_laws::<i32, Min>(&samples);
        check_laws::<i32, Max>(&samples);
        check_laws::<i32, BitOr>(&samples);
        check_laws::<i32, BitAnd>(&samples);
    }

    #[test]
    fn u32_operator_laws() {
        let samples = [0u32, 1, 3, 0xFFFF_FFFF, 0x8000_0000];
        check_laws::<u32, Sum>(&samples);
        check_laws::<u32, Min>(&samples);
        check_laws::<u32, Max>(&samples);
        check_laws::<u32, BitOr>(&samples);
        check_laws::<u32, BitAnd>(&samples);
    }

    #[test]
    fn f32_identities_absorb() {
        // Exact associativity does not hold for float add; identity must.
        let samples = [-2.5f32, 0.0, 1.0, 1e10, -1e-10];
        for &x in &samples {
            assert_eq!(<Sum as ReduceOp<f32>>::combine(0.0, x), x);
            assert_eq!(<Min as ReduceOp<f32>>::combine(f32::INFINITY, x), x);
            assert_eq!(<Max as ReduceOp<f32>>::combine(f32::NEG_INFINITY, x), x);
            assert_eq!(<Prod as ReduceOp<f32>>::combine(1.0, x), x);
        }
    }

    #[test]
    fn min_max_pick_correct_extremes() {
        assert_eq!(<Min as ReduceOp<i32>>::combine(4, -9), -9);
        assert_eq!(<Max as ReduceOp<f32>>::combine(4.0, 9.5), 9.5);
    }
}
