//! Self-tuning execution: close the observability → policy loop.
//!
//! Everything upstream of this module picks an [`ExecPolicy`] and an epoch
//! quantum *once*, at startup — yet the serving benchmarks show the best
//! static cell moves with the workload (a quantum that wins on a zipfian
//! stream loses on a uniform one). This module makes that selection
//! continuous: a [`Controller`] watches completed-epoch metrics
//! ([`MetricFrame`]s pulled from the stats registry) and hill-climbs the
//! `(quantum, threads, variant)` lattice between epochs, swapping the
//! active [`EpochPolicy`] through a shared [`PolicyHandle`].
//!
//! # Determinism
//!
//! Tuning must not break the serving layer's bitwise-snapshot contract.
//! Three rules keep it intact:
//!
//! 1. **Decisions are pure.** [`Controller::observe`] is a deterministic
//!    function of the frame sequence it has been fed — no clock, no RNG,
//!    no global state. Identical frame sequences produce identical
//!    decision traces (property-tested).
//! 2. **Switches land on slice boundaries.** A policy change is installed
//!    between epochs, keyed by each table's applied watermark at install
//!    time ([`TraceEntry::at`]). A [`PolicySchedule`] maps watermark →
//!    policy, and a slice never spans a scheduled change.
//! 3. **Traces replay.** Because cut positions under a schedule depend
//!    only on (stream content, schedule), replaying a recorded
//!    [`PolicyTrace`] against the same streams reproduces every slice
//!    boundary — and therefore every table bit — of the tuned run, under
//!    any shard count, client interleaving, or epoch timing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::exec::{ExecPolicy, ExecVariant};

/// The complete per-epoch execution policy: the engine policy plus the
/// epoch batch quantum it is cut under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpochPolicy {
    /// Engine policy the epoch's slices run under.
    pub exec: ExecPolicy,
    /// Batch quantum the epoch's slices are cut at.
    pub quantum: usize,
}

impl EpochPolicy {
    /// Bundles an engine policy with a quantum.
    pub fn new(exec: ExecPolicy, quantum: usize) -> EpochPolicy {
        EpochPolicy { exec, quantum }
    }
}

impl Default for EpochPolicy {
    /// The workspace's serving default: the default engine policy at a
    /// 4096-update quantum.
    fn default() -> Self {
        EpochPolicy { exec: ExecPolicy::default(), quantum: 4096 }
    }
}

#[derive(Debug)]
struct HandleInner {
    /// The quantum, readable with one atomic load — the admission path
    /// checks it per batch.
    quantum: AtomicUsize,
    exec: Mutex<ExecPolicy>,
    generation: AtomicU64,
}

/// The one shared, swappable route to the active [`EpochPolicy`].
///
/// Every layer that used to build its own `ExecPolicy` + quantum pair
/// (CLI, harness driver, serve core, bench bins) now holds one of these;
/// the controller (or anything else) can [`install`](PolicyHandle::install)
/// a replacement between epochs and every reader sees it on its next
/// [`current`](PolicyHandle::current) call. Cloning shares the handle.
#[derive(Debug, Clone)]
pub struct PolicyHandle {
    inner: Arc<HandleInner>,
}

impl PolicyHandle {
    /// A handle starting at `initial`.
    pub fn new(initial: EpochPolicy) -> PolicyHandle {
        PolicyHandle {
            inner: Arc::new(HandleInner {
                quantum: AtomicUsize::new(initial.quantum),
                exec: Mutex::new(initial.exec),
                generation: AtomicU64::new(0),
            }),
        }
    }

    /// A handle for batch callers that have no epoch quantum of their own
    /// (the quantum defaults and is ignored by non-epoch execution).
    pub fn fixed(exec: ExecPolicy) -> PolicyHandle {
        PolicyHandle::new(EpochPolicy { exec, ..EpochPolicy::default() })
    }

    /// The active policy pair.
    pub fn current(&self) -> EpochPolicy {
        EpochPolicy {
            exec: *self.inner.exec.lock().expect("policy lock"),
            quantum: self.inner.quantum.load(Ordering::Acquire),
        }
    }

    /// The active engine policy.
    pub fn exec(&self) -> ExecPolicy {
        *self.inner.exec.lock().expect("policy lock")
    }

    /// The active quantum (one atomic load — safe on the admission path).
    pub fn quantum(&self) -> usize {
        self.inner.quantum.load(Ordering::Acquire)
    }

    /// Atomically replaces the active policy; returns the new generation
    /// (counts installs since construction).
    pub fn install(&self, policy: EpochPolicy) -> u64 {
        let mut exec = self.inner.exec.lock().expect("policy lock");
        *exec = policy.exec;
        self.inner.quantum.store(policy.quantum, Ordering::Release);
        self.inner.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Installs since construction.
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::Acquire)
    }
}

/// One completed epoch's observations, pulled from the stats registry —
/// the controller's only input.
///
/// The load-bearing fields (`applied`, `offered`, `busy_ns`,
/// `queue_depth`, the conflict-depth summary) come straight from the epoch
/// report and are real on every feature leg; the latency quantiles and
/// instruction total are registry enrichment that read zero with `obs` /
/// `count` compiled out. The controller's decisions use only the
/// leg-independent fields, so tuning behaves identically on every build.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFrame {
    /// 1-based index of the completed non-empty epoch.
    pub epoch: u64,
    /// Updates applied this epoch.
    pub applied: u64,
    /// Slice capacity offered this epoch (Σ per-slice quantum).
    pub offered: u64,
    /// Wall nanoseconds attributed to this epoch's updates. The serve
    /// layer reports the time since the previous non-empty epoch —
    /// end-to-end cost including admission and reorder-buffer residency,
    /// clamped to discount client idle gaps — falling back to in-epoch
    /// execution time for the first frame.
    pub busy_ns: u64,
    /// Updates still waiting in the ingest queues after the epoch.
    pub queue_depth: u64,
    /// Mean conflict depth (D1) of the epoch's vector iterations.
    pub conflict_depth: f64,
    /// Fraction of vector iterations with conflict depth ≥ 2.
    pub deep_frac: f64,
    /// p50 epoch latency (µs) from the registry histogram (0 without obs).
    pub p50_epoch_us: f64,
    /// p99 epoch latency (µs) from the registry histogram (0 without obs).
    pub p99_epoch_us: f64,
    /// Process-wide modeled SIMD instruction total (0 without `count`).
    pub instructions: u64,
    /// Policy the epoch ran under.
    pub policy: EpochPolicy,
}

/// Knobs of the hill-climbing schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneConfig {
    /// Quantum lattice, ascending (probes move one rung at a time).
    pub quantum_ladder: Vec<usize>,
    /// Thread-count lattice, ascending.
    pub thread_ladder: Vec<usize>,
    /// Variant lattice (probed pairwise from the incumbent).
    pub variants: Vec<ExecVariant>,
    /// Non-empty epochs discarded before the first measurement (cold
    /// caches and pool spin-up would otherwise bias the baseline).
    pub warmup_epochs: u32,
    /// Non-empty epochs per measurement window (both baseline and probe).
    pub measure_epochs: u32,
    /// Relative score improvement a probe must show to dethrone the
    /// incumbent (e.g. `0.08` = 8%) — the anti-flap hysteresis band.
    pub hysteresis: f64,
    /// Non-empty epochs the controller holds a converged policy before
    /// re-measuring the baseline (periodic rejuvenation).
    pub hold_epochs: u32,
    /// Relative score drift inside a hold window that triggers an
    /// immediate re-probe (the workload has shifted under us).
    pub drift: f64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            quantum_ladder: vec![16, 128, 1024, 4096, 16384],
            thread_ladder: vec![1],
            variants: vec![ExecVariant::Invec, ExecVariant::Serial],
            warmup_epochs: 2,
            measure_epochs: 3,
            hysteresis: 0.08,
            hold_epochs: 48,
            drift: 0.5,
        }
    }
}

impl TuneConfig {
    fn validate(&self) -> Result<(), String> {
        if self.quantum_ladder.is_empty() || self.thread_ladder.is_empty() {
            return Err("tune: quantum and thread ladders must be non-empty".into());
        }
        if self.variants.is_empty() {
            return Err("tune: variant list must be non-empty".into());
        }
        if !self.quantum_ladder.windows(2).all(|w| w[0] < w[1])
            || !self.thread_ladder.windows(2).all(|w| w[0] < w[1])
        {
            return Err("tune: ladders must be strictly ascending".into());
        }
        if self.quantum_ladder[0] == 0 || self.thread_ladder[0] == 0 {
            return Err("tune: ladder entries must be >= 1".into());
        }
        if self.measure_epochs == 0 || self.hold_epochs == 0 {
            return Err("tune: measure_epochs and hold_epochs must be >= 1".into());
        }
        if self.hysteresis.is_nan() || self.hysteresis < 0.0 {
            return Err("tune: hysteresis must be >= 0".into());
        }
        if self.drift.is_nan() || self.drift <= 0.0 {
            return Err("tune: drift must be > 0".into());
        }
        Ok(())
    }
}

/// A point on the tuning lattice, by ladder indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Cell {
    q: usize,
    t: usize,
    v: usize,
}

/// A measurement window over non-empty epochs.
#[derive(Debug, Clone, Copy, Default)]
struct Window {
    frames: u32,
    applied: u64,
    busy_ns: u64,
}

impl Window {
    fn add(&mut self, f: &MetricFrame) {
        self.frames += 1;
        self.applied += f.applied;
        self.busy_ns += f.busy_ns;
    }

    /// Applied updates per busy nanosecond — the throughput score the
    /// climb maximizes.
    fn score(&self) -> f64 {
        self.applied as f64 / self.busy_ns.max(1) as f64
    }
}

#[derive(Debug, Clone)]
enum Phase {
    /// Discarding the first epochs.
    Warmup { left: u32 },
    /// Measuring the incumbent's baseline score.
    Measure,
    /// Probing `candidates[index]`.
    Probe { candidates: Vec<Cell>, index: usize },
    /// Converged; watching for drift.
    Hold { left: u32 },
}

/// One controller decision: the policy installed after observing `epoch`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Non-empty-epoch index the decision followed.
    pub epoch: u64,
    /// The policy installed for subsequent epochs.
    pub policy: EpochPolicy,
}

/// The online tuner: a deterministic hill-climb with hysteresis over the
/// `(quantum, threads, variant)` lattice.
///
/// Feed it one [`MetricFrame`] per completed non-empty epoch via
/// [`observe`](Controller::observe); a returned policy is the caller's to
/// install (through its [`PolicyHandle`]) before the next epoch cuts.
///
/// State machine: `Warmup → Measure → Probe → … → Hold`, with `Hold`
/// re-entering `Measure` periodically (rejuvenation) and immediately on
/// score drift (workload shift). Probes visit the incumbent's lattice
/// neighbors in a fixed order (quantum up/down, threads up/down, then the
/// other variants), adopting a neighbor only when its window score beats
/// the incumbent's by the hysteresis margin.
///
/// The controller is **pure**: decisions depend only on the frame sequence
/// (no clock, no randomness), so a run's decision trace is reproducible
/// from its frames alone.
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: TuneConfig,
    /// Template for lattice fields not under tuning (partition,
    /// determinism, backend).
    base: ExecPolicy,
    cell: Cell,
    incumbent: Cell,
    incumbent_score: f64,
    phase: Phase,
    window: Window,
    held: u32,
    epochs: u64,
    trace: Vec<Decision>,
}

impl Controller {
    /// A controller starting from `initial`, snapped to the nearest
    /// lattice cell.
    ///
    /// # Errors
    ///
    /// Returns a message for structurally invalid configurations (empty or
    /// unsorted ladders, zero windows).
    pub fn new(cfg: TuneConfig, initial: EpochPolicy) -> Result<Controller, String> {
        cfg.validate()?;
        let nearest = |ladder: &[usize], want: usize| {
            ladder
                .iter()
                .enumerate()
                .min_by_key(|(_, &v)| v.abs_diff(want))
                .map(|(i, _)| i)
                .unwrap_or(0)
        };
        let cell = Cell {
            q: nearest(&cfg.quantum_ladder, initial.quantum),
            t: nearest(&cfg.thread_ladder, initial.exec.threads),
            v: cfg.variants.iter().position(|&v| v == initial.exec.variant).unwrap_or(0),
        };
        let warmup = cfg.warmup_epochs;
        Ok(Controller {
            cfg,
            base: initial.exec,
            cell,
            incumbent: cell,
            incumbent_score: 0.0,
            phase: if warmup > 0 { Phase::Warmup { left: warmup } } else { Phase::Measure },
            window: Window::default(),
            held: 0,
            epochs: 0,
            trace: Vec::new(),
        })
    }

    /// The policy a lattice cell denotes.
    fn policy_of(&self, cell: Cell) -> EpochPolicy {
        let mut exec = self.base;
        exec.threads = self.cfg.thread_ladder[cell.t];
        exec.variant = self.cfg.variants[cell.v];
        EpochPolicy { exec, quantum: self.cfg.quantum_ladder[cell.q] }
    }

    /// The policy the controller currently wants active.
    pub fn current(&self) -> EpochPolicy {
        self.policy_of(self.cell)
    }

    /// The decision trace so far (one entry per installed policy change).
    pub fn trace(&self) -> &[Decision] {
        &self.trace
    }

    /// The incumbent's lattice neighbors in fixed probe order: quantum
    /// up, quantum down, threads up, threads down, then every other
    /// variant.
    fn neighbors(&self, of: Cell) -> Vec<Cell> {
        let mut out = Vec::new();
        if of.q + 1 < self.cfg.quantum_ladder.len() {
            out.push(Cell { q: of.q + 1, ..of });
        }
        if of.q > 0 {
            out.push(Cell { q: of.q - 1, ..of });
        }
        if of.t + 1 < self.cfg.thread_ladder.len() {
            out.push(Cell { t: of.t + 1, ..of });
        }
        if of.t > 0 {
            out.push(Cell { t: of.t - 1, ..of });
        }
        for v in 0..self.cfg.variants.len() {
            if v != of.v {
                out.push(Cell { v, ..of });
            }
        }
        out
    }

    /// Moves the active cell, recording the decision; returns the policy
    /// to install, or `None` when the move is a no-op.
    fn switch(&mut self, to: Cell) -> Option<EpochPolicy> {
        self.window = Window::default();
        if to == self.cell {
            return None;
        }
        self.cell = to;
        let policy = self.policy_of(to);
        self.trace.push(Decision { epoch: self.epochs, policy });
        Some(policy)
    }

    /// Feeds one completed-epoch frame; returns a policy to install for
    /// subsequent epochs, or `None` to keep the current one.
    ///
    /// Frames with `applied == 0` (empty epochs) are ignored — they carry
    /// no throughput signal and their timing is schedule noise.
    pub fn observe(&mut self, frame: &MetricFrame) -> Option<EpochPolicy> {
        if frame.applied == 0 {
            return None;
        }
        self.epochs += 1;
        match self.phase.clone() {
            Phase::Warmup { left } => {
                self.phase =
                    if left <= 1 { Phase::Measure } else { Phase::Warmup { left: left - 1 } };
                self.window = Window::default();
                None
            }
            Phase::Measure => {
                self.window.add(frame);
                if self.window.frames < self.cfg.measure_epochs {
                    return None;
                }
                self.incumbent = self.cell;
                self.incumbent_score = self.window.score();
                let candidates = self.neighbors(self.incumbent);
                match candidates.first().copied() {
                    None => {
                        self.phase = Phase::Hold { left: self.cfg.hold_epochs };
                        self.window = Window::default();
                        None
                    }
                    Some(first) => {
                        self.phase = Phase::Probe { candidates, index: 0 };
                        self.switch(first)
                    }
                }
            }
            Phase::Probe { candidates, index } => {
                self.window.add(frame);
                if self.window.frames < self.cfg.measure_epochs {
                    return None;
                }
                let score = self.window.score();
                if score > self.incumbent_score * (1.0 + self.cfg.hysteresis) {
                    // Adopt and keep climbing from the new incumbent.
                    self.incumbent = self.cell;
                    self.incumbent_score = score;
                    let candidates = self.neighbors(self.incumbent);
                    match candidates.first().copied() {
                        None => {
                            self.phase = Phase::Hold { left: self.cfg.hold_epochs };
                            self.window = Window::default();
                            None
                        }
                        Some(first) => {
                            self.phase = Phase::Probe { candidates, index: 0 };
                            self.switch(first)
                        }
                    }
                } else if index + 1 < candidates.len() {
                    let next = candidates[index + 1];
                    self.phase = Phase::Probe { candidates, index: index + 1 };
                    self.switch(next)
                } else {
                    // Sweep exhausted: settle on the incumbent.
                    self.phase = Phase::Hold { left: self.cfg.hold_epochs };
                    let back = self.incumbent;
                    self.switch(back)
                }
            }
            Phase::Hold { left } => {
                self.window.add(frame);
                self.held += 1;
                if self.window.frames >= self.cfg.measure_epochs {
                    let score = self.window.score();
                    let rel = (score - self.incumbent_score).abs()
                        / self.incumbent_score.max(f64::MIN_POSITIVE);
                    self.window = Window::default();
                    if rel > self.cfg.drift {
                        // Workload shift: re-baseline and re-probe now.
                        self.incumbent_score = score;
                        self.held = 0;
                        let candidates = self.neighbors(self.incumbent);
                        if let Some(first) = candidates.first().copied() {
                            self.phase = Phase::Probe { candidates, index: 0 };
                            return self.switch(first);
                        }
                        self.phase = Phase::Measure;
                        return None;
                    }
                }
                if left <= 1 {
                    // Rejuvenation: re-measure the baseline from scratch.
                    self.held = 0;
                    self.phase = Phase::Measure;
                    self.window = Window::default();
                } else {
                    self.phase = Phase::Hold { left: left - 1 };
                }
                None
            }
        }
    }
}

/// A watermark-keyed policy schedule for one table: which [`EpochPolicy`]
/// governs the slice starting at a given watermark.
///
/// Always non-empty (change 0 starts at watermark 0), with strictly
/// application-order pushes; [`at`](PolicySchedule::at) returns the last
/// change at or below the watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySchedule {
    /// `(from_watermark, policy)` pairs, ascending by watermark.
    changes: Vec<(u64, EpochPolicy)>,
}

impl Default for PolicySchedule {
    fn default() -> Self {
        PolicySchedule::fixed(EpochPolicy::default())
    }
}

impl PolicySchedule {
    /// A schedule that applies `policy` from watermark 0 forever.
    pub fn fixed(policy: EpochPolicy) -> PolicySchedule {
        PolicySchedule { changes: vec![(0, policy)] }
    }

    /// Appends a change effective for slices starting at `from` and
    /// beyond. A change at an already-scheduled watermark supersedes it.
    ///
    /// # Panics
    ///
    /// Panics if `from` precedes the last scheduled change — schedules are
    /// built in application order.
    pub fn push(&mut self, from: u64, policy: EpochPolicy) {
        let last = self.changes.last().expect("schedule is never empty").0;
        assert!(from >= last, "schedule pushes must be in watermark order ({from} < {last})");
        self.changes.push((from, policy));
    }

    /// The policy governing a slice that starts at watermark `wm`.
    pub fn at(&self, wm: u64) -> EpochPolicy {
        self.changes
            .iter()
            .rev()
            .find(|(from, _)| *from <= wm)
            .map(|(_, p)| *p)
            .expect("schedule has a change at watermark 0")
    }

    /// The first scheduled change strictly after watermark `wm`, if any —
    /// a slice starting at `wm` must not run past it.
    pub fn next_change_after(&self, wm: u64) -> Option<u64> {
        self.changes.iter().map(|&(from, _)| from).find(|&from| from > wm)
    }

    /// Number of scheduled changes (including the initial policy).
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// `false` — a schedule always has its initial change.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One recorded policy install: the decision plus each table's applied
/// watermark at install time (the exact slice boundary the change lands
/// on during replay).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Non-empty-epoch index the install followed.
    pub epoch: u64,
    /// The installed policy.
    pub policy: EpochPolicy,
    /// Applied watermark per table (id order) at install time.
    pub at: Vec<u64>,
}

/// A recorded run's policy installs, in order — enough to replay the run's
/// exact slice boundaries (and therefore its snapshots, bitwise) without
/// the controller.
pub type PolicyTrace = Vec<TraceEntry>;

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(applied: u64, busy_ns: u64, policy: EpochPolicy) -> MetricFrame {
        MetricFrame {
            epoch: 0,
            applied,
            offered: applied,
            busy_ns,
            queue_depth: 0,
            conflict_depth: 0.0,
            deep_frac: 0.0,
            p50_epoch_us: 0.0,
            p99_epoch_us: 0.0,
            instructions: 0,
            policy,
        }
    }

    fn cfg() -> TuneConfig {
        TuneConfig {
            quantum_ladder: vec![16, 128, 1024, 4096],
            thread_ladder: vec![1],
            variants: vec![ExecVariant::Invec],
            warmup_epochs: 1,
            measure_epochs: 2,
            hysteresis: 0.05,
            hold_epochs: 8,
            drift: 0.5,
        }
    }

    /// Drives `ctl` against a synthetic workload whose per-update cost is
    /// `cost(quantum)` ns; returns the final policy.
    fn climb(ctl: &mut Controller, epochs: usize, cost: impl Fn(usize) -> u64) -> EpochPolicy {
        let mut active = ctl.current();
        for _ in 0..epochs {
            let q = active.quantum as u64;
            let f = frame(q, q * cost(active.quantum), active);
            if let Some(p) = ctl.observe(&f) {
                active = p;
            }
        }
        active
    }

    #[test]
    fn policy_handle_swaps_atomically_and_counts_generations() {
        let handle = PolicyHandle::new(EpochPolicy::default());
        assert_eq!(handle.quantum(), 4096);
        assert_eq!(handle.generation(), 0);
        let next = EpochPolicy::new(ExecPolicy::with_threads(2), 256);
        assert_eq!(handle.install(next), 1);
        assert_eq!(handle.current(), next);
        assert_eq!(handle.exec().threads, 2);
        let clone = handle.clone();
        assert_eq!(clone.quantum(), 256, "clones share the handle");
    }

    #[test]
    fn invalid_configs_are_refused() {
        let p = EpochPolicy::default();
        let bad = |f: fn(&mut TuneConfig)| {
            let mut c = cfg();
            f(&mut c);
            Controller::new(c, p).is_err()
        };
        assert!(bad(|c| c.quantum_ladder.clear()));
        assert!(bad(|c| c.quantum_ladder = vec![128, 16]));
        assert!(bad(|c| c.thread_ladder = vec![0]));
        assert!(bad(|c| c.variants.clear()));
        assert!(bad(|c| c.measure_epochs = 0));
        assert!(bad(|c| c.hysteresis = -1.0));
        assert!(Controller::new(cfg(), p).is_ok());
    }

    #[test]
    fn climbs_to_the_cheapest_quantum_and_holds() {
        // Cost falls monotonically with the quantum: the peak is the top
        // rung, and the climb must reach it from the bottom.
        let start = EpochPolicy::new(ExecPolicy::default(), 16);
        let mut ctl = Controller::new(cfg(), start).unwrap();
        let last = climb(&mut ctl, 200, |q| (100_000 / q) as u64 + 10);
        assert_eq!(last.quantum, 4096, "trace: {:?}", ctl.trace());
        assert!(!ctl.trace().is_empty());
    }

    #[test]
    fn hysteresis_keeps_marginal_neighbors_out() {
        // 1024 and 4096 score within 2% of each other; with 5% hysteresis
        // the climb from below must stop at the first of the pair.
        let start = EpochPolicy::new(ExecPolicy::default(), 16);
        let mut ctl = Controller::new(cfg(), start).unwrap();
        let last = climb(&mut ctl, 300, |q| match q {
            16 => 1000,
            128 => 200,
            1024 => 100,
            _ => 99,
        });
        assert_eq!(last.quantum, 1024, "trace: {:?}", ctl.trace());
    }

    #[test]
    fn empty_epochs_are_ignored() {
        let start = EpochPolicy::new(ExecPolicy::default(), 16);
        let mut ctl = Controller::new(cfg(), start).unwrap();
        for _ in 0..50 {
            assert_eq!(ctl.observe(&frame(0, 1000, start)), None);
        }
        assert!(ctl.trace().is_empty(), "no throughput signal, no decisions");
    }

    #[test]
    fn drift_in_hold_triggers_a_reprobe() {
        let start = EpochPolicy::new(ExecPolicy::default(), 16);
        let mut ctl = Controller::new(cfg(), start).unwrap();
        // Converge on a flat landscape (nothing beats 16)...
        let mut active = climb(&mut ctl, 60, |_| 100);
        let before = ctl.trace().len();
        // ...then the workload shifts: everything gets 10x slower, which
        // must push the controller out of Hold into a fresh probe sweep.
        let mut probed = false;
        for _ in 0..60 {
            let q = active.quantum as u64;
            if let Some(p) = ctl.observe(&frame(q, q * 1000, active)) {
                active = p;
                probed = true;
            }
        }
        assert!(probed, "drift must re-open probing (trace {:?})", ctl.trace());
        assert!(ctl.trace().len() > before);
    }

    #[test]
    fn schedule_maps_watermarks_to_policies() {
        let p0 = EpochPolicy::new(ExecPolicy::default(), 16);
        let p1 = EpochPolicy::new(ExecPolicy::default(), 128);
        let mut s = PolicySchedule::fixed(p0);
        s.push(48, p1);
        assert_eq!(s.at(0), p0);
        assert_eq!(s.at(47), p0);
        assert_eq!(s.at(48), p1);
        assert_eq!(s.at(1 << 40), p1);
        assert_eq!(s.next_change_after(0), Some(48));
        assert_eq!(s.next_change_after(48), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "watermark order")]
    fn schedule_rejects_out_of_order_pushes() {
        let mut s = PolicySchedule::fixed(EpochPolicy::default());
        s.push(10, EpochPolicy::default());
        s.push(5, EpochPolicy::default());
    }
}
