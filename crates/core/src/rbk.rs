//! `reduce_by_key` comparators (§4.5, Table 2).
//!
//! Libraries such as Thrust and Boost.Compute offer `reduce_by_key`, whose
//! functionality overlaps with in-vector reduction: it reduces **consecutive
//! runs** of equal keys. The paper compares 1000 iterations of edge-column
//! reductions implemented with in-vector reduction against Thrust's
//! `reduce_by_key` and finds the in-vector version ~8.5× faster (and more
//! general: it supports an active-lane mask). This module provides faithful
//! Rust ports of both semantics so the comparison can be regenerated.

use invector_simd::SimdElement;

use crate::accumulate::invec_accumulate;
use crate::ops::ReduceOp;

/// Thrust-style `reduce_by_key`: reduces each maximal run of *consecutive*
/// equal keys to a single (key, value) pair, preserving run order.
///
/// Keys that reappear after a different key start a fresh run, exactly as in
/// Thrust — the input is typically pre-sorted when a per-key total is wanted.
///
/// # Example
///
/// ```
/// use invector_core::{ops::Sum, rbk::reduce_runs_by_key};
///
/// let (keys, sums) = reduce_runs_by_key::<i32, Sum>(&[1, 1, 2, 1], &[10, 20, 30, 40]);
/// assert_eq!(keys, vec![1, 2, 1]);
/// assert_eq!(sums, vec![30, 30, 40]);
/// ```
///
/// # Panics
///
/// Panics if `keys.len() != vals.len()`.
pub fn reduce_runs_by_key<T, Op>(keys: &[i32], vals: &[T]) -> (Vec<i32>, Vec<T>)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let mut out_keys = Vec::new();
    let mut out_vals: Vec<T> = Vec::new();
    for (&k, &v) in keys.iter().zip(vals) {
        match (out_keys.last(), out_vals.last_mut()) {
            (Some(&last), Some(acc)) if last == k => *acc = Op::combine(*acc, v),
            _ => {
                out_keys.push(k);
                out_vals.push(v);
            }
        }
    }
    (out_keys, out_vals)
}

/// Sort-then-reduce pipeline: the standard way to obtain per-key totals from
/// an *unsorted* stream with `reduce_by_key` — a stable sort by key followed
/// by [`reduce_runs_by_key`]. This is the full cost a library user pays,
/// and the fair comparator for Table 2's unsorted edge streams.
///
/// Returns (distinct keys in ascending order, per-key reductions).
///
/// # Panics
///
/// Panics if `keys.len() != vals.len()`.
pub fn sort_reduce_by_key<T, Op>(keys: &[i32], vals: &[T]) -> (Vec<i32>, Vec<T>)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let mut pairs: Vec<(i32, T)> = keys.iter().copied().zip(vals.iter().copied()).collect();
    pairs.sort_by_key(|&(k, _)| k);
    let sorted_keys: Vec<i32> = pairs.iter().map(|&(k, _)| k).collect();
    let sorted_vals: Vec<T> = pairs.iter().map(|&(_, v)| v).collect();
    reduce_runs_by_key::<T, Op>(&sorted_keys, &sorted_vals)
}

/// Dense per-key reduction via **in-vector reduction**: reduces `vals` by
/// `keys` directly into a dense array of `domain` slots (slot `k` holds the
/// reduction of all values with key `k`, or the identity if absent).
///
/// This is the in-vector side of the Table 2 comparison — no sorting, no
/// data movement, one pass.
///
/// # Panics
///
/// Panics if a key is negative or `>= domain`, or on length mismatch.
///
/// # Example
///
/// ```
/// use invector_core::{ops::Sum, rbk::invec_reduce_by_key};
///
/// let sums = invec_reduce_by_key::<i32, Sum>(&[2, 0, 2], &[5, 1, 7], 3);
/// assert_eq!(sums, vec![1, 0, 12]);
/// ```
pub fn invec_reduce_by_key<T, Op>(keys: &[i32], vals: &[T], domain: usize) -> Vec<T>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mut out = vec![Op::identity(); domain];
    invec_accumulate::<T, Op>(&mut out, keys, vals);
    out
}

/// Vectorized `reduce_by_key` over **sorted** keys: 16 pairs per step are
/// folded with in-vector reduction, and the surviving run heads are merged
/// across vector boundaries with a scalar carry — a SIMD segmented
/// reduction with the same output as [`reduce_runs_by_key`] on sorted
/// input.
///
/// # Panics
///
/// Panics on length mismatch, or (debug builds) if `keys` is not sorted.
///
/// # Example
///
/// ```
/// use invector_core::{ops::Sum, rbk::invec_sorted_reduce_by_key};
///
/// let keys = [0, 0, 1, 1, 1, 4];
/// let vals = [1i32, 2, 3, 4, 5, 6];
/// let (k, v) = invec_sorted_reduce_by_key::<i32, Sum>(&keys, &vals);
/// assert_eq!(k, vec![0, 1, 4]);
/// assert_eq!(v, vec![3, 12, 6]);
/// ```
pub fn invec_sorted_reduce_by_key<T, Op>(keys: &[i32], vals: &[T]) -> (Vec<i32>, Vec<T>)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    use invector_simd::{I32x16, SimdVec};

    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
    let mut out_keys: Vec<i32> = Vec::new();
    let mut out_vals: Vec<T> = Vec::new();
    let mut carry: Option<(i32, T)> = None;
    let mut j = 0;
    while j < keys.len() {
        let (vkey, active) = I32x16::load_partial(&keys[j..], i32::MIN);
        let (mut vval, _) = SimdVec::<T, 16>::load_partial(&vals[j..], Op::identity());
        let (safe, _) = crate::invec::reduce_alg1::<T, Op, 16>(active, vkey, &mut vval);
        // Safe lanes ascend with the sorted keys: merge them into the
        // run-carry stream.
        for lane in safe.iter_set() {
            let k = vkey.extract(lane);
            let v = vval.extract(lane);
            match carry.take() {
                Some((ck, cv)) if ck == k => carry = Some((k, Op::combine(cv, v))),
                Some((ck, cv)) => {
                    out_keys.push(ck);
                    out_vals.push(cv);
                    carry = Some((k, v));
                }
                None => carry = Some((k, v)),
            }
        }
        j += 16;
    }
    if let Some((ck, cv)) = carry {
        out_keys.push(ck);
        out_vals.push(cv);
    }
    (out_keys, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Min, Sum};
    use rand::{Rng, SeedableRng};

    #[test]
    fn runs_reduce_preserves_run_structure() {
        let keys = [3, 3, 3, 1, 1, 3];
        let vals = [1.0f32, 2.0, 3.0, 10.0, 20.0, 100.0];
        let (k, v) = reduce_runs_by_key::<f32, Sum>(&keys, &vals);
        assert_eq!(k, vec![3, 1, 3]);
        assert_eq!(v, vec![6.0, 30.0, 100.0]);
    }

    #[test]
    fn runs_reduce_empty_input() {
        let (k, v) = reduce_runs_by_key::<i32, Sum>(&[], &[]);
        assert!(k.is_empty() && v.is_empty());
    }

    #[test]
    fn runs_reduce_single_element() {
        let (k, v) = reduce_runs_by_key::<i32, Min>(&[5], &[9]);
        assert_eq!((k, v), (vec![5], vec![9]));
    }

    #[test]
    fn sorted_pipeline_groups_all_occurrences() {
        let keys = [2, 0, 2, 1, 0, 2];
        let vals = [1i32, 2, 3, 4, 5, 6];
        let (k, v) = sort_reduce_by_key::<i32, Sum>(&keys, &vals);
        assert_eq!(k, vec![0, 1, 2]);
        assert_eq!(v, vec![7, 4, 10]);
    }

    #[test]
    fn invec_rbk_matches_sort_pipeline_on_random_streams() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.gen_range(0..500);
            let domain = rng.gen_range(1..30);
            let keys: Vec<i32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-20..20)).collect();
            let dense = invec_reduce_by_key::<i32, Sum>(&keys, &vals, domain as usize);
            let (sk, sv) = sort_reduce_by_key::<i32, Sum>(&keys, &vals);
            for (key, total) in sk.iter().zip(&sv) {
                assert_eq!(dense[*key as usize], *total);
            }
            // Keys absent from the stream hold the identity.
            let present: std::collections::HashSet<i32> = sk.into_iter().collect();
            for k in 0..domain {
                if !present.contains(&k) {
                    assert_eq!(dense[k as usize], 0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = reduce_runs_by_key::<i32, Sum>(&[1, 2], &[1]);
    }

    #[test]
    fn vectorized_sorted_rbk_matches_scalar_runs() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(123);
        for _ in 0..40 {
            let n = rng.gen_range(0..400);
            let mut keys: Vec<i32> = (0..n).map(|_| rng.gen_range(0..25)).collect();
            keys.sort_unstable();
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-9..9)).collect();
            let expect = reduce_runs_by_key::<i32, Sum>(&keys, &vals);
            let got = invec_sorted_reduce_by_key::<i32, Sum>(&keys, &vals);
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn vectorized_sorted_rbk_handles_run_spanning_vector_boundary() {
        // One key spanning several 16-lane vectors must stay one run.
        let keys = vec![7i32; 50];
        let vals = vec![1i32; 50];
        let (k, v) = invec_sorted_reduce_by_key::<i32, Sum>(&keys, &vals);
        assert_eq!(k, vec![7]);
        assert_eq!(v, vec![50]);
    }

    #[test]
    fn vectorized_sorted_rbk_min_operator() {
        let keys = vec![0, 0, 0, 2, 2];
        let vals = vec![5i32, -1, 3, 9, 2];
        let (k, v) = invec_sorted_reduce_by_key::<i32, Min>(&keys, &vals);
        assert_eq!(k, vec![0, 2]);
        assert_eq!(v, vec![-1, 2]);
    }

    #[test]
    fn vectorized_sorted_rbk_empty() {
        let (k, v) = invec_sorted_reduce_by_key::<i32, Sum>(&[], &[]);
        assert!(k.is_empty() && v.is_empty());
    }
}
