//! `invector-core` — in-vector reduction: conflict-free SIMD vectorization
//! of associative irregular reductions.
//!
//! This crate implements the core contribution of *"Conflict-Free
//! Vectorization of Associative Irregular Applications with Recent SIMD
//! Architectural Advances"* (Jiang & Agrawal, CGO 2018): when an irregular
//! reduction (`target[idx[j]] op= vals[j]`) is vectorized, multiple SIMD
//! lanes may write the same location. Because the operator is associative,
//! the conflicting lanes can be **reduced inside the vector** first — after
//! which the surviving lanes hold distinct indices and scatter safely.
//!
//! * [`invec`] — Algorithms 1 and 2 of the paper plus the `invec_add` /
//!   `invec_min` / `invec_max` programming interface of §3.5.
//! * [`adaptive`] — the §3.4 policy choosing between the two algorithms.
//! * [`masking`] — the conflict-masking baseline (Figure 3) the paper
//!   compares against.
//! * [`accumulate`] — whole-stream drivers (serial / in-vector / adaptive).
//! * [`backend`] — backend dispatch: [`Backend`] is resolved once per run
//!   ([`backend::current`], or [`BackendChoice::resolve`] from a policy)
//!   and routes the hot loops onto the fused native
//!   AVX-512 drivers when the CPU has `avx512f`+`avx512cd`, falling back to
//!   the portable model otherwise — with bitwise-identical results either
//!   way. Every driver has a `_with(backend, …)` variant; the engine takes
//!   the choice through [`ExecPolicy::backend`](exec::ExecPolicy).
//! * [`exec`] — the execution engine: a persistent thread pool running any
//!   of the drivers across workers under an [`ExecPolicy`] (owner-computes
//!   or privatized partitioning) — the MIMD × SIMD composition the paper
//!   scopes out.
//! * [`rbk`] — `reduce_by_key` comparators for the Table 2 experiment.
//! * [`ops`] — the associative operators, [`stats`] — utilization and
//!   conflict-depth accounting.
//!
//! # Quick start
//!
//! ```
//! use invector_core::backend;
//! use invector_core::{invec_accumulate, invec_accumulate_with, ops::Sum};
//!
//! // Histogram 10 items into 3 bins, conflict-free.
//! let bins = [0, 1, 0, 2, 0, 1, 0, 0, 2, 0];
//! let weights = [1.0f32; 10];
//! let mut hist = vec![0.0f32; 3];
//! invec_accumulate::<f32, Sum>(&mut hist, &bins, &weights);
//! assert_eq!(hist, vec![6.0, 2.0, 2.0]);
//!
//! // Same stream on an explicit backend: `backend::current()` picks the
//! // native AVX-512 path when the CPU has one; results are bitwise equal.
//! let mut hist2 = vec![0.0f32; 3];
//! invec_accumulate_with::<f32, Sum>(backend::current(), &mut hist2, &bins, &weights);
//! assert_eq!(hist2, hist);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulate;
pub mod adaptive;
pub mod backend;
pub mod exec;
pub mod invec;
pub mod masking;
pub mod ops;
pub mod parallel;
pub mod rbk;
pub mod stats;
pub mod tune;

pub use accumulate::{
    adaptive_accumulate, adaptive_accumulate_n, adaptive_accumulate_with, invec_accumulate,
    invec_accumulate_n, invec_accumulate_with, native_invec_accumulate_f32, serial_accumulate,
    InvecStats,
};
pub use adaptive::AdaptiveReducer;
pub use backend::{Backend, BackendChoice};
pub use exec::{
    execute, execute_epoch, parallel_chunks, pool_initializations, EpochScratch, ExecPlan,
    ExecPolicy, ExecReport, ExecVariant, Partition, TaskCtx, TaskItems, WorkerReport,
};
pub use invec::{
    invec_add, invec_max, invec_min, reduce_alg1, reduce_alg1_arr, reduce_alg1_arr_with,
    reduce_alg1_with, reduce_alg2, reduce_alg2_arr, reduce_alg2_with, AuxArray, AuxArrays,
};
pub use masking::masked_accumulate;
pub use ops::ReduceOp;
pub use parallel::parallel_invec_accumulate;
pub use tune::{
    Controller, Decision, EpochPolicy, MetricFrame, PolicyHandle, PolicySchedule, PolicyTrace,
    TraceEntry, TuneConfig,
};
