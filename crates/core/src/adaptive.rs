//! Adaptive selection between in-vector reduction Algorithms 1 and 2 (§3.4).
//!
//! Algorithm 1 costs about `2 + 8·D1` instructions per vector, Algorithm 2
//! about `7 + 8·D2` (plus an auxiliary array). The paper's framework samples
//! the average number of distinct conflicting lanes (`D1`) over the first
//! few vectors of an application and "simply changes the invocation to
//! Algorithm 2 when D1 is greater than 1". [`AdaptiveReducer`] implements
//! exactly that policy.

use invector_simd::{Mask, SimdElement, SimdVec};

use crate::invec::{reduce_alg1_with, reduce_alg2_with, AuxArray};
use crate::ops::ReduceOp;
use crate::stats::DepthHistogram;

/// Which in-vector reduction implementation an [`AdaptiveReducer`] is using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Still sampling D1 (Algorithm 1 is used meanwhile).
    Sampling,
    /// Committed to Algorithm 1.
    Alg1,
    /// Committed to Algorithm 2 (auxiliary-array variant).
    Alg2,
}

/// Default number of vector invocations sampled before committing.
pub const DEFAULT_WARMUP: u32 = 64;

/// The paper's switch threshold: use Algorithm 2 when average D1 exceeds 1.
pub const D1_THRESHOLD: f64 = 1.0;

/// An in-vector reducer that picks Algorithm 1 or 2 based on the observed
/// conflict depth of the workload.
///
/// Bind one reducer per reduction target; call [`reduce`](Self::reduce) per
/// vector of (index, data) lanes and [`finish`](Self::finish) once the
/// stream ends (this folds the auxiliary array into the target when
/// Algorithm 2 was chosen — forgetting it loses updates, so `finish` is
/// also run by `Drop` in debug builds via an assertion).
///
/// # Example
///
/// ```
/// use invector_core::{adaptive::AdaptiveReducer, ops::Sum};
/// use invector_simd::{F32x16, I32x16, Mask16};
///
/// let mut target = vec![0.0f32; 8];
/// let mut reducer = AdaptiveReducer::<f32, Sum>::new(target.len());
/// let idx = I32x16::from_array(std::array::from_fn(|i| (i % 8) as i32));
/// let mut data = F32x16::splat(1.0);
/// let safe = reducer.reduce(Mask16::all(), idx, &mut data);
/// let old = F32x16::zero().mask_gather(safe, &target, idx);
/// (old + data).mask_scatter(safe, &mut target, idx);
/// reducer.finish(&mut target);
/// assert_eq!(target, vec![2.0; 8]);
/// ```
#[derive(Debug)]
pub struct AdaptiveReducer<T, Op>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    aux: AuxArray<T, Op>,
    warmup_left: u32,
    decided: Option<bool>, // Some(true) => Algorithm 2
    depth: DepthHistogram,
    pending_merge: bool,
}

impl<T, Op> AdaptiveReducer<T, Op>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    /// Creates a reducer for a target array of `target_len` elements with
    /// the default warm-up window.
    pub fn new(target_len: usize) -> Self {
        Self::with_warmup(target_len, DEFAULT_WARMUP)
    }

    /// Creates a reducer with an explicit warm-up window of `warmup` vector
    /// invocations.
    pub fn with_warmup(target_len: usize, warmup: u32) -> Self {
        AdaptiveReducer {
            aux: AuxArray::new(target_len),
            warmup_left: warmup,
            decided: None,
            depth: DepthHistogram::new(),
            pending_merge: false,
        }
    }

    /// The algorithm currently in force.
    pub fn algorithm(&self) -> Algorithm {
        match self.decided {
            None => Algorithm::Sampling,
            Some(false) => Algorithm::Alg1,
            Some(true) => Algorithm::Alg2,
        }
    }

    /// Observed conflict-depth histogram (D1 during sampling/Alg1, D2 after
    /// switching to Alg2).
    pub fn depth_stats(&self) -> &DepthHistogram {
        &self.depth
    }

    /// Performs one in-vector reduction; see
    /// [`reduce_alg1`] for the meaning of the returned mask. The caller scatters through the returned mask and must
    /// eventually call [`finish`](Self::finish).
    pub fn reduce<const N: usize>(
        &mut self,
        active: Mask<N>,
        vindex: SimdVec<i32, N>,
        vdata: &mut SimdVec<T, N>,
    ) -> Mask<N> {
        self.reduce_with(crate::backend::Backend::Portable, active, vindex, vdata)
    }

    /// Backend-dispatched [`reduce`](Self::reduce): per-vector folds run
    /// through `reduce_alg1_with` / `reduce_alg2_with`, so the selected
    /// backend's realization executes while the sampling, the decision, and
    /// the recorded depths stay identical across backends (the native paths
    /// report the same D1/D2 as the portable model).
    pub fn reduce_with<const N: usize>(
        &mut self,
        backend: crate::backend::Backend,
        active: Mask<N>,
        vindex: SimdVec<i32, N>,
        vdata: &mut SimdVec<T, N>,
    ) -> Mask<N> {
        let use_alg2 = match self.decided {
            Some(choice) => choice,
            None => {
                if self.warmup_left == 0 {
                    let choice = self.depth.mean() > D1_THRESHOLD;
                    self.decided = Some(choice);
                    choice
                } else {
                    self.warmup_left -= 1;
                    false
                }
            }
        };
        if use_alg2 {
            let (safe, d2) =
                reduce_alg2_with::<T, Op, N>(backend, active, vindex, vdata, &mut self.aux);
            self.depth.record(d2);
            self.pending_merge = true;
            safe
        } else {
            let (safe, d1) = reduce_alg1_with::<T, Op, N>(backend, active, vindex, vdata);
            self.depth.record(d1);
            safe
        }
    }

    /// Folds any auxiliary-array contents into `target`. Must be called when
    /// the input stream is exhausted (cheap no-op when Algorithm 1 ran).
    ///
    /// # Panics
    ///
    /// Panics if `target.len()` differs from the length given at
    /// construction.
    pub fn finish(&mut self, target: &mut [T]) {
        self.aux.merge_into(target);
        self.pending_merge = false;
    }

    /// `true` if updates are sitting in the auxiliary array awaiting
    /// [`finish`](Self::finish).
    pub fn has_pending_merge(&self) -> bool {
        self.pending_merge && self.aux.touched() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::Sum;
    use invector_simd::{F32x16, I32x16, Mask16};

    fn drive(reducer: &mut AdaptiveReducer<f32, Sum>, target: &mut [f32], idx: [i32; 16]) {
        let vidx = I32x16::from_array(idx);
        let mut data = F32x16::splat(1.0);
        let safe = reducer.reduce(Mask16::all(), vidx, &mut data);
        let old = F32x16::zero().mask_gather(safe, target, vidx);
        (old + data).mask_scatter(safe, target, vidx);
    }

    #[test]
    fn stays_on_alg1_for_conflict_free_streams() {
        let mut target = vec![0.0f32; 16];
        let mut r = AdaptiveReducer::<f32, Sum>::with_warmup(16, 4);
        let idx: [i32; 16] = std::array::from_fn(|i| i as i32);
        for _ in 0..10 {
            drive(&mut r, &mut target, idx);
        }
        r.finish(&mut target);
        assert_eq!(r.algorithm(), Algorithm::Alg1);
        assert_eq!(target, vec![10.0; 16]);
    }

    #[test]
    fn switches_to_alg2_under_heavy_conflicts() {
        let mut target = vec![0.0f32; 8];
        let mut r = AdaptiveReducer::<f32, Sum>::with_warmup(8, 4);
        // Four distinct conflicting groups per vector: D1 = 4 > 1.
        let idx: [i32; 16] = std::array::from_fn(|i| (i % 4) as i32);
        for _ in 0..10 {
            drive(&mut r, &mut target, idx);
        }
        assert_eq!(r.algorithm(), Algorithm::Alg2);
        assert!(r.has_pending_merge());
        r.finish(&mut target);
        assert!(!r.has_pending_merge());
        // 10 vectors × 16 lanes of 1.0 over 4 indices = 40 each.
        assert_eq!(&target[..4], &[40.0, 40.0, 40.0, 40.0]);
        assert_eq!(&target[4..], &[0.0; 4]);
    }

    #[test]
    fn sampling_state_reported_during_warmup() {
        let mut r = AdaptiveReducer::<f32, Sum>::with_warmup(4, 8);
        assert_eq!(r.algorithm(), Algorithm::Sampling);
        let mut target = vec![0.0f32; 4];
        drive(&mut r, &mut target, std::array::from_fn(|i| (i % 4) as i32));
        assert_eq!(r.algorithm(), Algorithm::Sampling);
        assert_eq!(r.depth_stats().invocations(), 1);
    }

    #[test]
    fn result_identical_regardless_of_chosen_algorithm() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        for warmup in [0u32, 2, 100] {
            let mut target = vec![0.0f32; 10];
            let mut reference = vec![0.0f32; 10];
            let mut r = AdaptiveReducer::<f32, Sum>::with_warmup(10, warmup);
            for _ in 0..30 {
                let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..10));
                for &i in &idx {
                    reference[i as usize] += 1.0;
                }
                drive(&mut r, &mut target, idx);
            }
            r.finish(&mut target);
            assert_eq!(target, reference, "warmup={warmup}");
        }
    }

    #[test]
    fn zero_warmup_decides_immediately_from_empty_stats() {
        // With no samples, mean D1 = 0 <= 1, so Algorithm 1 is chosen.
        let mut r = AdaptiveReducer::<f32, Sum>::with_warmup(4, 0);
        let mut target = vec![0.0f32; 4];
        drive(&mut r, &mut target, std::array::from_fn(|i| (i % 4) as i32));
        assert_eq!(r.algorithm(), Algorithm::Alg1);
    }
}
