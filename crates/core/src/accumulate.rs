//! Whole-stream accumulation drivers.
//!
//! These are the highest-level entry points of the crate: given parallel
//! slices of reduction indices and values, fold every value into
//! `target[idx]` with a chosen conflict-resolution strategy. All drivers
//! compute exactly the same result as [`serial_accumulate`]; they differ in
//! how lane conflicts are handled, which is what the paper's evaluation
//! measures.

use invector_simd::{Avx2, Avx512, Isa, Neon, SimdElement, SimdVec};

use crate::adaptive::AdaptiveReducer;
use crate::backend::Backend;
use crate::invec::reduce_alg1_with;
use crate::ops::ReduceOp;
use crate::stats::DepthHistogram;

/// Statistics of one in-vector accumulation pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvecStats {
    /// Vector iterations executed (`⌈n / LANES⌉` at the backend's width).
    pub vectors: u64,
    /// Conflict-depth histogram (D1 per vector).
    pub depth: DepthHistogram,
}

impl InvecStats {
    /// Folds another pass's statistics into this one (used by the execution
    /// engine to merge per-worker reports).
    pub fn merge(&mut self, other: &InvecStats) {
        self.vectors += other.vectors;
        self.depth.merge(&other.depth);
    }
}

/// Scalar reference: `target[idx[j]] = Op::combine(target[idx[j]], vals[j])`
/// for every `j` in order.
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds.
pub fn serial_accumulate<T, Op>(target: &mut [T], idx: &[i32], vals: &[T])
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    for (&i, &v) in idx.iter().zip(vals) {
        let slot = &mut target[i as usize];
        *slot = Op::combine(*slot, v);
    }
}

/// Accumulates with **in-vector reduction** (Algorithm 1): each 16-item
/// vector is conflict-resolved internally, then committed with one masked
/// gather-combine-scatter. SIMD utilization of the compute part is 100% by
/// construction (§3.1).
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds for
/// `target`.
///
/// # Example
///
/// ```
/// use invector_core::{accumulate::invec_accumulate, ops::Sum};
///
/// let mut hist = vec![0.0f32; 3];
/// let stats = invec_accumulate::<f32, Sum>(&mut hist, &[0, 0, 2, 0], &[1.0; 4]);
/// assert_eq!(hist, vec![3.0, 0.0, 1.0]);
/// assert_eq!(stats.vectors, 1);
/// ```
pub fn invec_accumulate<T, Op>(target: &mut [T], idx: &[i32], vals: &[T]) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    invec_accumulate_n::<T, Op, 16>(target, idx, vals)
}

/// Width-generic portable [`invec_accumulate`]: the same driver at `N`
/// lanes per vector. This is the parity reference for the narrower native
/// ISAs — AVX2 results (and stats) equal `invec_accumulate_n::<_, _, 8>`,
/// NEON equals `N = 4`.
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds for
/// `target`.
pub fn invec_accumulate_n<T, Op, const N: usize>(
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    invec_loop_with::<T, Op, N>(Backend::Portable, target, idx, vals)
}

/// The portable per-vector loop at `N` lanes, with the in-vector reduction
/// itself dispatched through [`reduce_alg1_with`] (so `Backend::Avx512`
/// still accelerates unsupported fused combinations at `N = 16`).
fn invec_loop_with<T, Op, const N: usize>(
    backend: Backend,
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mut stats = InvecStats::default();
    let mut j = 0;
    while j < idx.len() {
        let (vidx, active) = SimdVec::<i32, N>::load_partial(&idx[j..], 0);
        let (mut vval, _) = SimdVec::<T, N>::load_partial(&vals[j..], Op::identity());
        let (safe, d1) = reduce_alg1_with::<T, Op, N>(backend, active, vidx, &mut vval);
        let old = SimdVec::<T, N>::zero().mask_gather(safe, target, vidx);
        let new = Op::combine_vec(old, vval);
        new.mask_scatter(safe, target, vidx);
        stats.vectors += 1;
        stats.depth.record(d1);
        j += N;
    }
    stats
}

/// Backend-dispatched [`invec_accumulate`].
///
/// With a native backend and a supported `(T, Op)` — sum/min/max over
/// `f32` or `i32`, i.e. every kernel in this workspace — the **whole
/// stream** runs inside one fused `target_feature` function (the
/// [`Isa::accumulate_add_f32`] family): gather, conflict detection,
/// in-vector reduce, and scatter never leave vector registers, and tails
/// run as masked vectors. Unsupported combinations fall back to the
/// portable per-vector loop **at the backend's lane width**, so statistics
/// stay width-consistent. Results and depth statistics are bitwise
/// identical to the portable driver at the same width
/// ([`invec_accumulate_n`]).
///
/// Each call charges the backend-labeled counter series
/// (`invector_simd::count::bump_backend`): fused native runs with the
/// modeled `vectors · MODEL_COST_PER_VECTOR + 8 · merges` cost, portable
/// and fallback runs with their measured emulated cost.
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds for
/// `target`.
pub fn invec_accumulate_with<T, Op>(
    backend: Backend,
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    match backend {
        Backend::Avx512 => {
            if let Some(stats) = fused_accumulate::<Avx512, T, Op>(target, idx, vals) {
                return stats;
            }
        }
        Backend::Avx2 => {
            if let Some(stats) = fused_accumulate::<Avx2, T, Op>(target, idx, vals) {
                return stats;
            }
        }
        Backend::Neon => {
            if let Some(stats) = fused_accumulate::<Neon, T, Op>(target, idx, vals) {
                return stats;
            }
        }
        Backend::Portable => {}
    }
    let (stats, cost) = invector_simd::count::with(|| match backend.lanes() {
        4 => invec_loop_with::<T, Op, 4>(backend, target, idx, vals),
        8 => invec_loop_with::<T, Op, 8>(backend, target, idx, vals),
        _ => invec_loop_with::<T, Op, 16>(backend, target, idx, vals),
    });
    invector_simd::count::bump_backend(backend.tag(), cost, stats.vectors);
    stats
}

/// Runs `I`'s fused driver for `(T, Op)` when one exists. The drivers
/// bounds-check indices themselves (one masked unsigned compare per
/// vector), panicking like the portable model, so no scalar prevalidation
/// pass runs here. Charges the backend's counter series with the modeled
/// instruction cost. Returns `None` when the ISA is unavailable or the
/// combination has no fused realization.
fn fused_accumulate<I, T, Op>(target: &mut [T], idx: &[i32], vals: &[T]) -> Option<InvecStats>
where
    I: Isa,
    T: SimdElement,
    Op: ReduceOp<T>,
{
    use std::any::TypeId;
    if !I::available() || target.len() > i32::MAX as usize {
        return None;
    }
    let t = TypeId::of::<T>();
    let op = TypeId::of::<Op>();
    macro_rules! dispatch {
        ($ty:ty, $opty:ty, $f:ident) => {
            if t == TypeId::of::<$ty>() && op == TypeId::of::<$opty>() {
                // SAFETY: T == $ty per the TypeId check, so the slice
                // layouts are identical.
                let target: &mut [$ty] =
                    unsafe { &mut *(std::ptr::from_mut::<[T]>(&mut *target) as *mut [$ty]) };
                let vals: &[$ty] = unsafe { &*(std::ptr::from_ref::<[T]>(vals) as *const [$ty]) };
                let mut buckets = [0u64; 17];
                // SAFETY: availability checked; lengths equal (asserted by
                // the caller); target length fits i32; the driver
                // bounds-checks every index itself.
                let vectors = unsafe { I::$f(target, idx, vals, &mut buckets) };
                let merges: u64 = buckets.iter().enumerate().map(|(d, &c)| d as u64 * c).sum();
                invector_simd::count::bump_backend(
                    I::TAG,
                    vectors * I::MODEL_COST_PER_VECTOR + 8 * merges,
                    vectors,
                );
                let mut depth = DepthHistogram::new();
                depth.absorb_buckets(&buckets);
                return Some(InvecStats { vectors, depth });
            }
        };
    }
    dispatch!(f32, crate::ops::Sum, accumulate_add_f32);
    dispatch!(f32, crate::ops::Min, accumulate_min_f32);
    dispatch!(f32, crate::ops::Max, accumulate_max_f32);
    dispatch!(i32, crate::ops::Sum, accumulate_add_i32);
    dispatch!(i32, crate::ops::Min, accumulate_min_i32);
    dispatch!(i32, crate::ops::Max, accumulate_max_i32);
    None
}

/// Accumulates with the **adaptive** in-vector reducer: Algorithm 1 during
/// warm-up, then Algorithm 1 or 2 per the observed conflict depth (§3.4).
/// The auxiliary array (if Algorithm 2 is selected) is merged before
/// returning.
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds for
/// `target`.
pub fn adaptive_accumulate<T, Op>(target: &mut [T], idx: &[i32], vals: &[T]) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    adaptive_accumulate_n::<T, Op, 16>(target, idx, vals)
}

/// Width-generic portable [`adaptive_accumulate`] at `N` lanes per vector —
/// the parity reference for the adaptive path on the narrower native ISAs
/// (the warm-up window counts *vectors*, so the decision point depends on
/// the lane width).
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds for
/// `target`.
pub fn adaptive_accumulate_n<T, Op, const N: usize>(
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    adaptive_loop_with::<T, Op, N>(Backend::Portable, target, idx, vals)
}

/// The adaptive per-vector loop at `N` lanes; see
/// [`adaptive_accumulate_with`].
fn adaptive_loop_with<T, Op, const N: usize>(
    backend: Backend,
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mut reducer = AdaptiveReducer::<T, Op>::new(target.len());
    let mut stats = InvecStats::default();
    let mut j = 0;
    while j < idx.len() {
        let (vidx, active) = SimdVec::<i32, N>::load_partial(&idx[j..], 0);
        let (mut vval, _) = SimdVec::<T, N>::load_partial(&vals[j..], Op::identity());
        let safe = reducer.reduce_with(backend, active, vidx, &mut vval);
        let old = SimdVec::<T, N>::zero().mask_gather(safe, target, vidx);
        let new = Op::combine_vec(old, vval);
        new.mask_scatter(safe, target, vidx);
        stats.vectors += 1;
        j += N;
    }
    stats.depth.merge(reducer.depth_stats());
    reducer.finish(target);
    stats
}

/// Backend-dispatched [`adaptive_accumulate`]: the per-vector loop runs at
/// the backend's lane width, so the warm-up, the Algorithm 1/2 decision,
/// and the depth statistics equal the portable model at that width
/// ([`adaptive_accumulate_n`]); each per-vector fold runs through the
/// selected backend's Algorithm 1 or 2 realization (accelerated on
/// AVX-512; portable on AVX2 / NEON, whose hardware paths cover the fused
/// non-adaptive drivers). The run's measured emulated cost is charged to
/// the backend's counter series.
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or an index is out of bounds for
/// `target`.
pub fn adaptive_accumulate_with<T, Op>(
    backend: Backend,
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    let (stats, cost) = invector_simd::count::with(|| match backend.lanes() {
        4 => adaptive_loop_with::<T, Op, 4>(backend, target, idx, vals),
        8 => adaptive_loop_with::<T, Op, 8>(backend, target, idx, vals),
        _ => adaptive_loop_with::<T, Op, 16>(backend, target, idx, vals),
    });
    invector_simd::count::bump_backend(backend.tag(), cost, stats.vectors);
    stats
}

/// Whole-stream f32 summation on the **native AVX-512 path**: the complete
/// per-vector pipeline (conflict detection, in-vector reduction,
/// conflict-free gather-add-scatter) executes as real AVX-512 instructions
/// — no emulation, no instruction accounting. This is the code path whose
/// wall-clock time is honestly comparable against scalar Rust, i.e. the
/// deployment form of the paper's technique.
///
/// Returns `false` (leaving `target` untouched) when the host lacks
/// `avx512f`/`avx512cd`; callers fall back to [`invec_accumulate`].
///
/// # Panics
///
/// Panics if `idx.len() != vals.len()` or any index is out of bounds for
/// `target`.
///
/// # Example
///
/// ```
/// use invector_core::accumulate::{invec_accumulate, native_invec_accumulate_f32};
/// use invector_core::ops::Sum;
///
/// let idx = [0, 2, 0, 1];
/// let vals = [1.0f32, 2.0, 3.0, 4.0];
/// let mut fast = vec![0.0f32; 3];
/// if !native_invec_accumulate_f32(&mut fast, &idx, &vals) {
///     invec_accumulate::<f32, Sum>(&mut fast, &idx, &vals);
/// }
/// assert_eq!(fast, vec![4.0, 4.0, 2.0]);
/// ```
pub fn native_invec_accumulate_f32(target: &mut [f32], idx: &[i32], vals: &[f32]) -> bool {
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    if !invector_simd::native::available() || target.len() > i32::MAX as usize {
        return false;
    }
    // Off x86_64 `available()` is a compile-time false, so the native call
    // below only exists where the native module does.
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: availability checked above; lengths equal; target length
        // fits i32; the driver bounds-checks every index itself (one masked
        // unsigned compare per vector), panicking like the portable model.
        // The whole stream runs inside one target_feature function so the
        // hot loop stays in registers.
        let mut depth = [0u64; 17];
        unsafe {
            invector_simd::native::accumulate_add_f32(target, idx, vals, &mut depth);
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    unreachable!("native availability is compile-time false off x86_64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Max, Min, Sum};
    use rand::{Rng, SeedableRng};

    #[test]
    fn invec_matches_serial_exact_integers() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        for _ in 0..40 {
            let n = rng.gen_range(0..300);
            let domain = rng.gen_range(1..40);
            let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-9..9)).collect();
            let mut a = vec![0i32; domain as usize];
            let mut b = a.clone();
            serial_accumulate::<i32, Sum>(&mut a, &idx, &vals);
            invec_accumulate::<i32, Sum>(&mut b, &idx, &vals);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn adaptive_matches_serial_exact_integers() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        for _ in 0..40 {
            let n = rng.gen_range(0..2000);
            let domain = rng.gen_range(1..8); // high conflict density
            let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-9..9)).collect();
            let mut a = vec![0i32; domain as usize];
            let mut b = a.clone();
            serial_accumulate::<i32, Sum>(&mut a, &idx, &vals);
            adaptive_accumulate::<i32, Sum>(&mut b, &idx, &vals);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn invec_min_max_match_serial_exactly_for_floats() {
        // min/max are exact for floats (no reassociation error).
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let n = 500;
        let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..13)).collect();
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let mut a = vec![f32::INFINITY; 13];
        let mut b = a.clone();
        serial_accumulate::<f32, Min>(&mut a, &idx, &vals);
        invec_accumulate::<f32, Min>(&mut b, &idx, &vals);
        assert_eq!(a, b);

        let mut a = vec![f32::NEG_INFINITY; 13];
        let mut b = a.clone();
        serial_accumulate::<f32, Max>(&mut a, &idx, &vals);
        invec_accumulate::<f32, Max>(&mut b, &idx, &vals);
        assert_eq!(a, b);
    }

    #[test]
    fn float_sums_match_within_reassociation_tolerance() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let n = 1000;
        let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..7)).collect();
        let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut a = vec![0.0f32; 7];
        let mut b = a.clone();
        serial_accumulate::<f32, Sum>(&mut a, &idx, &vals);
        invec_accumulate::<f32, Sum>(&mut b, &idx, &vals);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut target = vec![3i32; 4];
        let stats = invec_accumulate::<i32, Sum>(&mut target, &[], &[]);
        assert_eq!(stats.vectors, 0);
        assert_eq!(target, vec![3; 4]);
    }

    #[test]
    fn tail_shorter_than_vector_width() {
        let mut target = vec![0i32; 2];
        invec_accumulate::<i32, Sum>(&mut target, &[1, 1, 1, 0, 1], &[1, 2, 3, 4, 5]);
        assert_eq!(target, vec![4, 11]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_rejected() {
        let mut target = vec![0i32; 2];
        let _ = invec_accumulate::<i32, Sum>(&mut target, &[0, 1], &[1]);
    }

    #[test]
    fn native_path_matches_serial_on_integer_valued_floats() {
        if !invector_simd::native::available() {
            eprintln!("skipping: AVX-512 not available");
            return;
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(91);
        for _ in 0..50 {
            let n = rng.gen_range(0..500);
            let domain = rng.gen_range(1..30);
            let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..domain)).collect();
            // Small integers: exact f32 addition in any order.
            let vals: Vec<f32> = (0..n).map(|_| rng.gen_range(-32..32) as f32).collect();
            let mut expect = vec![0.0f32; domain as usize];
            serial_accumulate::<f32, Sum>(&mut expect, &idx, &vals);
            let mut got = vec![0.0f32; domain as usize];
            assert!(native_invec_accumulate_f32(&mut got, &idx, &vals));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn native_path_accumulates_into_existing_contents() {
        if !invector_simd::native::available() {
            eprintln!("skipping: AVX-512 not available");
            return;
        }
        let mut target = vec![10.0f32, 20.0];
        assert!(native_invec_accumulate_f32(&mut target, &[1, 1, 0], &[1.0, 2.0, 3.0]));
        assert_eq!(target, vec![13.0, 23.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn native_path_rejects_bad_indices() {
        if !invector_simd::native::available() {
            panic!("index 9 out of bounds for target of length 2"); // keep expectation
        }
        let mut target = vec![0.0f32; 2];
        let _ = native_invec_accumulate_f32(&mut target, &[9], &[1.0]);
    }

    #[test]
    fn depth_stats_reflect_conflicts() {
        let mut target = vec![0i32; 1];
        let idx = vec![0i32; 32]; // every vector fully conflicted: D1 = 1
        let vals = vec![1i32; 32];
        let stats = invec_accumulate::<i32, Sum>(&mut target, &idx, &vals);
        assert_eq!(stats.vectors, 2);
        assert_eq!(stats.depth.mean(), 1.0);
        assert_eq!(target[0], 32);
    }
}
