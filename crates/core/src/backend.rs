//! Backend selection: portable software model vs. the native SIMD ISAs.
//!
//! Every kernel's hot loop runs against one resolved [`Backend`]:
//!
//! * [`Backend::Portable`] — the scalar software model in
//!   `invector-simd`, which defines the semantics and (with the `count`
//!   feature) charges the paper's instruction model.
//! * [`Backend::Avx512`] — real `vpconflictd` / gather / scatter paths,
//!   16 lanes, bitwise-identical to the portable model at width 16.
//! * [`Backend::Avx2`] — 8 lanes, conflict detection emulated with a
//!   broadcast/compare sweep (no `vpconflictd`), bitwise-identical to the
//!   portable model at width 8.
//! * [`Backend::Neon`] — 4 lanes on aarch64, bitwise-identical to the
//!   portable model at width 4.
//!
//! Selection is resolved **once per run**, not per vector: callers hold a
//! [`BackendChoice`] (usually inside an `ExecPolicy`), call
//! [`BackendChoice::resolve`] at the top of the kernel, and thread the
//! resulting [`Backend`] through the hot loop. Code paths without a policy
//! use the process-wide [`current`] default, which honors the
//! `INVECTOR_BACKEND` environment variable (`auto` / `portable` / `native`
//! / `avx512` / `avx2` / `neon`) and is detected once.

use std::sync::OnceLock;

use invector_simd::{Avx2, Avx512, Isa, Neon};

/// A resolved backend: which implementation the hot loop actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The portable software model (always available, any lane width).
    Portable,
    /// Real AVX-512 (`avx512f` + `avx512cd`) instructions, 16 lanes.
    Avx512,
    /// Real AVX2 instructions, 8 lanes, emulated conflict detection.
    Avx2,
    /// aarch64 NEON instructions, 4 lanes, emulated conflict detection.
    Neon,
}

impl Backend {
    /// Every backend, native ISAs in preference order after portable.
    pub const ALL: [Backend; 4] =
        [Backend::Portable, Backend::Avx512, Backend::Avx2, Backend::Neon];

    /// `true` for any hardware ISA (everything but [`Backend::Portable`]).
    #[inline]
    #[must_use]
    pub fn is_native(self) -> bool {
        self != Backend::Portable
    }

    /// Stable lowercase name, for logs and benchmark output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Portable => "portable",
            Backend::Avx512 => Avx512::NAME,
            Backend::Avx2 => Avx2::NAME,
            Backend::Neon => Neon::NAME,
        }
    }

    /// 32-bit lanes per vector on this backend's fused path. The portable
    /// model reports the paper's 16 (it runs at any width; 16 is what the
    /// evaluation and the crate's aliases are built around).
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            Backend::Portable => 16,
            Backend::Avx512 => Avx512::LANES,
            Backend::Avx2 => Avx2::LANES,
            Backend::Neon => Neon::LANES,
        }
    }

    /// Index into `invector_simd::count::BACKEND_NAMES` for the
    /// backend-labeled instruction/vector counter series.
    #[must_use]
    pub fn tag(self) -> usize {
        match self {
            Backend::Portable => invector_simd::count::tag::PORTABLE,
            Backend::Avx512 => Avx512::TAG,
            Backend::Avx2 => Avx2::TAG,
            Backend::Neon => Neon::TAG,
        }
    }

    /// Does the running CPU support this backend? Always `true` for
    /// [`Backend::Portable`].
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            Backend::Portable => true,
            Backend::Avx512 => Avx512::available(),
            Backend::Avx2 => Avx2::available(),
            Backend::Neon => Neon::available(),
        }
    }

    /// The CPU features this backend needs, for diagnostics.
    fn required_features(self) -> &'static str {
        match self {
            Backend::Portable => "none",
            Backend::Avx512 => "x86_64 avx512f + avx512cd",
            Backend::Avx2 => "x86_64 avx2",
            Backend::Neon => "aarch64 NEON",
        }
    }
}

/// A backend *request*, resolved against CPU capabilities at run start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Use the best available native ISA (AVX-512 over AVX2 over NEON),
    /// falling back to [`Backend::Portable`]. The default.
    #[default]
    Auto,
    /// Always use the portable software model.
    Portable,
    /// Require *some* native ISA: resolves like [`BackendChoice::Auto`]
    /// but panics instead of falling back to the portable model.
    ///
    /// Failing at the dispatch layer (with a message naming the missing
    /// features) beats faulting inside an `unsafe fn`.
    Native,
    /// Require the 16-lane AVX-512 backend.
    Avx512,
    /// Require the 8-lane AVX2 backend.
    Avx2,
    /// Require the 4-lane NEON backend.
    Neon,
}

impl BackendChoice {
    /// Every accepted [`BackendChoice::parse`] spelling, in display order.
    pub const NAMES: [&'static str; 6] = ["auto", "portable", "native", "avx512", "avx2", "neon"];

    /// The best native backend the running CPU supports, if any.
    fn best_native() -> Option<Backend> {
        [Backend::Avx512, Backend::Avx2, Backend::Neon].into_iter().find(|b| b.available())
    }

    /// Resolves the request against the running CPU.
    ///
    /// # Panics
    ///
    /// Panics if a specific ISA is requested that the host does not
    /// support, or if [`BackendChoice::Native`] is requested on a host
    /// with no native backend at all. The message names the missing CPU
    /// features.
    #[must_use]
    pub fn resolve(self) -> Backend {
        let require = |b: Backend| {
            assert!(
                b.available(),
                "{} backend requested but this host lacks {}; use `auto` to \
                 fall back to the portable model, or unset INVECTOR_BACKEND",
                b.name(),
                b.required_features(),
            );
            b
        };
        match self {
            BackendChoice::Portable => Backend::Portable,
            BackendChoice::Auto => Self::best_native().unwrap_or(Backend::Portable),
            BackendChoice::Native => Self::best_native().unwrap_or_else(|| {
                panic!(
                    "native backend requested but this host supports no native \
                     ISA (needs avx512f + avx512cd, avx2, or aarch64 NEON); use \
                     `auto` to fall back to the portable model, or unset \
                     INVECTOR_BACKEND"
                )
            }),
            BackendChoice::Avx512 => require(Backend::Avx512),
            BackendChoice::Avx2 => require(Backend::Avx2),
            BackendChoice::Neon => require(Backend::Neon),
        }
    }

    /// Parses a backend name as accepted by `INVECTOR_BACKEND` and the CLI
    /// `--backend` option (case-insensitive).
    ///
    /// # Errors
    ///
    /// Unknown names return a message listing every valid value and which
    /// of them the current host supports — so a typo tells the user both
    /// what to type and what would actually run.
    pub fn parse(s: &str) -> Result<BackendChoice, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(BackendChoice::Auto),
            "portable" => Ok(BackendChoice::Portable),
            "native" => Ok(BackendChoice::Native),
            "avx512" => Ok(BackendChoice::Avx512),
            "avx2" => Ok(BackendChoice::Avx2),
            "neon" => Ok(BackendChoice::Neon),
            other => {
                let supported: Vec<&str> =
                    Backend::ALL.into_iter().filter(|b| b.available()).map(Backend::name).collect();
                Err(format!(
                    "unrecognized backend name {other:?}: valid values are {} \
                     (supported on this host: {})",
                    Self::NAMES.join(", "),
                    supported.join(", "),
                ))
            }
        }
    }
}

/// The process-wide default backend, for call sites that do not carry an
/// `ExecPolicy`. Resolved once from the `INVECTOR_BACKEND` environment
/// variable (`auto` when unset) and cached.
///
/// # Panics
///
/// First call panics if `INVECTOR_BACKEND` is set to an unrecognized
/// value, or to an ISA the host does not support.
#[must_use]
pub fn current() -> Backend {
    static CURRENT: OnceLock<Backend> = OnceLock::new();
    *CURRENT.get_or_init(|| choice_from_env().resolve())
}

fn choice_from_env() -> BackendChoice {
    match std::env::var("INVECTOR_BACKEND") {
        Ok(v) => match BackendChoice::parse(&v) {
            Ok(choice) => choice,
            Err(msg) => panic!("INVECTOR_BACKEND: {msg}"),
        },
        Err(_) => BackendChoice::Auto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_resolvable() {
        assert_eq!(BackendChoice::Portable.resolve(), Backend::Portable);
    }

    #[test]
    fn auto_prefers_the_widest_available_isa() {
        let expect = if Backend::Avx512.available() {
            Backend::Avx512
        } else if Backend::Avx2.available() {
            Backend::Avx2
        } else if Backend::Neon.available() {
            Backend::Neon
        } else {
            Backend::Portable
        };
        assert_eq!(BackendChoice::Auto.resolve(), expect);
    }

    #[test]
    fn native_resolves_to_autos_pick_or_panics() {
        if BackendChoice::Auto.resolve().is_native() {
            assert_eq!(BackendChoice::Native.resolve(), BackendChoice::Auto.resolve());
        } else {
            let err = std::panic::catch_unwind(|| BackendChoice::Native.resolve())
                .expect_err("forcing native without hardware SIMD must panic");
            let msg = err.downcast_ref::<String>().expect("panic carries a message");
            assert!(msg.contains("avx512f"), "message should name the features: {msg}");
        }
    }

    #[test]
    fn forced_isa_resolves_or_panics_with_useful_message() {
        for (choice, backend) in [
            (BackendChoice::Avx512, Backend::Avx512),
            (BackendChoice::Avx2, Backend::Avx2),
            (BackendChoice::Neon, Backend::Neon),
        ] {
            if backend.available() {
                assert_eq!(choice.resolve(), backend);
            } else {
                let err = std::panic::catch_unwind(|| choice.resolve())
                    .expect_err("forcing an unsupported ISA must panic");
                let msg = err.downcast_ref::<String>().expect("panic carries a message");
                assert!(msg.contains(backend.name()), "message should name the backend: {msg}");
            }
        }
    }

    #[test]
    fn parse_accepts_every_documented_name() {
        for name in BackendChoice::NAMES {
            assert!(BackendChoice::parse(name).is_ok(), "{name} should parse");
            assert!(BackendChoice::parse(&name.to_uppercase()).is_ok());
        }
    }

    #[test]
    fn parse_rejects_unknown_names_listing_valid_and_supported() {
        let msg = BackendChoice::parse("sse9").expect_err("sse9 is not a backend");
        for name in BackendChoice::NAMES {
            assert!(msg.contains(name), "error should list {name}: {msg}");
        }
        assert!(msg.contains("supported on this host"), "{msg}");
    }

    #[test]
    fn current_is_stable_across_calls() {
        assert_eq!(current(), current());
    }

    #[test]
    fn names_lanes_and_tags_are_stable() {
        assert_eq!(Backend::Portable.name(), "portable");
        assert_eq!(Backend::Avx512.name(), "avx512");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Neon.name(), "neon");
        assert_eq!(Backend::Avx512.lanes(), 16);
        assert_eq!(Backend::Avx2.lanes(), 8);
        assert_eq!(Backend::Neon.lanes(), 4);
        assert_eq!(Backend::Portable.lanes(), 16);
        for b in Backend::ALL {
            assert_eq!(invector_simd::count::BACKEND_NAMES[b.tag()], b.name());
            assert_eq!(b.is_native(), b != Backend::Portable);
        }
        assert!(Backend::Portable.available());
    }
}
