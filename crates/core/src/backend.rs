//! Backend selection: portable software model vs. native AVX-512.
//!
//! Every kernel's hot loop runs against one of two backends:
//!
//! * [`Backend::Portable`] — the scalar software model in
//!   `invector-simd`, which defines the semantics and (with the `count`
//!   feature) charges the paper's instruction model.
//! * [`Backend::Native`] — the real `vpconflictd` / gather / scatter
//!   paths in `invector_simd::native`, bitwise-identical to the portable
//!   model but running on hardware SIMD.
//!
//! Selection is resolved **once per run**, not per vector: callers hold a
//! [`BackendChoice`] (usually inside an `ExecPolicy`), call
//! [`BackendChoice::resolve`] at the top of the kernel, and thread the
//! resulting [`Backend`] through the hot loop. Code paths without a policy
//! use the process-wide [`current`] default, which honors the
//! `INVECTOR_BACKEND` environment variable (`auto` / `portable` /
//! `native`) and is detected once.

use std::sync::OnceLock;

/// A resolved backend: which implementation the hot loop actually runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The portable software model (always available).
    Portable,
    /// Real AVX-512 (`avx512f` + `avx512cd`) instructions.
    Native,
}

impl Backend {
    /// `true` for [`Backend::Native`].
    #[inline]
    #[must_use]
    pub fn is_native(self) -> bool {
        self == Backend::Native
    }

    /// Stable lowercase name, for logs and benchmark output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Portable => "portable",
            Backend::Native => "native",
        }
    }
}

/// A backend *request*, resolved against CPU capabilities at run start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// Use [`Backend::Native`] when the CPU supports it, otherwise fall
    /// back to [`Backend::Portable`]. The default.
    #[default]
    Auto,
    /// Always use the portable software model.
    Portable,
    /// Require the native backend.
    ///
    /// [`BackendChoice::resolve`] panics when AVX-512 is unavailable —
    /// forcing `Native` on an unsupported host is a configuration error,
    /// and failing at the dispatch layer (with a message naming the
    /// missing features) beats faulting inside an `unsafe fn`.
    Native,
}

impl BackendChoice {
    /// Resolves the request against the running CPU.
    ///
    /// # Panics
    ///
    /// Panics if [`BackendChoice::Native`] is requested on a host without
    /// `avx512f` + `avx512cd`.
    #[must_use]
    pub fn resolve(self) -> Backend {
        match self {
            BackendChoice::Portable => Backend::Portable,
            BackendChoice::Auto => {
                if invector_simd::native::available() {
                    Backend::Native
                } else {
                    Backend::Portable
                }
            }
            BackendChoice::Native => {
                assert!(
                    invector_simd::native::available(),
                    "native backend requested but this host lacks AVX-512 \
                     (avx512f + avx512cd); use BackendChoice::Auto to fall back \
                     to the portable model, or unset INVECTOR_BACKEND"
                );
                Backend::Native
            }
        }
    }
}

/// The process-wide default backend, for call sites that do not carry an
/// `ExecPolicy`. Resolved once from the `INVECTOR_BACKEND` environment
/// variable (`auto` when unset) and cached.
///
/// # Panics
///
/// First call panics if `INVECTOR_BACKEND` is set to an unrecognized
/// value, or to `native` on a host without AVX-512.
#[must_use]
pub fn current() -> Backend {
    static CURRENT: OnceLock<Backend> = OnceLock::new();
    *CURRENT.get_or_init(|| choice_from_env().resolve())
}

fn choice_from_env() -> BackendChoice {
    match std::env::var("INVECTOR_BACKEND") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "auto" => BackendChoice::Auto,
            "portable" => BackendChoice::Portable,
            "native" => BackendChoice::Native,
            other => panic!(
                "unrecognized INVECTOR_BACKEND value {other:?} \
                 (expected \"auto\", \"portable\", or \"native\")"
            ),
        },
        Err(_) => BackendChoice::Auto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_is_always_resolvable() {
        assert_eq!(BackendChoice::Portable.resolve(), Backend::Portable);
    }

    #[test]
    fn auto_matches_cpu_detection() {
        let expect =
            if invector_simd::native::available() { Backend::Native } else { Backend::Portable };
        assert_eq!(BackendChoice::Auto.resolve(), expect);
    }

    #[test]
    fn forced_native_resolves_or_panics_with_useful_message() {
        if invector_simd::native::available() {
            assert_eq!(BackendChoice::Native.resolve(), Backend::Native);
        } else {
            let err = std::panic::catch_unwind(|| BackendChoice::Native.resolve())
                .expect_err("forcing native without AVX-512 must panic");
            let msg = err.downcast_ref::<String>().expect("panic carries a message");
            assert!(msg.contains("avx512f"), "message should name the features: {msg}");
        }
    }

    #[test]
    fn current_is_stable_across_calls() {
        assert_eq!(current(), current());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Backend::Portable.name(), "portable");
        assert_eq!(Backend::Native.name(), "native");
        assert!(Backend::Native.is_native());
        assert!(!Backend::Portable.is_native());
    }
}
