//! A persistent, lazily-initialized worker pool.
//!
//! The seed's `parallel_invec_accumulate` spawned fresh OS threads on every
//! call — acceptable for a one-off benchmark, fatal on a hot path that runs
//! an edge phase per iteration. This pool is created once (on the first
//! batch that actually needs parallelism), parks its workers on a condition
//! variable between batches, and is shared by every engine entry point in
//! the process. [`pool_initializations`] exposes the creation count so tests
//! can assert the pool really is reused.
//!
//! The pool deliberately has no concept of task priorities, cancellation, or
//! futures: the only operation is [`ThreadPool::run`] — execute `tasks`
//! closures `f(0..tasks)` and block until all finished. Blocking until batch
//! completion is what makes the lifetime erasure below sound: borrowed data
//! captured by `f` cannot be freed while any worker can still touch it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// How many workers the global pool starts (the host's available
/// parallelism, at least one).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of times the global pool has been constructed. `OnceLock`
/// guarantees this is 0 (never needed) or 1 for the process lifetime; the
/// engine's tests assert it stays at 1 across repeated engine calls.
pub fn pool_initializations() -> usize {
    POOL_INITIALIZATIONS.load(Ordering::SeqCst)
}

/// The process-wide pool, created on first use.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        POOL_INITIALIZATIONS.fetch_add(1, Ordering::SeqCst);
        let pool = ThreadPool::new(default_workers());
        let registry = invector_obs::Registry::global();
        registry.register_collector(
            "invector_exec_pool_initializations_total",
            "times the global worker pool has been constructed (0 or 1)",
            || pool_initializations() as u64,
        );
        registry
            .gauge("invector_exec_pool_workers", "worker threads in the global pool")
            .set(pool.workers() as f64);
        pool
    })
}

/// Pool-level counters on the global registry, registered on first use.
struct PoolMetrics {
    batches: invector_obs::Counter,
    jobs: invector_obs::Counter,
    inline_batches: invector_obs::Counter,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = invector_obs::Registry::global();
        PoolMetrics {
            batches: registry
                .counter("invector_exec_pool_batches_total", "batches enqueued on the worker pool"),
            jobs: registry
                .counter("invector_exec_pool_jobs_total", "jobs pushed to the worker pool queue"),
            inline_batches: registry.counter(
                "invector_exec_pool_inline_batches_total",
                "batches run inline (single task or nested call from a worker)",
            ),
        }
    })
}

static POOL_INITIALIZATIONS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while a pool worker executes a task, so nested [`ThreadPool::run`]
    /// calls degrade to inline execution instead of risking a deadlock where
    /// every worker waits for a batch no one is left to run.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One enqueued task: its batch plus the task index within the batch.
struct Job {
    batch: Arc<Batch>,
    index: usize,
}

/// Shared state of one `run` call. The `'static` on `task` is a lie told
/// via `transmute` in [`ThreadPool::run`]; it is sound because `run` does
/// not return until `remaining == 0`, i.e. until no worker can call the
/// closure again.
struct Batch {
    task: &'static (dyn Fn(usize) + Sync),
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// A fixed set of parked worker threads executing batches of indexed tasks.
pub struct ThreadPool {
    queue: Arc<PoolQueue>,
    workers: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("workers", &self.workers).finish()
    }
}

struct PoolQueue {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
}

impl ThreadPool {
    /// Starts a pool with `workers` parked threads (at least one).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let queue =
            Arc::new(PoolQueue { jobs: Mutex::new(VecDeque::new()), available: Condvar::new() });
        for id in 0..workers {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name(format!("invector-exec-{id}"))
                .spawn(move || worker_loop(&queue))
                .expect("failed to spawn pool worker");
        }
        ThreadPool { queue, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes `f(0)`, `f(1)`, …, `f(tasks - 1)` on the pool and blocks
    /// until all calls have returned.
    ///
    /// Single-task batches (and calls made from inside a pool worker) run
    /// inline on the calling thread. If any task panics, the first payload
    /// is re-raised here after the whole batch has drained.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || IN_POOL_WORKER.with(|w| w.get()) {
            pool_metrics().inline_batches.inc();
            for index in 0..tasks {
                f(index);
            }
            return;
        }
        pool_metrics().batches.inc();
        pool_metrics().jobs.add(tasks as u64);
        // SAFETY: erases the borrow lifetime of `f`. The wait on `done`
        // below guarantees `run` outlives every dereference by a worker.
        let task: &'static (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let batch = Arc::new(Batch {
            task,
            state: Mutex::new(BatchState { remaining: tasks, panic: None }),
            done: Condvar::new(),
        });
        {
            let mut jobs = self.queue.jobs.lock().expect("pool queue poisoned");
            for index in 0..tasks {
                jobs.push_back(Job { batch: Arc::clone(&batch), index });
            }
        }
        self.queue.available.notify_all();
        let mut state = batch.state.lock().expect("batch state poisoned");
        while state.remaining > 0 {
            state = batch.done.wait(state).expect("batch state poisoned");
        }
        if let Some(payload) = state.panic.take() {
            drop(state);
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(queue: &PoolQueue) {
    loop {
        let job = {
            let mut jobs = queue.jobs.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                jobs = queue.available.wait(jobs).expect("pool queue poisoned");
            }
        };
        let task = job.batch.task;
        IN_POOL_WORKER.with(|w| w.set(true));
        let outcome = {
            let _span = invector_obs::span!("exec.pool.job");
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(job.index)))
        };
        IN_POOL_WORKER.with(|w| w.set(false));
        let mut state = job.batch.state.lock().expect("batch state poisoned");
        if let Err(payload) = outcome {
            state.panic.get_or_insert(payload);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            job.batch.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn batches_can_borrow_stack_data() {
        let pool = ThreadPool::new(2);
        let input = [1u64, 2, 3, 4, 5];
        let out: Vec<AtomicU64> = input.iter().map(|_| AtomicU64::new(0)).collect();
        pool.run(input.len(), &|i| {
            out[i].store(input[i] * 10, Ordering::SeqCst);
        });
        let got: Vec<u64> = out.iter().map(|a| a.load(Ordering::SeqCst)).collect();
        assert_eq!(got, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn pool_survives_repeated_batches() {
        let pool = ThreadPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(7, &|i| {
                total.fetch_add(i as u64, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 50 * 21);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let pool = ThreadPool::new(2);
        let result = std::panic::catch_unwind(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("task exploded");
                }
            });
        });
        assert!(result.is_err());
        // The pool is still usable afterwards.
        let ok = AtomicU64::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_runs_execute_inline_without_deadlock() {
        let pool = ThreadPool::new(1); // one worker: nesting would deadlock
        let total = AtomicU64::new(0);
        pool.run(2, &|_| {
            pool.run(3, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn global_pool_is_initialized_at_most_once() {
        let before = pool_initializations();
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert_eq!(pool_initializations(), 1);
        assert!(before <= 1);
    }
}
