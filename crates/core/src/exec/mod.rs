//! The execution engine: thread-pooled MIMD × SIMD reduction.
//!
//! The paper evaluates single-core SIMD only ("MIMD parallelization is a
//! tangential issue"). This module is the composition layer the kernels run
//! on: a stream of `(index, value)` reduction items is partitioned across a
//! persistent [thread pool](pool), each worker runs one of the paper's SIMD
//! reduction variants on its share, and per-worker results are folded into
//! the target. Two partitioning strategies are offered, selected by
//! [`ExecPolicy::partition`]:
//!
//! - **[`Partition::OwnerComputes`]** — the target is cut into contiguous
//!   ranges balanced by item count (a histogram pass over the keys), and
//!   every stream item is routed to the worker that *owns* its target index.
//!   Workers write disjoint `target` slices directly: no privatization, no
//!   merge phase, and per-target-index update order is preserved, so results
//!   agree with the serial variants *exactly* — for min/max and even for
//!   float sums (under the `Serial` in-worker variant). The cost is a
//!   bucketing pass over the stream.
//! - **[`Partition::Privatized`]** — the stream is cut into contiguous
//!   chunks; each worker reduces into a private array bounded to its
//!   *touched* index range (`min..=max` of the keys it sees — not
//!   `target.len()`, fixing the seed's `O(threads × |target|)` blow-up) and
//!   private arrays are folded into the target afterwards. No bucketing
//!   pass, but the fold reassociates float sums across workers.
//!
//! With [`ExecPolicy::deterministic`] set, the privatized fold runs in task
//! order on the calling thread, so float results are bit-identical across
//! runs at a fixed thread count. Owner-computes is deterministic by
//! construction.
//!
//! The entry points, from most to least packaged:
//!
//! - [`execute`] — whole-stream accumulate (the parallel form of
//!   [`invec_accumulate`](crate::accumulate::invec_accumulate)), returning
//!   an [`ExecReport`].
//! - [`run_plan`] — run an arbitrary per-task body against partitioned
//!   views of a target array; kernels with custom edge phases (PageRank,
//!   the relax family) build an [`ExecPlan`] once per index set and reuse
//!   it across iterations.
//! - [`parallel_chunks`] — plain indexed fan-out over the pool for kernels
//!   whose updates touch two target ranges per item (moldyn forces, Euler
//!   fluxes) or need no target at all (agg's per-worker hash tables).
//!
//! SIMD instruction counts recorded by workers (thread-local in
//! `invector_simd::count`) are summed and re-charged to the calling thread
//! via [`count::bump_recharged`](invector_simd::count::bump_recharged), so
//! per-caller accounting keeps working unchanged while the process-wide
//! total (`count::global_total`, exported to the metric registry) counts
//! each instruction once. Batches and worker tasks also publish counters
//! and spans to [`invector_obs`]; with the `obs` feature disabled those
//! calls compile to no-ops.

pub mod pool;

pub use pool::{pool_initializations, ThreadPool};

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use invector_simd::{count, SimdElement};

use crate::accumulate::{
    adaptive_accumulate_with, invec_accumulate_with, serial_accumulate, InvecStats,
};
use crate::ops::ReduceOp;

pub use crate::backend::{Backend, BackendChoice};

/// Engine counters on the global metric registry, registered on first use.
///
/// Handles are cached in a `OnceLock` so the steady state is one load plus
/// a relaxed shard add per event; with the `obs` feature disabled every
/// `add` compiles to a no-op.
struct ExecMetrics {
    plans: invector_obs::Counter,
    chunk_runs: invector_obs::Counter,
    tasks: invector_obs::Counter,
    inline_runs: invector_obs::Counter,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: std::sync::OnceLock<ExecMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = invector_obs::Registry::global();
        ExecMetrics {
            plans: registry.counter(
                "invector_exec_plans_total",
                "run_plan batches dispatched to the worker pool",
            ),
            chunk_runs: registry.counter(
                "invector_exec_chunk_runs_total",
                "parallel_chunks batches dispatched to the worker pool",
            ),
            tasks: registry.counter(
                "invector_exec_tasks_total",
                "worker tasks executed across all engine batches",
            ),
            inline_runs: registry.counter(
                "invector_exec_inline_runs_total",
                "engine calls that ran inline on the caller (single task)",
            ),
        }
    })
}

/// Which of the paper's reduction strategies each worker runs on its share
/// of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecVariant {
    /// Scalar read-modify-write (the reference loop).
    Serial,
    /// In-vector reduction, Algorithm 1 (§3.3).
    #[default]
    Invec,
    /// Adaptive Algorithm 1 / Algorithm 2 selection (§3.4).
    Adaptive,
}

/// How the reduction is split across workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partition {
    /// Bucket stream items by target range; each worker owns a disjoint
    /// slice of the target and writes it directly. Exact (order-preserving
    /// per target index), at the price of a bucketing pass. Best when the
    /// key distribution is roughly balanced.
    #[default]
    OwnerComputes,
    /// Chunk the stream; each worker reduces into a private array bounded
    /// to its touched index range, folded into the target afterwards. No
    /// bucketing pass and immune to key skew (a single hot key cannot
    /// starve workers), but float sums reassociate across workers.
    Privatized,
}

/// A complete description of how the engine should run a reduction.
///
/// # Example
///
/// ```
/// use invector_core::exec::{BackendChoice, ExecPolicy, Partition};
///
/// let policy = ExecPolicy::with_threads(8)
///     .partition(Partition::Privatized)
///     .deterministic(true)
///     .backend(BackendChoice::Auto);
/// assert_eq!(policy.threads, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecPolicy {
    /// Per-worker SIMD strategy.
    pub variant: ExecVariant,
    /// Worker count ceiling (the engine may use fewer for tiny streams;
    /// `1` means run inline on the calling thread). Must be non-zero.
    pub threads: usize,
    /// Partitioning strategy; irrelevant when one worker runs.
    pub partition: Partition,
    /// Fold privatized results in task order so float outputs are
    /// bit-identical across runs at a fixed thread count.
    pub deterministic: bool,
    /// Which reduction backend the workers run (portable software model vs
    /// native AVX-512). Resolved once per [`execute`] call, composing with
    /// every variant/partition: `Auto` (the default) uses native when the
    /// CPU supports it.
    pub backend: BackendChoice,
}

impl Default for ExecPolicy {
    /// Single-threaded in-vector reduction — the paper's configuration —
    /// on the best backend the CPU offers.
    fn default() -> Self {
        ExecPolicy {
            variant: ExecVariant::Invec,
            threads: 1,
            partition: Partition::OwnerComputes,
            deterministic: false,
            backend: BackendChoice::Auto,
        }
    }
}

impl ExecPolicy {
    /// The default policy widened to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy { threads, ..ExecPolicy::default() }
    }

    /// Returns `self` with the per-worker variant replaced.
    pub fn variant(mut self, variant: ExecVariant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns `self` with the partition strategy replaced.
    pub fn partition(mut self, partition: Partition) -> Self {
        self.partition = partition;
        self
    }

    /// Returns `self` with the deterministic flag replaced.
    pub fn deterministic(mut self, deterministic: bool) -> Self {
        self.deterministic = deterministic;
        self
    }

    /// Returns `self` with the backend request replaced.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }
}

/// Worker count actually used: tiny streams are not worth parallelising
/// (each worker should see at least two items), matching the seed's rule.
fn effective_tasks(threads: usize, items: usize) -> usize {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || items < 2 * threads {
        1
    } else {
        threads
    }
}

/// One task of an [`ExecPlan`].
#[derive(Debug, Clone)]
struct PlanTask {
    /// Inclusive lower bound of the target range this task may write.
    lo: usize,
    /// Exclusive upper bound of the target range this task may write.
    hi: usize,
    /// Owner-computes: range into [`ExecPlan::picked`]. Privatized (and
    /// single-task): range into the stream itself.
    span: Range<usize>,
}

/// A reusable partition of one index stream over one target length.
///
/// Building a plan costs a pass over the keys (two for owner-computes);
/// kernels whose index set is fixed across iterations (PageRank's edge
/// list) build the plan once and [`run_plan`] it every iteration.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    partition: Partition,
    target_len: usize,
    stream_len: usize,
    tasks: Vec<PlanTask>,
    /// Stream positions grouped by owning task (owner-computes only),
    /// stream-ordered within each task.
    picked: Vec<u32>,
}

/// The items one task processes: a contiguous stream span (privatized /
/// single task) or an explicit position list (owner-computes).
#[derive(Debug, Clone)]
pub enum TaskItems<'plan> {
    /// Process stream positions `range.start..range.end` in order.
    Span(Range<usize>),
    /// Process exactly these stream positions, in order.
    Picked(&'plan [u32]),
}

impl TaskItems<'_> {
    /// Number of stream items assigned to the task.
    pub fn len(&self) -> usize {
        match self {
            TaskItems::Span(r) => r.len(),
            TaskItems::Picked(p) => p.len(),
        }
    }

    /// `true` when the task has no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Everything a [`run_plan`] body learns about its task.
#[derive(Debug)]
pub struct TaskCtx<'plan> {
    /// Task index, `0..plan.num_tasks()`.
    pub task: usize,
    /// The stream items this task processes.
    pub items: TaskItems<'plan>,
    /// Inclusive lower bound of the target range behind the view; subtract
    /// this from a key to index the view.
    pub lo: usize,
    /// Exclusive upper bound of the target range behind the view.
    pub hi: usize,
    /// `true` when the view is a privatized identity-initialized scratch
    /// array (merged into the target afterwards) rather than the target
    /// itself.
    pub private: bool,
}

impl ExecPlan {
    /// Partitions a stream keyed by `keys` (reduction indices into a target
    /// of length `target_len`) according to `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `policy.threads == 0`, if a key is negative or out of
    /// bounds for `target_len` (owner-computes eagerly; privatized upon
    /// execution), or if the stream exceeds `u32::MAX` items.
    pub fn new(keys: &[i32], target_len: usize, policy: &ExecPolicy) -> ExecPlan {
        assert!(keys.len() <= u32::MAX as usize, "stream too long for plan positions");
        let n_tasks = effective_tasks(policy.threads, keys.len());
        if n_tasks == 1 {
            return ExecPlan {
                partition: policy.partition,
                target_len,
                stream_len: keys.len(),
                tasks: vec![PlanTask { lo: 0, hi: target_len, span: 0..keys.len() }],
                picked: Vec::new(),
            };
        }
        match policy.partition {
            Partition::OwnerComputes => Self::plan_owner_computes(keys, target_len, n_tasks),
            Partition::Privatized => Self::plan_privatized(keys, target_len, n_tasks),
        }
    }

    fn plan_owner_computes(keys: &[i32], target_len: usize, n_tasks: usize) -> ExecPlan {
        // Histogram of items per target index, then contiguous target
        // ranges balanced by item count.
        let mut counts = vec![0u32; target_len];
        for &k in keys {
            assert!(
                k >= 0 && (k as usize) < target_len,
                "key {k} out of bounds for target of length {target_len}"
            );
            counts[k as usize] += 1;
        }
        let mut bounds = Vec::with_capacity(n_tasks + 1);
        bounds.push(0usize);
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            cum += u64::from(c);
            // Close ranges whose item quota is met; a pathologically hot
            // index can satisfy several quotas at once, leaving later
            // tasks empty — correct, if unbalanced (use Privatized there).
            while bounds.len() < n_tasks
                && cum * n_tasks as u64 >= keys.len() as u64 * bounds.len() as u64
            {
                bounds.push(i + 1);
            }
        }
        while bounds.len() < n_tasks {
            bounds.push(target_len);
        }
        bounds.push(target_len);

        // Route each stream position to its owning task, stream-ordered
        // within a task (counting sort by task).
        let task_of = |k: i32| bounds.partition_point(|&b| b <= k as usize) - 1;
        let mut task_counts = vec![0u32; n_tasks];
        let mut owner = Vec::with_capacity(keys.len());
        for &k in keys {
            let t = task_of(k);
            owner.push(t as u32);
            task_counts[t] += 1;
        }
        let mut starts = Vec::with_capacity(n_tasks + 1);
        let mut acc = 0u32;
        for &c in &task_counts {
            starts.push(acc);
            acc += c;
        }
        starts.push(acc);
        let mut cursor: Vec<u32> = starts[..n_tasks].to_vec();
        let mut picked = vec![0u32; keys.len()];
        for (pos, &t) in owner.iter().enumerate() {
            picked[cursor[t as usize] as usize] = pos as u32;
            cursor[t as usize] += 1;
        }

        let tasks = (0..n_tasks)
            .map(|t| PlanTask {
                lo: bounds[t],
                hi: bounds[t + 1],
                span: starts[t] as usize..starts[t + 1] as usize,
            })
            .collect();
        ExecPlan {
            partition: Partition::OwnerComputes,
            target_len,
            stream_len: keys.len(),
            tasks,
            picked,
        }
    }

    fn plan_privatized(keys: &[i32], target_len: usize, n_tasks: usize) -> ExecPlan {
        let chunk = keys.len().div_ceil(n_tasks);
        let tasks = (0..n_tasks)
            .map(|t| {
                let start = (t * chunk).min(keys.len());
                let end = ((t + 1) * chunk).min(keys.len());
                // Bound the private array to the touched index range — the
                // fix for the seed's O(threads × |target|) memory blow-up.
                let (mut lo, mut hi) = (0usize, 0usize);
                if start < end {
                    let (mut min_k, mut max_k) = (i32::MAX, i32::MIN);
                    for &k in &keys[start..end] {
                        min_k = min_k.min(k);
                        max_k = max_k.max(k);
                    }
                    assert!(
                        min_k >= 0 && (max_k as usize) < target_len,
                        "key out of bounds for target of length {target_len}"
                    );
                    lo = min_k as usize;
                    hi = max_k as usize + 1;
                }
                PlanTask { lo, hi, span: start..end }
            })
            .collect();
        ExecPlan {
            partition: Partition::Privatized,
            target_len,
            stream_len: keys.len(),
            tasks,
            picked: Vec::new(),
        }
    }

    /// Number of tasks (= workers used when run).
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The partition strategy the plan was built with.
    pub fn partition(&self) -> Partition {
        self.partition
    }

    /// Stream length the plan was built for.
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    fn items(&self, t: usize) -> TaskItems<'_> {
        let task = &self.tasks[t];
        if self.tasks.len() == 1 || self.partition == Partition::Privatized {
            TaskItems::Span(task.span.clone())
        } else {
            TaskItems::Picked(&self.picked[task.span.clone()])
        }
    }

    fn ctx(&self, t: usize, private: bool) -> TaskCtx<'_> {
        let task = &self.tasks[t];
        TaskCtx { task: t, items: self.items(t), lo: task.lo, hi: task.hi, private }
    }
}

/// Runs `body` once per plan task against a mutable view of `target`.
///
/// Owner-computes tasks receive their owned disjoint sub-slice of `target`
/// (`view[k - ctx.lo]` is `target[k]`). Privatized tasks receive a fresh
/// `Op::identity()`-filled scratch array covering their touched range,
/// which the engine folds into `target` with `Op` afterwards — in task
/// order when `deterministic`, in completion order (under a mutex)
/// otherwise. Single-task plans run inline on the calling thread against
/// the whole target.
///
/// Returns the body results in task order. SIMD instructions recorded by
/// workers are re-charged to the calling thread.
///
/// # Panics
///
/// Panics if the plan was built for a different target length, or
/// propagates the first panic raised by a body.
pub fn run_plan<T, Op, R, F>(
    plan: &ExecPlan,
    target: &mut [T],
    deterministic: bool,
    body: F,
) -> Vec<R>
where
    T: SimdElement,
    Op: ReduceOp<T>,
    R: Send,
    F: Fn(TaskCtx<'_>, &mut [T]) -> R + Sync,
{
    assert_eq!(plan.target_len, target.len(), "plan built for a different target length");
    let n_tasks = plan.tasks.len();
    if n_tasks == 1 {
        exec_metrics().inline_runs.inc();
        return vec![body(plan.ctx(0, false), target)];
    }
    let _plan_span = invector_obs::span!("exec.run_plan");
    exec_metrics().plans.inc();
    exec_metrics().tasks.add(n_tasks as u64);
    let results: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let instructions: Vec<AtomicU64> = (0..n_tasks).map(|_| AtomicU64::new(0)).collect();

    match plan.partition {
        Partition::OwnerComputes => {
            // Hand each task exclusive ownership of its target slice.
            let mut slices: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(n_tasks);
            let mut rest = target;
            let mut offset = 0;
            for task in &plan.tasks {
                let (head, tail) = rest.split_at_mut(task.hi - offset);
                offset = task.hi;
                rest = tail;
                slices.push(Mutex::new(Some(head)));
            }
            pool::global().run(n_tasks, &|t| {
                let _span = invector_obs::span!("exec.task.owner");
                let view = slices[t]
                    .lock()
                    .expect("slice cell poisoned")
                    .take()
                    .expect("task slice claimed twice");
                let (r, n) = count::with(|| body(plan.ctx(t, false), view));
                instructions[t].store(n, Ordering::Relaxed);
                *results[t].lock().expect("result cell poisoned") = Some(r);
            });
        }
        Partition::Privatized if deterministic => {
            let privates: Vec<Mutex<Option<Vec<T>>>> =
                (0..n_tasks).map(|_| Mutex::new(None)).collect();
            pool::global().run(n_tasks, &|t| {
                let _span = invector_obs::span!("exec.task.privatized");
                let task = &plan.tasks[t];
                let mut scratch = vec![Op::identity(); task.hi - task.lo];
                let (r, n) = count::with(|| body(plan.ctx(t, true), &mut scratch));
                instructions[t].store(n, Ordering::Relaxed);
                *privates[t].lock().expect("scratch cell poisoned") = Some(scratch);
                *results[t].lock().expect("result cell poisoned") = Some(r);
            });
            // Ordered fold: bit-identical across runs at fixed task count.
            for (t, task) in plan.tasks.iter().enumerate() {
                let scratch = privates[t]
                    .lock()
                    .expect("scratch cell poisoned")
                    .take()
                    .expect("missing task scratch");
                for (slot, &p) in target[task.lo..task.hi].iter_mut().zip(&scratch) {
                    *slot = Op::combine(*slot, p);
                }
            }
        }
        Partition::Privatized => {
            let shared = Mutex::new(&mut *target);
            pool::global().run(n_tasks, &|t| {
                let _span = invector_obs::span!("exec.task.privatized");
                let task = &plan.tasks[t];
                let mut scratch = vec![Op::identity(); task.hi - task.lo];
                let (r, n) = count::with(|| body(plan.ctx(t, true), &mut scratch));
                instructions[t].store(n, Ordering::Relaxed);
                let mut guard = shared.lock().expect("target mutex poisoned");
                for (slot, &p) in guard[task.lo..task.hi].iter_mut().zip(&scratch) {
                    *slot = Op::combine(*slot, p);
                }
                *results[t].lock().expect("result cell poisoned") = Some(r);
            });
        }
    }

    count::bump_recharged(instructions.iter().map(|a| a.load(Ordering::Relaxed)).sum());
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result cell poisoned").expect("missing task result"))
        .collect()
}

/// Indexed fan-out over the pool: runs `f(task, item_range)` for evenly cut
/// chunks of `0..items`, returning results in task order.
///
/// This is the raw primitive for kernels whose per-item updates touch more
/// than one target range (moldyn's pair forces, Euler's edge fluxes) or no
/// shared target at all (agg's per-worker tables). The same tiny-stream
/// fallback as [`execute`] applies: small `items` run as one inline task.
/// Worker SIMD instruction counts are re-charged to the calling thread.
pub fn parallel_chunks<R, F>(items: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Range<usize>) -> R + Sync,
{
    let n_tasks = effective_tasks(threads, items);
    if n_tasks == 1 {
        exec_metrics().inline_runs.inc();
        return vec![f(0, 0..items)];
    }
    let _chunks_span = invector_obs::span!("exec.parallel_chunks");
    exec_metrics().chunk_runs.inc();
    exec_metrics().tasks.add(n_tasks as u64);
    let chunk = items.div_ceil(n_tasks);
    let results: Vec<Mutex<Option<R>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let instructions: Vec<AtomicU64> = (0..n_tasks).map(|_| AtomicU64::new(0)).collect();
    pool::global().run(n_tasks, &|t| {
        let _span = invector_obs::span!("exec.task.chunk");
        let start = (t * chunk).min(items);
        let end = ((t + 1) * chunk).min(items);
        let (r, n) = count::with(|| f(t, start..end));
        instructions[t].store(n, Ordering::Relaxed);
        *results[t].lock().expect("result cell poisoned") = Some(r);
    });
    count::bump_recharged(instructions.iter().map(|a| a.load(Ordering::Relaxed)).sum());
    results
        .into_iter()
        .map(|m| m.into_inner().expect("result cell poisoned").expect("missing task result"))
        .collect()
}

/// What one engine worker did, with the touched-range metadata the
/// allocation-proportionality tests assert on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// SIMD statistics of the worker's reduction.
    pub stats: InvecStats,
    /// Stream items the worker processed.
    pub items: usize,
    /// Inclusive lower bound of the target range the worker could write.
    pub touched_lo: usize,
    /// Exclusive upper bound of the target range the worker could write.
    pub touched_hi: usize,
    /// Elements of privatized scratch allocated (0 when the worker wrote
    /// the target directly: owner-computes and single-task runs).
    pub private_len: usize,
}

/// Merged result of one [`execute`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// All workers' statistics merged.
    pub stats: InvecStats,
    /// Per-worker reports, in task order.
    pub workers: Vec<WorkerReport>,
}

impl ExecReport {
    /// Number of workers the engine actually used.
    pub fn threads_used(&self) -> usize {
        self.workers.len()
    }
}

/// Accumulates `vals[j]` into `target[idx[j]]` under `policy` — the
/// parallel, policy-driven form of
/// [`invec_accumulate`](crate::accumulate::invec_accumulate).
///
/// Agreement with [`serial_accumulate`](crate::accumulate::serial_accumulate)
/// is exact for integer operators and float min/max under either partition;
/// float sums reassociate (identically so across runs when
/// `policy.deterministic` is set, or under owner-computes with the `Serial`
/// variant, which is bitwise-equal to the scalar loop).
///
/// # Panics
///
/// Panics if `policy.threads == 0`, on index/value length mismatch, or if
/// an index is out of bounds for `target`.
///
/// # Example
///
/// ```
/// use invector_core::exec::{execute, ExecPolicy};
/// use invector_core::ops::Sum;
///
/// let idx: Vec<i32> = (0..1000).map(|i| i % 10).collect();
/// let vals = vec![1i32; 1000];
/// let mut hist = vec![0i32; 10];
/// let report = execute::<i32, Sum>(&mut hist, &idx, &vals, &ExecPolicy::with_threads(4));
/// assert!(hist.iter().all(|&c| c == 100));
/// assert_eq!(report.threads_used(), 4);
/// ```
pub fn execute<T, Op>(target: &mut [T], idx: &[i32], vals: &[T], policy: &ExecPolicy) -> ExecReport
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    let plan = ExecPlan::new(idx, target.len(), policy);
    let variant = policy.variant;
    // Resolve the backend once; every worker closure captures the resolved
    // value instead of re-probing CPU features per task.
    let backend = policy.backend.resolve();
    let workers =
        run_plan::<T, Op, WorkerReport, _>(&plan, target, policy.deterministic, |ctx, view| {
            let lo = ctx.lo as i32;
            let private_len = if ctx.private { view.len() } else { 0 };
            let (stats, items) = match &ctx.items {
                TaskItems::Span(range) => {
                    let vals_part = &vals[range.clone()];
                    let stats = if lo == 0 {
                        run_variant::<T, Op>(variant, backend, view, &idx[range.clone()], vals_part)
                    } else {
                        let rebased: Vec<i32> =
                            idx[range.clone()].iter().map(|&k| k - lo).collect();
                        run_variant::<T, Op>(variant, backend, view, &rebased, vals_part)
                    };
                    (stats, range.len())
                }
                TaskItems::Picked(positions) => {
                    // Bucketing gather: route the owned items (and rebase
                    // their keys) into contiguous scratch for the SIMD loop.
                    let rebased: Vec<i32> =
                        positions.iter().map(|&p| idx[p as usize] - lo).collect();
                    let gathered: Vec<T> = positions.iter().map(|&p| vals[p as usize]).collect();
                    (
                        run_variant::<T, Op>(variant, backend, view, &rebased, &gathered),
                        positions.len(),
                    )
                }
            };
            WorkerReport { stats, items, touched_lo: ctx.lo, touched_hi: ctx.hi, private_len }
        });
    let mut stats = InvecStats::default();
    for w in &workers {
        stats.merge(&w.stats);
    }
    ExecReport { stats, workers }
}

/// Reusable split buffers for epoch-batched accumulation.
///
/// A serving layer that drains micro-batches through the engine submits one
/// stream of `(index, value)` pairs per epoch. [`execute`] wants parallel
/// slices; rebuilding them from scratch costs two allocations per epoch at
/// a high epoch rate. An `EpochScratch` keeps the split buffers alive
/// across epochs — capacity grows to the largest batch seen and stays
/// there.
#[derive(Debug, Clone, Default)]
pub struct EpochScratch<T> {
    idx: Vec<i32>,
    vals: Vec<T>,
}

impl<T> EpochScratch<T> {
    /// An empty scratch; buffers are grown by the first epoch.
    pub fn new() -> Self {
        EpochScratch { idx: Vec::new(), vals: Vec::new() }
    }

    /// A scratch pre-sized for `capacity`-item epochs.
    pub fn with_capacity(capacity: usize) -> Self {
        EpochScratch { idx: Vec::with_capacity(capacity), vals: Vec::with_capacity(capacity) }
    }

    /// Current buffer capacity (high-water mark of past epoch sizes).
    pub fn capacity(&self) -> usize {
        self.idx.capacity().min(self.vals.capacity())
    }
}

/// Accumulates one epoch's update stream into `target` under `policy` —
/// the epoch-submission form of [`execute`].
///
/// `updates` yields `(index, value)` pairs in stream order; they are split
/// into `scratch`'s reusable index/value buffers and executed in one
/// engine call, so a long-running service pays no per-epoch allocation
/// once the scratch has warmed up. Results are identical to calling
/// [`execute`] on pre-split slices: for a fixed policy and epoch content
/// the fold order is deterministic, which is what lets a serving layer
/// offer bitwise-reproducible snapshots.
///
/// # Panics
///
/// Panics if `policy.threads == 0` or an index is out of bounds for
/// `target`.
///
/// # Example
///
/// ```
/// use invector_core::exec::{execute_epoch, EpochScratch, ExecPolicy};
/// use invector_core::ops::Sum;
///
/// let mut hist = vec![0i32; 8];
/// let mut scratch = EpochScratch::new();
/// let epoch = [(3, 5i32), (3, 2), (7, 1)];
/// execute_epoch::<i32, Sum>(&mut hist, epoch, &mut scratch, &ExecPolicy::default());
/// assert_eq!(hist[3], 7);
/// assert_eq!(hist[7], 1);
/// ```
pub fn execute_epoch<T, Op>(
    target: &mut [T],
    updates: impl IntoIterator<Item = (i32, T)>,
    scratch: &mut EpochScratch<T>,
    policy: &ExecPolicy,
) -> ExecReport
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    scratch.idx.clear();
    scratch.vals.clear();
    for (i, v) in updates {
        scratch.idx.push(i);
        scratch.vals.push(v);
    }
    execute::<T, Op>(target, &scratch.idx, &scratch.vals, policy)
}

/// Runs one in-worker reduction variant on a (possibly rebased) view.
fn run_variant<T, Op>(
    variant: ExecVariant,
    backend: Backend,
    view: &mut [T],
    idx: &[i32],
    vals: &[T],
) -> InvecStats
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    match variant {
        ExecVariant::Serial => {
            serial_accumulate::<T, Op>(view, idx, vals);
            InvecStats::default()
        }
        ExecVariant::Invec => invec_accumulate_with::<T, Op>(backend, view, idx, vals),
        ExecVariant::Adaptive => adaptive_accumulate_with::<T, Op>(backend, view, idx, vals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::serial_accumulate;
    use crate::ops::{Max, Min, Sum};
    use rand::{Rng, SeedableRng};

    fn policies() -> Vec<ExecPolicy> {
        let mut out = Vec::new();
        for threads in [1usize, 2, 3, 7, 16] {
            for partition in [Partition::OwnerComputes, Partition::Privatized] {
                for variant in [ExecVariant::Serial, ExecVariant::Invec, ExecVariant::Adaptive] {
                    out.push(
                        ExecPolicy::with_threads(threads).partition(partition).variant(variant),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn every_policy_matches_serial_for_integers() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(101);
        let n = 3000;
        let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..97)).collect();
        let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-20..20)).collect();
        let mut expect = vec![0i32; 97];
        serial_accumulate::<i32, Sum>(&mut expect, &idx, &vals);
        for policy in policies() {
            let mut got = vec![0i32; 97];
            let report = execute::<i32, Sum>(&mut got, &idx, &vals, &policy);
            assert_eq!(got, expect, "{policy:?}");
            assert!(report.threads_used() >= 1 && report.threads_used() <= policy.threads);
            assert_eq!(report.workers.iter().map(|w| w.items).sum::<usize>(), n);
        }
    }

    #[test]
    fn min_and_max_are_exact_for_floats_under_both_partitions() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(102);
        let idx: Vec<i32> = (0..2500).map(|_| rng.gen_range(0..40)).collect();
        let vals: Vec<f32> = (0..2500).map(|_| rng.gen_range(-1e3..1e3)).collect();
        for partition in [Partition::OwnerComputes, Partition::Privatized] {
            let mut expect = vec![f32::INFINITY; 40];
            serial_accumulate::<f32, Min>(&mut expect, &idx, &vals);
            let mut got = vec![f32::INFINITY; 40];
            execute::<f32, Min>(
                &mut got,
                &idx,
                &vals,
                &ExecPolicy::with_threads(5).partition(partition),
            );
            assert_eq!(got, expect, "min {partition:?}");

            let mut expect = vec![f32::NEG_INFINITY; 40];
            serial_accumulate::<f32, Max>(&mut expect, &idx, &vals);
            let mut got = vec![f32::NEG_INFINITY; 40];
            execute::<f32, Max>(
                &mut got,
                &idx,
                &vals,
                &ExecPolicy::with_threads(5).partition(partition),
            );
            assert_eq!(got, expect, "max {partition:?}");
        }
    }

    #[test]
    fn owner_computes_serial_variant_is_bitwise_serial_for_float_sums() {
        // Owner-computes preserves per-target-index update order, so with a
        // scalar in-worker loop parallel float sums equal the serial loop
        // bit for bit — at any thread count.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(103);
        let idx: Vec<i32> = (0..4000).map(|_| rng.gen_range(0..64)).collect();
        let vals: Vec<f32> = (0..4000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut expect = vec![0.0f32; 64];
        serial_accumulate::<f32, Sum>(&mut expect, &idx, &vals);
        for threads in [2, 3, 8] {
            let mut got = vec![0.0f32; 64];
            execute::<f32, Sum>(
                &mut got,
                &idx,
                &vals,
                &ExecPolicy::with_threads(threads).variant(ExecVariant::Serial),
            );
            assert_eq!(got, expect, "{threads} threads");
        }
    }

    #[test]
    fn deterministic_privatized_float_sums_are_bit_identical_across_runs() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(104);
        let idx: Vec<i32> = (0..5000).map(|_| rng.gen_range(0..32)).collect();
        let vals: Vec<f32> = (0..5000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let policy =
            ExecPolicy::with_threads(6).partition(Partition::Privatized).deterministic(true);
        let mut first = vec![0.0f32; 32];
        execute::<f32, Sum>(&mut first, &idx, &vals, &policy);
        for _ in 0..10 {
            let mut again = vec![0.0f32; 32];
            execute::<f32, Sum>(&mut again, &idx, &vals, &policy);
            assert!(
                first.iter().zip(&again).all(|(a, b)| a.to_bits() == b.to_bits()),
                "deterministic mode must be bit-identical across runs"
            );
        }
    }

    #[test]
    fn privatized_scratch_is_bounded_by_touched_range_not_target_len() {
        // Regression for the seed's O(threads × |target|) blow-up: indices
        // confined to a narrow band must yield narrow private arrays.
        let target_len = 100_000;
        let idx: Vec<i32> = (0..4096).map(|i| 5_000 + (i % 10)).collect();
        let vals = vec![1i32; idx.len()];
        let mut target = vec![0i32; target_len];
        let policy = ExecPolicy::with_threads(4).partition(Partition::Privatized);
        let report = execute::<i32, Sum>(&mut target, &idx, &vals, &policy);
        assert_eq!(report.threads_used(), 4);
        for w in &report.workers {
            assert_eq!(w.private_len, w.touched_hi - w.touched_lo);
            assert!(
                w.private_len <= 10,
                "private array of {} elements for a 10-wide touched range",
                w.private_len
            );
        }
        assert_eq!(target[5_000..5_010].iter().sum::<i32>(), 4096);
        assert_eq!(target.iter().sum::<i32>(), 4096);
    }

    #[test]
    fn owner_computes_allocates_no_private_arrays() {
        let idx: Vec<i32> = (0..4096).map(|i| i % 1000).collect();
        let vals = vec![1i32; idx.len()];
        let mut target = vec![0i32; 1000];
        let report = execute::<i32, Sum>(&mut target, &idx, &vals, &ExecPolicy::with_threads(8));
        assert_eq!(report.threads_used(), 8);
        for w in &report.workers {
            assert_eq!(w.private_len, 0);
        }
        // Owned ranges tile the target exactly.
        assert_eq!(report.workers[0].touched_lo, 0);
        assert_eq!(report.workers.last().unwrap().touched_hi, 1000);
        for pair in report.workers.windows(2) {
            assert_eq!(pair[0].touched_hi, pair[1].touched_lo);
        }
        assert!(target.iter().all(|&c| c > 0));
    }

    #[test]
    fn thread_pool_is_initialized_once_across_engine_calls() {
        let idx: Vec<i32> = (0..2048).map(|i| i % 50).collect();
        let vals = vec![1i32; idx.len()];
        for _ in 0..8 {
            let mut target = vec![0i32; 50];
            execute::<i32, Sum>(&mut target, &idx, &vals, &ExecPolicy::with_threads(4));
            let mut target = vec![0i32; 50];
            execute::<i32, Sum>(
                &mut target,
                &idx,
                &vals,
                &ExecPolicy::with_threads(4).partition(Partition::Privatized),
            );
            parallel_chunks(2048, 4, |_, r| r.len());
        }
        assert_eq!(
            pool_initializations(),
            1,
            "engine calls must reuse one persistent pool, not spawn threads per call"
        );
    }

    #[test]
    fn all_conflict_single_hot_index_is_correct_under_both_partitions() {
        let idx = vec![7i32; 3000];
        let vals = vec![1i32; 3000];
        for partition in [Partition::OwnerComputes, Partition::Privatized] {
            let mut target = vec![0i32; 16];
            let report = execute::<i32, Sum>(
                &mut target,
                &idx,
                &vals,
                &ExecPolicy::with_threads(8).partition(partition),
            );
            assert_eq!(target[7], 3000, "{partition:?}");
            assert_eq!(target.iter().sum::<i32>(), 3000);
            assert_eq!(report.workers.iter().map(|w| w.items).sum::<usize>(), 3000);
        }
    }

    #[test]
    fn empty_and_tiny_streams_fall_back_to_one_inline_task() {
        let mut target = vec![9i32; 4];
        let report = execute::<i32, Sum>(&mut target, &[], &[], &ExecPolicy::with_threads(8));
        assert_eq!(report.threads_used(), 1);
        assert_eq!(target, vec![9; 4]);

        let report =
            execute::<i32, Sum>(&mut target, &[1, 1], &[5, 7], &ExecPolicy::with_threads(8));
        assert_eq!(report.threads_used(), 1);
        assert_eq!(target[1], 21);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut target = vec![0i32; 2];
        let policy = ExecPolicy { threads: 0, ..ExecPolicy::default() };
        execute::<i32, Sum>(&mut target, &[0], &[1], &policy);
    }

    #[cfg(feature = "count")]
    #[test]
    fn worker_instruction_counts_are_charged_to_the_caller() {
        let idx: Vec<i32> = (0..4096).map(|i| i % 64).collect();
        let vals = vec![1i32; idx.len()];
        let mut target = vec![0i32; 64];
        // Pin the portable backend: the native path does not run the
        // emulated instruction stream at all.
        let policy = ExecPolicy::with_threads(4).backend(BackendChoice::Portable);
        let ((), counted) = invector_simd::count::with(|| {
            execute::<i32, Sum>(&mut target, &idx, &vals, &policy);
        });
        assert!(counted > 0, "parallel SIMD work must surface in the caller's counter");
    }

    #[test]
    fn execute_epoch_matches_execute_and_reuses_scratch() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(105);
        let idx: Vec<i32> = (0..3000).map(|_| rng.gen_range(0..64)).collect();
        let vals: Vec<f32> = (0..3000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let policy = ExecPolicy::with_threads(3);
        let mut expect = vec![0.0f32; 64];
        execute::<f32, Sum>(&mut expect, &idx, &vals, &policy);

        let mut scratch = EpochScratch::new();
        let mut got = vec![0.0f32; 64];
        execute_epoch::<f32, Sum>(
            &mut got,
            idx.iter().copied().zip(vals.iter().copied()),
            &mut scratch,
            &policy,
        );
        assert!(got.iter().zip(&expect).all(|(a, b)| a.to_bits() == b.to_bits()));

        // A second, smaller epoch reuses the warmed buffers.
        let cap = scratch.capacity();
        assert!(cap >= 3000);
        execute_epoch::<f32, Sum>(&mut got, [(0, 1.0f32), (1, 2.0)], &mut scratch, &policy);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn parallel_chunks_covers_the_range_in_task_order() {
        let ranges = parallel_chunks(1000, 4, |task, range| (task, range));
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].1.start, 0);
        assert_eq!(ranges.last().unwrap().1.end, 1000);
        for (i, (task, _)) in ranges.iter().enumerate() {
            assert_eq!(*task, i);
        }
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1.end, pair[1].1.start);
        }
    }

    #[test]
    fn plan_reuse_across_streams_with_same_keys() {
        // Kernels build one plan per index set and run it many times.
        let keys: Vec<i32> = (0..2048).map(|i| (i * 31) % 128).collect();
        let policy = ExecPolicy::with_threads(4);
        let plan = ExecPlan::new(&keys, 128, &policy);
        let mut total = vec![0i64; 128];
        for round in 1..=3i64 {
            let vals: Vec<i64> = keys.iter().map(|_| round).collect();
            let mut target = vec![0i64; 128];
            run_plan::<i64, Sum, (), _>(&plan, &mut target, false, |ctx, view| {
                let lo = ctx.lo as i32;
                if let TaskItems::Picked(positions) = &ctx.items {
                    let rebased: Vec<i32> =
                        positions.iter().map(|&p| keys[p as usize] - lo).collect();
                    let gathered: Vec<i64> = positions.iter().map(|&p| vals[p as usize]).collect();
                    serial_accumulate::<i64, Sum>(view, &rebased, &gathered);
                }
            });
            for (t, v) in total.iter_mut().zip(&target) {
                *t += v;
            }
        }
        assert_eq!(total.iter().sum::<i64>(), 2048 * 6);
    }
}
