//! MIMD × SIMD accumulation — the extension the paper scopes out.
//!
//! The paper evaluates single-core SIMD only ("MIMD parallelization is a
//! tangential issue"). This module provides the natural composition: the
//! input stream is partitioned across threads, each thread runs in-vector
//! reduction into a private reduction array (so threads never contend on
//! the target), and the private arrays are folded into the target at the
//! end — the same privatization structure Algorithm 2 uses within a single
//! vector, lifted to threads.

use invector_simd::SimdElement;

use crate::accumulate::{invec_accumulate, InvecStats};
use crate::ops::ReduceOp;

/// Accumulates `vals[j]` into `target[idx[j]]` using `threads` worker
/// threads, each running SIMD in-vector reduction on its share of the
/// stream. Semantically identical to
/// [`serial_accumulate`](crate::accumulate::serial_accumulate) (exactly for
/// integer/min/max operators; up to reassociation for float sums).
///
/// Returns the per-thread statistics, in stream order.
///
/// # Panics
///
/// Panics if `threads == 0`, on index/value length mismatch, or if an index
/// is out of bounds for `target`.
///
/// # Example
///
/// ```
/// use invector_core::{ops::Sum, parallel::parallel_invec_accumulate};
///
/// let idx: Vec<i32> = (0..1000).map(|i| i % 10).collect();
/// let vals = vec![1i32; 1000];
/// let mut hist = vec![0i32; 10];
/// parallel_invec_accumulate::<i32, Sum>(&mut hist, &idx, &vals, 4);
/// assert!(hist.iter().all(|&c| c == 100));
/// ```
pub fn parallel_invec_accumulate<T, Op>(
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
    threads: usize,
) -> Vec<InvecStats>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    assert!(threads > 0, "need at least one thread");
    assert_eq!(idx.len(), vals.len(), "index/value length mismatch");
    if threads == 1 || idx.len() < 2 * threads {
        return vec![invec_accumulate::<T, Op>(target, idx, vals)];
    }
    let chunk = idx.len().div_ceil(threads);
    let len = target.len();
    // Each worker reduces into a private array; the workers return both the
    // private array and their stats.
    let results: Vec<(Vec<T>, InvecStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = idx
            .chunks(chunk)
            .zip(vals.chunks(chunk))
            .map(|(idx_part, val_part)| {
                scope.spawn(move || {
                    let mut private = vec![Op::identity(); len];
                    let stats = invec_accumulate::<T, Op>(&mut private, idx_part, val_part);
                    (private, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut all_stats = Vec::with_capacity(results.len());
    for (private, stats) in results {
        for (t, p) in target.iter_mut().zip(&private) {
            *t = Op::combine(*t, *p);
        }
        all_stats.push(stats);
    }
    all_stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::serial_accumulate;
    use crate::ops::{Min, Sum};
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_serial_for_integers_across_thread_counts() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(55);
        let n = 5000;
        let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-10..10)).collect();
        let mut expect = vec![0i32; 64];
        serial_accumulate::<i32, Sum>(&mut expect, &idx, &vals);
        for threads in [1, 2, 3, 8, 32] {
            let mut got = vec![0i32; 64];
            let stats = parallel_invec_accumulate::<i32, Sum>(&mut got, &idx, &vals, threads);
            assert_eq!(got, expect, "{threads} threads");
            assert!(!stats.is_empty() && stats.len() <= threads);
        }
    }

    #[test]
    fn min_operator_is_exact_in_parallel() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(56);
        let idx: Vec<i32> = (0..2000).map(|_| rng.gen_range(0..16)).collect();
        let vals: Vec<f32> = (0..2000).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut expect = vec![f32::INFINITY; 16];
        serial_accumulate::<f32, Min>(&mut expect, &idx, &vals);
        let mut got = vec![f32::INFINITY; 16];
        parallel_invec_accumulate::<f32, Min>(&mut got, &idx, &vals, 4);
        assert_eq!(got, expect);
    }

    #[test]
    fn preexisting_target_contents_are_combined_not_replaced() {
        let mut target = vec![100i32, 200];
        parallel_invec_accumulate::<i32, Sum>(&mut target, &[0, 1, 1], &[1, 2, 3], 2);
        assert_eq!(target, vec![101, 205]);
    }

    #[test]
    fn tiny_inputs_fall_back_to_one_worker() {
        let mut target = vec![0i32; 4];
        let stats = parallel_invec_accumulate::<i32, Sum>(&mut target, &[1, 1], &[5, 7], 8);
        assert_eq!(stats.len(), 1);
        assert_eq!(target[1], 12);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut target = vec![9i32; 2];
        parallel_invec_accumulate::<i32, Sum>(&mut target, &[], &[], 4);
        assert_eq!(target, vec![9, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut target = vec![0i32; 2];
        parallel_invec_accumulate::<i32, Sum>(&mut target, &[0], &[1], 0);
    }

    #[test]
    fn float_sums_close_to_serial() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(57);
        let idx: Vec<i32> = (0..4000).map(|_| rng.gen_range(0..8)).collect();
        let vals: Vec<f32> = (0..4000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut expect = vec![0.0f32; 8];
        serial_accumulate::<f32, Sum>(&mut expect, &idx, &vals);
        let mut got = vec![0.0f32; 8];
        parallel_invec_accumulate::<f32, Sum>(&mut got, &idx, &vals, 4);
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }
}
