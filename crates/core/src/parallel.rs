//! MIMD × SIMD accumulation — compatibility wrapper over [`crate::exec`].
//!
//! The original seed implementation lived here: it spawned fresh OS threads
//! per call and gave every worker a full-length private copy of the target
//! (`O(threads × |target|)` memory). Both problems are fixed by the
//! execution engine, and this module is now a thin compatibility shim:
//! [`parallel_invec_accumulate`] forwards to [`crate::exec::execute`] with a
//! chunked-privatization, deterministic policy, which reproduces the old
//! semantics (stream chunks, in-vector reduction per worker, chunk-ordered
//! fold) with workers drawn from the persistent pool and private arrays
//! bounded to each worker's touched index range.
//!
//! New code should call [`crate::exec::execute`] directly and pick an
//! [`ExecPolicy`](crate::exec::ExecPolicy); owner-computes partitioning is
//! usually the better default and is exact for float sums under the
//! `Serial` in-worker variant.

use invector_simd::SimdElement;

use crate::accumulate::InvecStats;
use crate::exec::{execute, ExecPolicy, ExecVariant, Partition};
use crate::ops::ReduceOp;

/// Accumulates `vals[j]` into `target[idx[j]]` using up to `threads` pool
/// workers, each running SIMD in-vector reduction on its chunk of the
/// stream. Semantically identical to
/// [`serial_accumulate`](crate::accumulate::serial_accumulate) (exactly for
/// integer/min/max operators; up to reassociation for float sums, but
/// deterministically so: results are bit-identical across runs at a fixed
/// thread count).
///
/// Returns the per-worker statistics, in stream order. For the richer
/// report (touched ranges, private allocation sizes), call
/// [`crate::exec::execute`].
///
/// # Panics
///
/// Panics if `threads == 0`, on index/value length mismatch, or if an index
/// is out of bounds for `target`.
///
/// # Example
///
/// ```
/// use invector_core::{ops::Sum, parallel::parallel_invec_accumulate};
///
/// let idx: Vec<i32> = (0..1000).map(|i| i % 10).collect();
/// let vals = vec![1i32; 1000];
/// let mut hist = vec![0i32; 10];
/// parallel_invec_accumulate::<i32, Sum>(&mut hist, &idx, &vals, 4);
/// assert!(hist.iter().all(|&c| c == 100));
/// ```
pub fn parallel_invec_accumulate<T, Op>(
    target: &mut [T],
    idx: &[i32],
    vals: &[T],
    threads: usize,
) -> Vec<InvecStats>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let policy = ExecPolicy::with_threads(threads)
        .variant(ExecVariant::Invec)
        .partition(Partition::Privatized)
        .deterministic(true);
    let report = execute::<T, Op>(target, idx, vals, &policy);
    report.workers.into_iter().map(|w| w.stats).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accumulate::serial_accumulate;
    use crate::exec::pool_initializations;
    use crate::ops::{Min, Sum};
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_serial_for_integers_across_thread_counts() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(55);
        let n = 5000;
        let idx: Vec<i32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
        let vals: Vec<i32> = (0..n).map(|_| rng.gen_range(-10..10)).collect();
        let mut expect = vec![0i32; 64];
        serial_accumulate::<i32, Sum>(&mut expect, &idx, &vals);
        for threads in [1, 2, 3, 8, 32] {
            let mut got = vec![0i32; 64];
            let stats = parallel_invec_accumulate::<i32, Sum>(&mut got, &idx, &vals, threads);
            assert_eq!(got, expect, "{threads} threads");
            assert!(!stats.is_empty() && stats.len() <= threads);
        }
    }

    #[test]
    fn min_operator_is_exact_in_parallel() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(56);
        let idx: Vec<i32> = (0..2000).map(|_| rng.gen_range(0..16)).collect();
        let vals: Vec<f32> = (0..2000).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mut expect = vec![f32::INFINITY; 16];
        serial_accumulate::<f32, Min>(&mut expect, &idx, &vals);
        let mut got = vec![f32::INFINITY; 16];
        parallel_invec_accumulate::<f32, Min>(&mut got, &idx, &vals, 4);
        assert_eq!(got, expect);
    }

    #[test]
    fn preexisting_target_contents_are_combined_not_replaced() {
        let mut target = vec![100i32, 200];
        parallel_invec_accumulate::<i32, Sum>(&mut target, &[0, 1, 1], &[1, 2, 3], 2);
        assert_eq!(target, vec![101, 205]);
    }

    #[test]
    fn tiny_inputs_fall_back_to_one_worker() {
        let mut target = vec![0i32; 4];
        let stats = parallel_invec_accumulate::<i32, Sum>(&mut target, &[1, 1], &[5, 7], 8);
        assert_eq!(stats.len(), 1);
        assert_eq!(target[1], 12);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut target = vec![9i32; 2];
        parallel_invec_accumulate::<i32, Sum>(&mut target, &[], &[], 4);
        assert_eq!(target, vec![9, 9]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut target = vec![0i32; 2];
        parallel_invec_accumulate::<i32, Sum>(&mut target, &[0], &[1], 0);
    }

    #[test]
    fn float_sums_close_to_serial_and_bit_identical_across_runs() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(57);
        let idx: Vec<i32> = (0..4000).map(|_| rng.gen_range(0..8)).collect();
        let vals: Vec<f32> = (0..4000).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut expect = vec![0.0f32; 8];
        serial_accumulate::<f32, Sum>(&mut expect, &idx, &vals);
        let mut got = vec![0.0f32; 8];
        parallel_invec_accumulate::<f32, Sum>(&mut got, &idx, &vals, 4);
        // Reassociation error across 4 chunks of ~1000 unit-scale values is
        // far below the seed's loose 1e-2; 1e-3 holds with margin.
        for (a, b) in got.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
        // Deterministic mode: reruns are bit-identical, not merely close.
        for _ in 0..5 {
            let mut again = vec![0.0f32; 8];
            parallel_invec_accumulate::<f32, Sum>(&mut again, &idx, &vals, 4);
            assert!(got.iter().zip(&again).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn wrapper_reuses_the_persistent_pool() {
        let idx: Vec<i32> = (0..1024).map(|i| i % 32).collect();
        let vals = vec![1i32; idx.len()];
        for _ in 0..4 {
            let mut target = vec![0i32; 32];
            parallel_invec_accumulate::<i32, Sum>(&mut target, &idx, &vals, 4);
        }
        assert_eq!(pool_initializations(), 1);
    }
}
