//! In-vector reduction — the paper's core contribution (§3).
//!
//! Given a SIMD vector of data values and a vector of reduction indices that
//! may contain duplicates, in-vector reduction folds the lanes that share an
//! index *inside the vector* (legal because the operator is associative) so
//! that the surviving lanes hold partial results for **distinct** indices and
//! can be scattered to memory without write conflicts.
//!
//! Two implementations are provided:
//!
//! * [`reduce_alg1`] — Algorithm 1: merge every conflicting group into its
//!   first lane. Cost ≈ `2 + 8·D1` instructions where `D1` is the number of
//!   distinct conflicting groups (≤ N/2).
//! * [`reduce_alg2`] — Algorithm 2: split lanes into *two* conflict-free
//!   subsets updating two arrays (the main target and an [`AuxArray`]), so
//!   only groups of three or more occurrences need merging. Cost ≈
//!   `7 + 8·D2` with `D2 ≤ ⌊N/3⌋`, a win under heavy conflicts.

use invector_simd::{conflict_free_subset, Mask, SimdElement, SimdVec};

use crate::ops::ReduceOp;

/// In-vector reduction, Algorithm 1 of the paper.
///
/// Reduces the `active` lanes of `vdata` by the indices in `vindex`: after
/// the call, for every distinct index held by active lanes, the *first*
/// active lane holding it contains `Op::combine` of all active lanes with
/// that index. The returned mask selects exactly those first-occurrence
/// lanes; they hold distinct indices, so `mask_scatter` through the returned
/// mask is conflict-free.
///
/// Lanes outside the returned mask are left with stale values and must not
/// be written to memory.
///
/// Returns the conflict-free mask and the number of merge iterations
/// executed (`D1`, the count of distinct conflicting index groups).
///
/// # Example
///
/// ```
/// use invector_core::{invec, ops::Sum};
/// use invector_simd::{F32x16, I32x16, Mask16};
///
/// let idx = I32x16::from_array([0, 4, 0, 5, 1, 1, 1, 1, 2, 3, 6, 7, 8, 9, 10, 11]);
/// let mut data = F32x16::splat(1.0);
/// let (safe, d1) = invec::reduce_alg1::<f32, Sum, 16>(Mask16::all(), idx, &mut data);
/// assert_eq!(d1, 2); // two conflicting groups: index 0 and index 1
/// assert_eq!(data.extract(0), 2.0); // lanes 0 and 2 merged
/// assert_eq!(data.extract(4), 4.0); // lanes 4..8 merged
/// assert!(safe.test(0) && !safe.test(2));
/// ```
pub fn reduce_alg1<T, Op, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<T, N>,
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mret = conflict_free_subset(active, vindex);
    let mut msafe = mret;
    let mut d1 = 0u32;
    // Iterate over the conflicting active lanes, one distinct index group per
    // step. `active.and_not(msafe)` are the lanes still to be merged.
    while let Some(i) = active.and_not(msafe).first_set() {
        d1 += 1;
        // All active lanes holding the same index as lane i.
        let mreduce = active & vindex.eq_broadcast(vindex.extract(i));
        // Fold them and park the result in the group's first lane, which is
        // by construction a member of `mret`.
        let res = vdata.reduce(mreduce, Op::identity(), Op::combine);
        let first = mreduce.first_set().expect("group contains lane i");
        *vdata = vdata.insert(first, res);
        // The merged lanes are no longer useful.
        msafe |= mreduce;
    }
    (mret, d1)
}

/// An auxiliary reduction array backing [`reduce_alg2`].
///
/// Algorithm 2 routes the *second* occurrence of each conflicting index to a
/// shadow copy of the reduction target so that it never needs merging inside
/// the vector. The shadow must be combined into the real target once the
/// edge stream has been consumed — call [`AuxArray::merge_into`].
///
/// The array tracks which elements were touched so the merge costs
/// `O(touched)` rather than `O(len)`.
#[derive(Debug, Clone)]
pub struct AuxArray<T, Op> {
    data: Vec<T>,
    touched: Vec<i32>,
    _op: std::marker::PhantomData<Op>,
}

impl<T: SimdElement, Op: ReduceOp<T>> AuxArray<T, Op> {
    /// Creates a shadow array of `len` identity elements.
    pub fn new(len: usize) -> Self {
        AuxArray {
            data: vec![Op::identity(); len],
            touched: Vec::new(),
            _op: std::marker::PhantomData,
        }
    }

    /// The shadow array length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the shadow array has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of accumulations routed through the shadow since the last merge.
    pub fn touched(&self) -> usize {
        self.touched.len()
    }

    /// Folds the shadow contents into `target` and resets the shadow to
    /// identity, ready for reuse.
    ///
    /// # Panics
    ///
    /// Panics if `target.len() != self.len()`.
    pub fn merge_into(&mut self, target: &mut [T]) {
        assert_eq!(target.len(), self.data.len(), "aux array / target length mismatch");
        for &i in &self.touched {
            let i = i as usize;
            target[i] = Op::combine(target[i], self.data[i]);
            self.data[i] = Op::identity();
        }
        self.touched.clear();
    }

    /// Accumulates `value` at `index` in the shadow.
    #[inline]
    fn accumulate(&mut self, index: i32, value: T) {
        let slot = &mut self.data[index as usize];
        if *slot == Op::identity() {
            self.touched.push(index);
        }
        *slot = Op::combine(*slot, value);
    }
}

/// In-vector reduction, Algorithm 2 of the paper (§3.4 optimization).
///
/// Splits the active lanes into two conflict-free subsets: the first
/// occurrences of each index (returned mask, to be scattered by the caller
/// into the main target) and the second occurrences, which this function
/// accumulates into `aux` directly. Only indices occurring three or more
/// times require in-vector merge iterations, bounding the loop by `⌊N/3⌋`.
///
/// After the data stream is exhausted the caller must fold the shadow into
/// the real target with [`AuxArray::merge_into`].
///
/// Returns the main-array conflict-free mask and `D2` (merge iterations).
///
/// # Panics
///
/// Panics if an active lane's index is out of bounds for `aux`.
///
/// # Example
///
/// The extreme case from §3.4: two identical groups of eight distinct
/// indices need **zero** merge iterations.
///
/// ```
/// use invector_core::{invec, ops::Sum};
/// use invector_simd::{F32x16, I32x16, Mask16};
///
/// let idx = I32x16::from_array([0, 1, 2, 3, 4, 5, 6, 7, 0, 1, 2, 3, 4, 5, 6, 7]);
/// let mut data = F32x16::splat(1.0);
/// let mut aux = invec::AuxArray::<f32, Sum>::new(8);
/// let (safe, d2) = invec::reduce_alg2::<f32, Sum, 16>(Mask16::all(), idx, &mut data, &mut aux);
/// assert_eq!(d2, 0);
/// assert_eq!(safe.count_ones(), 8);
///
/// let mut target = vec![0.0f32; 8];
/// data.mask_scatter(safe, &mut target, idx);
/// aux.merge_into(&mut target);
/// assert_eq!(target, vec![2.0; 8]);
/// ```
pub fn reduce_alg2<T, Op, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<T, N>,
    aux: &mut AuxArray<T, Op>,
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mret1 = conflict_free_subset(active, vindex);
    let mret2 = conflict_free_subset(active.and_not(mret1), vindex);
    let mut d2 = 0u32;
    // Lanes that are neither first nor second occurrence of their index.
    let mut remaining = active.and_not(mret1).and_not(mret2);
    while let Some(i) = remaining.first_set() {
        d2 += 1;
        // Matching lanes, excluding the second-occurrence subset (those go to
        // the aux array untouched). The group's first lane is its mret1 lane.
        let mreduce = active.and_not(mret2) & vindex.eq_broadcast(vindex.extract(i));
        let res = vdata.reduce(mreduce, Op::identity(), Op::combine);
        let first = mreduce.first_set().expect("group contains lane i");
        *vdata = vdata.insert(first, res);
        remaining = remaining.and_not(mreduce);
    }
    // Route the second-occurrence subset into the shadow array. This is a
    // gather-combine-scatter on distinct indices (mret2 is conflict-free).
    invector_simd::count::bump(3);
    for lane in mret2.iter_set() {
        aux.accumulate(vindex.extract(lane), vdata.extract(lane));
    }
    (mret1, d2)
}

/// In-vector reduction of `K` data vectors sharing one index vector
/// (Algorithm 1 applied component-wise).
///
/// Irregular applications often reduce several values per index — Moldyn
/// accumulates a 3-D force per particle, hash aggregation maintains
/// `count / sum / sum-of-squares` per group. The conflict structure depends
/// only on the index vector, so one merge schedule serves all `K`
/// components; only the horizontal reductions are repeated per component.
///
/// Returns the same conflict-free mask and `D1` as [`reduce_alg1`].
///
/// # Example
///
/// ```
/// use invector_core::{invec, ops::Sum};
/// use invector_simd::{F32x16, I32x16, Mask16};
///
/// let idx = I32x16::splat(0);
/// let mut xyz = [F32x16::splat(1.0), F32x16::splat(2.0), F32x16::splat(3.0)];
/// let (safe, _) = invec::reduce_alg1_arr::<f32, Sum, 3, 16>(Mask16::all(), idx, &mut xyz);
/// assert_eq!(safe.count_ones(), 1);
/// assert_eq!(xyz[0].extract(0), 16.0);
/// assert_eq!(xyz[1].extract(0), 32.0);
/// assert_eq!(xyz[2].extract(0), 48.0);
/// ```
pub fn reduce_alg1_arr<T, Op, const K: usize, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut [SimdVec<T, N>; K],
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mret = conflict_free_subset(active, vindex);
    let mut msafe = mret;
    let mut d1 = 0u32;
    while let Some(i) = active.and_not(msafe).first_set() {
        d1 += 1;
        let mreduce = active & vindex.eq_broadcast(vindex.extract(i));
        let first = mreduce.first_set().expect("group contains lane i");
        for component in vdata.iter_mut() {
            let res = component.reduce(mreduce, Op::identity(), Op::combine);
            *component = component.insert(first, res);
        }
        msafe |= mreduce;
    }
    (mret, d1)
}

/// Auxiliary reduction arrays for the multi-component Algorithm 2
/// ([`reduce_alg2_arr`]): one shadow array per data component, sharing a
/// single touched-index list.
#[derive(Debug, Clone)]
pub struct AuxArrays<T, Op, const K: usize> {
    data: [Vec<T>; K],
    touched: Vec<i32>,
    _op: std::marker::PhantomData<Op>,
}

impl<T: SimdElement, Op: ReduceOp<T>, const K: usize> AuxArrays<T, Op, K> {
    /// Creates `K` shadow arrays of `len` identity elements.
    pub fn new(len: usize) -> Self {
        AuxArrays {
            data: std::array::from_fn(|_| vec![Op::identity(); len]),
            touched: Vec::new(),
            _op: std::marker::PhantomData,
        }
    }

    /// The shadow array length.
    pub fn len(&self) -> usize {
        self.data[0].len()
    }

    /// `true` if the shadow arrays have zero length.
    pub fn is_empty(&self) -> bool {
        self.data[0].is_empty()
    }

    /// Number of accumulations routed through the shadows since the last
    /// merge.
    pub fn touched(&self) -> usize {
        self.touched.len()
    }

    /// Folds every shadow component into its target and resets the shadows.
    ///
    /// # Panics
    ///
    /// Panics if a target length differs from [`len`](Self::len).
    pub fn merge_into(&mut self, targets: [&mut [T]; K]) {
        for target in &targets {
            assert_eq!(target.len(), self.data[0].len(), "aux/target length mismatch");
        }
        let mut targets = targets;
        for &i in &self.touched {
            let i = i as usize;
            for (c, target) in targets.iter_mut().enumerate() {
                target[i] = Op::combine(target[i], self.data[c][i]);
                self.data[c][i] = Op::identity();
            }
        }
        self.touched.clear();
    }

    #[inline]
    fn accumulate(&mut self, index: i32, values: [T; K]) {
        let i = index as usize;
        if self.data[0][i] == Op::identity() {
            self.touched.push(index);
        }
        for (c, v) in values.into_iter().enumerate() {
            self.data[c][i] = Op::combine(self.data[c][i], v);
        }
    }
}

/// In-vector reduction of `K` data vectors via **Algorithm 2**: the second
/// occurrence of each conflicting index routes all `K` components to the
/// [`AuxArrays`] shadow, so only third-and-later occurrences need merge
/// iterations (`D2 ≤ ⌊N/3⌋`).
///
/// The multi-component analogue of [`reduce_alg2`]; see [`reduce_alg1_arr`]
/// for why components share one merge schedule.
///
/// # Panics
///
/// Panics if an active lane's index is out of bounds for `aux`.
pub fn reduce_alg2_arr<T, Op, const K: usize, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut [SimdVec<T, N>; K],
    aux: &mut AuxArrays<T, Op, K>,
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    let mret1 = conflict_free_subset(active, vindex);
    let mret2 = conflict_free_subset(active.and_not(mret1), vindex);
    let mut d2 = 0u32;
    let mut remaining = active.and_not(mret1).and_not(mret2);
    while let Some(i) = remaining.first_set() {
        d2 += 1;
        let mreduce = active.and_not(mret2) & vindex.eq_broadcast(vindex.extract(i));
        let first = mreduce.first_set().expect("group contains lane i");
        for component in vdata.iter_mut() {
            let res = component.reduce(mreduce, Op::identity(), Op::combine);
            *component = component.insert(first, res);
        }
        remaining = remaining.and_not(mreduce);
    }
    invector_simd::count::bump(3);
    for lane in mret2.iter_set() {
        aux.accumulate(vindex.extract(lane), std::array::from_fn(|c| vdata[c].extract(lane)));
    }
    (mret1, d2)
}

/// Convenience wrapper: in-vector **sum** via Algorithm 1 (`invec_add` in the
/// paper's API, Figure 7).
///
/// See [`reduce_alg1`] for semantics of the returned mask.
pub fn invec_add<const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<f32, N>,
) -> Mask<N> {
    reduce_alg1::<f32, crate::ops::Sum, N>(active, vindex, vdata).0
}

/// Convenience wrapper: in-vector **minimum** via Algorithm 1 (`invec_min`).
pub fn invec_min<const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<f32, N>,
) -> Mask<N> {
    reduce_alg1::<f32, crate::ops::Min, N>(active, vindex, vdata).0
}

/// Convenience wrapper: in-vector **maximum** via Algorithm 1 (`invec_max`).
pub fn invec_max<const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<f32, N>,
) -> Mask<N> {
    reduce_alg1::<f32, crate::ops::Max, N>(active, vindex, vdata).0
}

// ---------------------------------------------------------------------------
// Backend dispatch: route the per-vector fold to real AVX-512 when selected.
// ---------------------------------------------------------------------------

/// Backend-dispatched [`reduce_alg1`].
///
/// With [`Backend::Avx512`](crate::backend::Backend::Avx512), the conflict
/// detection and merge schedule run on real `vpconflictd`
/// (`invector_simd::arch::avx512`) whenever a native realization exists for
/// `(T, Op, N)` — currently sum/min/max over `f32` and `i32` at `N = 16`,
/// covering every kernel in this workspace. Other combinations, the
/// narrower ISAs (AVX2 / NEON accelerate only the fused whole-stream
/// drivers, not this per-vector API), and
/// [`Backend::Portable`](crate::backend::Backend::Portable) run the
/// portable model.
///
/// Results are bitwise identical across backends (the native merge uses
/// the same sequential identity-seeded fold); the only observable
/// difference is that the native path does not charge the portable
/// instruction counter.
pub fn reduce_alg1_with<T, Op, const N: usize>(
    backend: crate::backend::Backend,
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<T, N>,
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    if backend == crate::backend::Backend::Avx512 {
        if let Some(out) = native_alg1::<T, Op, N>(active, vindex, vdata) {
            return out;
        }
    }
    reduce_alg1::<T, Op, N>(active, vindex, vdata)
}

/// Backend-dispatched [`reduce_alg1_arr`]; the native realization covers
/// `f32` sums at `N = 16` for any component count `K` (the Moldyn / Euler /
/// aggregation shape).
pub fn reduce_alg1_arr_with<T, Op, const K: usize, const N: usize>(
    backend: crate::backend::Backend,
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut [SimdVec<T, N>; K],
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    if backend == crate::backend::Backend::Avx512 {
        if let Some(out) = native_alg1_arr::<T, Op, K, N>(active, vindex, vdata) {
            return out;
        }
    }
    reduce_alg1_arr::<T, Op, K, N>(active, vindex, vdata)
}

/// Backend-dispatched [`reduce_alg2`]; the native realization covers `f32`
/// sums at `N = 16` and reproduces the portable aux-array bookkeeping
/// (touched-slot tracking included) exactly.
pub fn reduce_alg2_with<T, Op, const N: usize>(
    backend: crate::backend::Backend,
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<T, N>,
    aux: &mut AuxArray<T, Op>,
) -> (Mask<N>, u32)
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    if backend == crate::backend::Backend::Avx512 {
        if let Some(out) = native_alg2::<T, Op, N>(active, vindex, vdata, aux) {
            return out;
        }
    }
    reduce_alg2::<T, Op, N>(active, vindex, vdata, aux)
}

/// Reinterprets a lane array as its concrete type after a `TypeId` match.
///
/// # Safety
///
/// Caller must have checked `TypeId::of::<Src>() == TypeId::of::<Dst>()`
/// (modulo the array layer), making this a same-type copy.
#[cfg(target_arch = "x86_64")]
unsafe fn reinterpret_lanes<Src: Copy, Dst: Copy>(src: &Src) -> Dst {
    debug_assert_eq!(std::mem::size_of::<Src>(), std::mem::size_of::<Dst>());
    // SAFETY: caller guarantees Src and Dst are the same type.
    unsafe { std::mem::transmute_copy::<Src, Dst>(src) }
}

#[cfg(target_arch = "x86_64")]
fn native_alg1<T, Op, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<T, N>,
) -> Option<(Mask<N>, u32)>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    use invector_simd::native;
    use std::any::TypeId;
    if N != 16 || !native::available() {
        return None;
    }
    // SAFETY: N == 16 checked above, so [i32; N] is [i32; 16].
    let idx: [i32; 16] = unsafe { reinterpret_lanes(vindex.as_array()) };
    let bits = active.bits() as u16;
    let t = TypeId::of::<T>();
    let op = TypeId::of::<Op>();
    macro_rules! dispatch {
        ($ty:ty, $opty:ty, $f:path) => {
            if t == TypeId::of::<$ty>() && op == TypeId::of::<$opty>() {
                // SAFETY: T == $ty and N == 16 per the checks above.
                let mut buf: [$ty; 16] = unsafe { reinterpret_lanes(vdata.as_array()) };
                // SAFETY: availability checked; the primitive touches no
                // memory beyond `buf`, so indices need no validation.
                let (mask, d1) = unsafe { $f(bits, idx, &mut buf) };
                // SAFETY: same-type copy back (see above).
                *vdata = SimdVec::from_array(unsafe { reinterpret_lanes(&buf) });
                return Some((Mask::from_bits(u32::from(mask)), d1));
            }
        };
    }
    dispatch!(f32, crate::ops::Sum, native::invec_add_f32);
    dispatch!(f32, crate::ops::Min, native::invec_min_f32);
    dispatch!(f32, crate::ops::Max, native::invec_max_f32);
    dispatch!(i32, crate::ops::Sum, native::invec_add_i32);
    dispatch!(i32, crate::ops::Min, native::invec_min_i32);
    dispatch!(i32, crate::ops::Max, native::invec_max_i32);
    None
}

#[cfg(target_arch = "x86_64")]
fn native_alg1_arr<T, Op, const K: usize, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut [SimdVec<T, N>; K],
) -> Option<(Mask<N>, u32)>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    use invector_simd::native;
    use std::any::TypeId;
    if N != 16
        || !native::available()
        || TypeId::of::<T>() != TypeId::of::<f32>()
        || TypeId::of::<Op>() != TypeId::of::<crate::ops::Sum>()
    {
        return None;
    }
    // SAFETY: N == 16 and T == f32 per the checks above.
    let idx: [i32; 16] = unsafe { reinterpret_lanes(vindex.as_array()) };
    let mut bufs: [[f32; 16]; K] =
        std::array::from_fn(|c| unsafe { reinterpret_lanes(vdata[c].as_array()) });
    // SAFETY: availability checked; no memory beyond `bufs` is touched.
    let (mask, d1) = unsafe { native::invec_add_arr_f32(active.bits() as u16, idx, &mut bufs) };
    for (c, buf) in bufs.iter().enumerate() {
        // SAFETY: same-type copy back.
        vdata[c] = SimdVec::from_array(unsafe { reinterpret_lanes(buf) });
    }
    Some((Mask::from_bits(u32::from(mask)), d1))
}

#[cfg(target_arch = "x86_64")]
fn native_alg2<T, Op, const N: usize>(
    active: Mask<N>,
    vindex: SimdVec<i32, N>,
    vdata: &mut SimdVec<T, N>,
    aux: &mut AuxArray<T, Op>,
) -> Option<(Mask<N>, u32)>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    use invector_simd::native;
    use std::any::TypeId;
    if N != 16
        || !native::available()
        || TypeId::of::<T>() != TypeId::of::<f32>()
        || TypeId::of::<Op>() != TypeId::of::<crate::ops::Sum>()
    {
        return None;
    }
    // SAFETY: N == 16 and T == f32 per the checks above.
    let idx: [i32; 16] = unsafe { reinterpret_lanes(vindex.as_array()) };
    let mut buf: [f32; 16] = unsafe { reinterpret_lanes(vdata.as_array()) };
    // SAFETY: T == f32, so Vec<T> is Vec<f32>; the slice cast preserves
    // length and the element layout is identical.
    let aux_data: &mut [f32] = unsafe { &mut *(aux.data.as_mut_slice() as *mut [T] as *mut [f32]) };
    // SAFETY: availability checked; aux writes inside are bounds-checked.
    let (mask, d2) = unsafe {
        native::alg2_add_f32(active.bits() as u16, idx, &mut buf, aux_data, &mut aux.touched)
    };
    // SAFETY: same-type copy back.
    *vdata = SimdVec::from_array(unsafe { reinterpret_lanes(&buf) });
    Some((Mask::from_bits(u32::from(mask)), d2))
}

#[cfg(not(target_arch = "x86_64"))]
fn native_alg1<T, Op, const N: usize>(
    _active: Mask<N>,
    _vindex: SimdVec<i32, N>,
    _vdata: &mut SimdVec<T, N>,
) -> Option<(Mask<N>, u32)>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    None
}

#[cfg(not(target_arch = "x86_64"))]
fn native_alg1_arr<T, Op, const K: usize, const N: usize>(
    _active: Mask<N>,
    _vindex: SimdVec<i32, N>,
    _vdata: &mut [SimdVec<T, N>; K],
) -> Option<(Mask<N>, u32)>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    None
}

#[cfg(not(target_arch = "x86_64"))]
fn native_alg2<T, Op, const N: usize>(
    _active: Mask<N>,
    _vindex: SimdVec<i32, N>,
    _vdata: &mut SimdVec<T, N>,
    _aux: &mut AuxArray<T, Op>,
) -> Option<(Mask<N>, u32)>
where
    T: SimdElement,
    Op: ReduceOp<T>,
{
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Max, Min, Sum};
    use invector_simd::{F32x16, I32x16, Mask16};
    use std::collections::HashMap;

    /// Scalar reference: per-index reduction over active lanes.
    fn reference<T: SimdElement, Op: ReduceOp<T>>(
        active: Mask16,
        idx: [i32; 16],
        data: [T; 16],
    ) -> HashMap<i32, T> {
        let mut out = HashMap::new();
        for lane in active.iter_set() {
            let e = out.entry(idx[lane]).or_insert_with(Op::identity);
            *e = Op::combine(*e, data[lane]);
        }
        out
    }

    fn check_alg1<T: SimdElement, Op: ReduceOp<T>>(active: Mask16, idx: [i32; 16], data: [T; 16]) {
        let mut v = SimdVec::from_array(data);
        let (safe, d1) = reduce_alg1::<T, Op, 16>(active, I32x16::from_array(idx), &mut v);
        let expect = reference::<T, Op>(active, idx, data);
        // The safe mask holds one lane per distinct active index.
        assert_eq!(safe.count_ones() as usize, expect.len());
        let mut seen = std::collections::HashSet::new();
        for lane in safe.iter_set() {
            assert!(active.test(lane), "safe lane must be active");
            assert!(seen.insert(idx[lane]), "duplicate index in safe mask");
            assert_eq!(v.extract(lane), expect[&idx[lane]], "lane {lane}");
        }
        // D1 bound from §3.3: at most half the active lanes conflict distinctly.
        assert!(d1 <= 16 / 2);
    }

    #[test]
    fn alg1_no_conflicts_is_identity_pass() {
        let idx: [i32; 16] = std::array::from_fn(|i| i as i32);
        let data: [f32; 16] = std::array::from_fn(|i| i as f32);
        let mut v = F32x16::from_array(data);
        let (safe, d1) =
            reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v);
        assert_eq!(safe, Mask16::all());
        assert_eq!(d1, 0);
        assert_eq!(v.to_array(), data);
    }

    #[test]
    fn alg1_paper_figure5_example() {
        // Index vector from Figure 5 with unit data: group sizes become sums.
        let idx = [0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5];
        let mut v = F32x16::splat(1.0);
        let (safe, d1) =
            reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v);
        // Four distinct conflicting groups -> four iterations, as the figure shows.
        assert_eq!(d1, 4);
        assert_eq!(safe.bits(), 0b0000_0001_0001_0011);
        assert_eq!(v.extract(0), 2.0); // index 0 appears twice
        assert_eq!(v.extract(1), 6.0); // index 1 appears six times
        assert_eq!(v.extract(4), 4.0); // index 2 appears four times
        assert_eq!(v.extract(8), 4.0); // index 5 appears four times
    }

    #[test]
    fn alg1_all_lanes_same_index() {
        let data: [f32; 16] = std::array::from_fn(|i| (i + 1) as f32);
        let mut v = F32x16::from_array(data);
        let (safe, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::splat(3), &mut v);
        assert_eq!(d1, 1);
        assert_eq!(safe.count_ones(), 1);
        assert_eq!(v.extract(0), (1..=16).sum::<u32>() as f32);
    }

    #[test]
    fn alg1_respects_active_mask() {
        let idx = I32x16::splat(0);
        let data: [f32; 16] = std::array::from_fn(|i| i as f32);
        let mut v = F32x16::from_array(data);
        let active = Mask16::from_bits(0b1010);
        let (safe, _) = reduce_alg1::<f32, Sum, 16>(active, idx, &mut v);
        assert_eq!(safe, Mask16::from_bits(0b0010));
        assert_eq!(v.extract(1), 1.0 + 3.0);
    }

    #[test]
    fn alg1_empty_active_mask() {
        let mut v = F32x16::splat(1.0);
        let (safe, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::none(), I32x16::splat(0), &mut v);
        assert!(safe.is_empty());
        assert_eq!(d1, 0);
    }

    #[test]
    fn alg1_min_and_max_ops() {
        let idx = [0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7];
        let data: [f32; 16] = std::array::from_fn(|i| if i % 2 == 0 { 10.0 } else { -5.0 });
        check_alg1::<f32, Min>(Mask16::all(), idx, data);
        check_alg1::<f32, Max>(Mask16::all(), idx, data);
    }

    #[test]
    fn alg1_i32_sums() {
        let idx = [9, 9, 9, 2, 2, 7, 1, 1, 1, 1, 0, 3, 4, 5, 6, 8];
        let data: [i32; 16] = std::array::from_fn(|i| i as i32 * 3 - 7);
        check_alg1::<i32, Sum>(Mask16::all(), idx, data);
        check_alg1::<i32, Min>(Mask16::from_bits(0xF0F0), idx, data);
    }

    #[test]
    fn alg1_d1_counts_distinct_conflicting_groups() {
        // Two groups conflict (0 and 1), two indices are unique.
        let idx = [0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13];
        let mut v = F32x16::splat(1.0);
        let (_, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v);
        assert_eq!(d1, 2);
    }

    #[test]
    fn alg2_paper_figure6_example_takes_fewer_iterations() {
        let idx = [0, 1, 1, 1, 2, 2, 2, 2, 5, 0, 1, 1, 1, 5, 5, 5];
        let mut v1 = F32x16::splat(1.0);
        let (_, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v1);

        let mut v2 = F32x16::splat(1.0);
        let mut aux = AuxArray::<f32, Sum>::new(6);
        let (safe, d2) =
            reduce_alg2::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v2, &mut aux);
        assert_eq!(d1, 4);
        assert_eq!(d2, 3, "figure 6 shows the merge completing in three iterations");

        // Combined main + aux results equal the scalar reference.
        let mut target = vec![0.0f32; 6];
        v2.mask_scatter(safe, &mut target, I32x16::from_array(idx));
        aux.merge_into(&mut target);
        assert_eq!(target, vec![2.0, 6.0, 4.0, 0.0, 0.0, 4.0]);
    }

    #[test]
    fn alg2_two_identical_groups_of_eight_need_no_iterations() {
        let idx: [i32; 16] = std::array::from_fn(|i| (i % 8) as i32);
        let mut v = F32x16::splat(2.0);
        let mut aux = AuxArray::<f32, Sum>::new(8);
        let (safe, d2) =
            reduce_alg2::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v, &mut aux);
        assert_eq!(d2, 0);
        assert_eq!(safe.count_ones(), 8);
        assert_eq!(aux.touched(), 8);
    }

    #[test]
    fn alg2_matches_reference_on_random_vectors() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..6));
            let data: [i32; 16] = std::array::from_fn(|_| rng.gen_range(-100..100));
            let active = Mask16::from_bits(rng.gen::<u32>() & 0xFFFF);

            let mut v = SimdVec::from_array(data);
            let mut aux = AuxArray::<i32, Sum>::new(6);
            let (safe, d2) =
                reduce_alg2::<i32, Sum, 16>(active, I32x16::from_array(idx), &mut v, &mut aux);
            assert!(d2 as usize <= 16 / 3, "D2 bound from §3.4");

            let mut target = vec![0i32; 6];
            v.mask_scatter(safe, &mut target, I32x16::from_array(idx));
            aux.merge_into(&mut target);

            let expect = reference::<i32, Sum>(active, idx, data);
            for (i, &t) in target.iter().enumerate() {
                assert_eq!(t, expect.get(&(i as i32)).copied().unwrap_or(0), "index {i}");
            }
        }
    }

    #[test]
    fn alg2_safe_mask_lanes_are_distinct_and_active() {
        let idx = [3, 3, 3, 3, 3, 3, 3, 3, 1, 1, 1, 1, 2, 2, 2, 2];
        let mut v = F32x16::splat(1.0);
        let mut aux = AuxArray::<f32, Sum>::new(4);
        let (safe, _) =
            reduce_alg2::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v, &mut aux);
        assert_eq!(safe.bits(), 0b0001_0001_0000_0001);
    }

    #[test]
    fn aux_array_merge_resets_shadow() {
        let mut aux = AuxArray::<f32, Sum>::new(4);
        aux.accumulate(2, 5.0);
        aux.accumulate(2, 1.0);
        let mut target = vec![1.0f32; 4];
        aux.merge_into(&mut target);
        assert_eq!(target, vec![1.0, 1.0, 7.0, 1.0]);
        assert_eq!(aux.touched(), 0);
        // Second merge is a no-op.
        aux.merge_into(&mut target);
        assert_eq!(target, vec![1.0, 1.0, 7.0, 1.0]);
    }

    #[test]
    fn aux_array_min_uses_min_identity() {
        let mut aux = AuxArray::<f32, Min>::new(2);
        aux.accumulate(0, 4.0);
        aux.accumulate(0, -2.0);
        let mut target = vec![1.0f32, 1.0];
        aux.merge_into(&mut target);
        assert_eq!(target, vec![-2.0, 1.0]);
    }

    #[test]
    fn wrappers_expose_paper_api() {
        let idx = I32x16::from_array(std::array::from_fn(|i| (i % 2) as i32));
        let mut v = F32x16::splat(3.0);
        let m = invec_add(Mask16::all(), idx, &mut v);
        assert_eq!(m.count_ones(), 2);
        assert_eq!(v.extract(0), 24.0);

        let mut v = F32x16::from_array(std::array::from_fn(|i| i as f32));
        let m = invec_min(Mask16::all(), idx, &mut v);
        assert_eq!(v.extract(0), 0.0);
        assert_eq!(v.extract(1), 1.0);
        assert_eq!(m.bits(), 0b11);

        let mut v = F32x16::from_array(std::array::from_fn(|i| i as f32));
        let _ = invec_max(Mask16::all(), idx, &mut v);
        assert_eq!(v.extract(0), 14.0);
        assert_eq!(v.extract(1), 15.0);
    }

    #[test]
    fn alg1_arr_components_share_one_merge_schedule() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        for _ in 0..100 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..5));
            let active = Mask16::from_bits(rng.gen::<u32>() & 0xFFFF);
            let data: [[i32; 16]; 3] =
                std::array::from_fn(|_| std::array::from_fn(|_| rng.gen_range(-9..9)));
            let mut vecs = data.map(SimdVec::from_array);
            let (safe, d1) =
                reduce_alg1_arr::<i32, Sum, 3, 16>(active, I32x16::from_array(idx), &mut vecs);
            // Mask and D1 must match the single-vector algorithm.
            let mut single = SimdVec::from_array(data[0]);
            let (safe1, d1_single) =
                reduce_alg1::<i32, Sum, 16>(active, I32x16::from_array(idx), &mut single);
            assert_eq!(safe, safe1);
            assert_eq!(d1, d1_single);
            // Every component reduces like the scalar reference.
            for (c, vec) in vecs.iter().enumerate() {
                let expect = reference::<i32, Sum>(active, idx, data[c]);
                for lane in safe.iter_set() {
                    assert_eq!(vec.extract(lane), expect[&idx[lane]], "component {c} lane {lane}");
                }
            }
        }
    }

    #[test]
    fn alg2_arr_matches_alg1_arr_after_merge() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(31);
        for _ in 0..100 {
            let idx: [i32; 16] = std::array::from_fn(|_| rng.gen_range(0..5));
            let active = Mask16::from_bits(rng.gen::<u32>() & 0xFFFF);
            let data: [[i32; 16]; 3] =
                std::array::from_fn(|_| std::array::from_fn(|_| rng.gen_range(-9..9)));
            let vidx = I32x16::from_array(idx);

            // Algorithm 1 reference path.
            let mut v1 = data.map(SimdVec::from_array);
            let (safe1, _) = reduce_alg1_arr::<i32, Sum, 3, 16>(active, vidx, &mut v1);
            let mut t1: [Vec<i32>; 3] = std::array::from_fn(|_| vec![0i32; 5]);
            for (c, t) in t1.iter_mut().enumerate() {
                v1[c].mask_scatter(safe1, t, vidx);
            }

            // Algorithm 2 path with shadow merge.
            let mut v2 = data.map(SimdVec::from_array);
            let mut aux = AuxArrays::<i32, Sum, 3>::new(5);
            let (safe2, d2) = reduce_alg2_arr::<i32, Sum, 3, 16>(active, vidx, &mut v2, &mut aux);
            assert!(d2 <= 5, "D2 bound");
            let mut t2: [Vec<i32>; 3] = std::array::from_fn(|_| vec![0i32; 5]);
            for (c, t) in t2.iter_mut().enumerate() {
                v2[c].mask_scatter(safe2, t, vidx);
            }
            let [a, b, c] = &mut t2;
            aux.merge_into([a, b, c]);

            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn aux_arrays_merge_resets_all_components() {
        let mut aux = AuxArrays::<f32, Sum, 2>::new(3);
        aux.accumulate(1, [2.0, 5.0]);
        aux.accumulate(1, [1.0, 1.0]);
        assert_eq!(aux.touched(), 1);
        let mut t0 = vec![10.0f32; 3];
        let mut t1 = vec![0.0f32; 3];
        aux.merge_into([&mut t0, &mut t1]);
        assert_eq!(t0, vec![10.0, 13.0, 10.0]);
        assert_eq!(t1, vec![0.0, 6.0, 0.0]);
        assert_eq!(aux.touched(), 0);
        // Shadow is reset: a second merge is a no-op.
        aux.merge_into([&mut t0, &mut t1]);
        assert_eq!(t0, vec![10.0, 13.0, 10.0]);
    }

    #[test]
    fn alg1_works_for_f64_eight_lane_vectors() {
        use invector_simd::{F64x8, I32x8, Mask8};
        let idx = I32x8::from_array([0, 1, 0, 1, 2, 2, 2, 3]);
        let mut v = F64x8::splat(0.5);
        let (safe, d1) = reduce_alg1::<f64, Sum, 8>(Mask8::all(), idx, &mut v);
        assert_eq!(d1, 3);
        assert_eq!(safe.count_ones(), 4);
        assert_eq!(v.extract(0), 1.0);
        assert_eq!(v.extract(4), 1.5);
        assert_eq!(v.extract(7), 0.5);
    }

    #[cfg(feature = "count")]
    #[test]
    fn alg1_instruction_cost_tracks_paper_model() {
        // Paper §3.3: ~2 + 8·D1 instructions. Our emulation counts every
        // SIMD op; allow a small constant-factor band rather than exact match.
        let idx = [0, 0, 1, 1, 2, 2, 3, 3, 4, 5, 6, 7, 8, 9, 10, 11]; // D1 = 4
        let mut v = F32x16::splat(1.0);
        invector_simd::count::reset();
        let (_, d1) = reduce_alg1::<f32, Sum, 16>(Mask16::all(), I32x16::from_array(idx), &mut v);
        let cost = invector_simd::count::take();
        assert_eq!(d1, 4);
        assert!(cost >= 2 + 5 * d1 as u64, "cost {cost} too low for D1={d1}");
        assert!(cost <= 2 + 12 * d1 as u64 + 4, "cost {cost} too high for D1={d1}");
    }
}
