//! Property tests for the self-tuning controller's purity contract:
//! decisions are a deterministic function of the observed frame sequence
//! (no clock, no RNG, no hidden state), every installed policy stays on
//! the configured lattice, and empty epochs carry no signal.
//!
//! Purity is what makes recorded policy traces replayable — the serving
//! layer's bitwise-snapshot contract under tuning rests on it.

use proptest::prelude::*;
use rand::{Rng, SeedableRng, SmallRng};

use invector_core::exec::{ExecPolicy, ExecVariant};
use invector_core::tune::{Controller, Decision, EpochPolicy, MetricFrame, TuneConfig};

fn cfg() -> TuneConfig {
    TuneConfig {
        quantum_ladder: vec![8, 64, 512, 4096],
        thread_ladder: vec![1, 2],
        variants: vec![ExecVariant::Invec, ExecVariant::Serial],
        warmup_epochs: 1,
        measure_epochs: 2,
        hysteresis: 0.05,
        hold_epochs: 6,
        drift: 0.4,
    }
}

fn frame(epoch: u64, applied: u64, busy_ns: u64, policy: EpochPolicy) -> MetricFrame {
    MetricFrame {
        epoch,
        applied,
        offered: applied,
        busy_ns,
        queue_depth: 0,
        conflict_depth: 0.0,
        deep_frac: 0.0,
        p50_epoch_us: 0.0,
        p99_epoch_us: 0.0,
        instructions: 0,
        policy,
    }
}

/// The synthetic observation stream: per-epoch (applied, busy_ns) pairs,
/// with occasional empty epochs mixed in.
fn observations(seed: u64, n: usize) -> Vec<(u64, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let applied = if rng.gen_bool(0.15) { 0 } else { rng.gen_range(1u64..5000) };
            (applied, rng.gen_range(1_000u64..1_000_000))
        })
        .collect()
}

/// Drives a fresh controller over `obs`, closing the loop the way the
/// serve layer does (an installed policy becomes the next frame's
/// `policy`). Returns the decision trace and the final active policy.
fn drive(obs: &[(u64, u64)]) -> (Vec<Decision>, EpochPolicy) {
    let initial = EpochPolicy::new(ExecPolicy::default(), 8);
    let mut ctl = Controller::new(cfg(), initial).expect("valid config");
    let mut active = initial;
    for (epoch, &(applied, busy_ns)) in obs.iter().enumerate() {
        if let Some(next) = ctl.observe(&frame(epoch as u64, applied, busy_ns, active)) {
            active = next;
        }
    }
    (ctl.trace().to_vec(), active)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Purity: two controllers fed the same frame sequence produce the
    /// same decision trace and land on the same policy.
    #[test]
    fn identical_frame_sequences_yield_identical_decision_traces(
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        let obs = observations(seed, n);
        let (trace_a, last_a) = drive(&obs);
        let (trace_b, last_b) = drive(&obs);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(last_a, last_b);
    }

    /// Every policy the controller ever installs sits on the configured
    /// `(quantum, threads, variant)` lattice — probes never invent cells.
    #[test]
    fn decisions_never_leave_the_lattice(
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        let c = cfg();
        let (trace, last) = drive(&observations(seed, n));
        let policies = trace.iter().map(|d| d.policy).chain(std::iter::once(last));
        for p in policies {
            prop_assert!(c.quantum_ladder.contains(&p.quantum), "quantum {} off-ladder", p.quantum);
            prop_assert!(c.thread_ladder.contains(&p.exec.threads));
            prop_assert!(c.variants.contains(&p.exec.variant));
        }
    }

    /// Empty epochs are inert: splicing them into a frame sequence changes
    /// neither the decision trace nor the final policy.
    #[test]
    fn empty_epochs_never_influence_decisions(
        seed in any::<u64>(),
        n in 1usize..200,
    ) {
        let busy: Vec<(u64, u64)> =
            observations(seed, n).into_iter().filter(|&(applied, _)| applied > 0).collect();
        let mut spliced = Vec::new();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
        for &pair in &busy {
            while rng.gen_bool(0.4) {
                spliced.push((0u64, rng.gen_range(1u64..1_000_000)));
            }
            spliced.push(pair);
        }
        prop_assert_eq!(drive(&busy), drive(&spliced));
    }
}
